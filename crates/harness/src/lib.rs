//! Deterministic virtual-time chaos harness for the AMUSE event service.
//!
//! The paper's e-health scenarios — nurses walking out of radio range,
//! body-sensor networks rejoining a ward cell, lossy personal-area links
//! — are timing bugs waiting to happen, and wall-clock integration tests
//! can neither reproduce them nor explore them quickly. This crate runs
//! the whole stack (simulated radio network, reliable channels,
//! discovery service, member agents) against a [`smc_types::ManualClock`]
//! instead of real time:
//!
//! * **virtual time** — a 30-second scenario steps through in
//!   milliseconds, and nothing in the run reads `Instant::now()`, so the
//!   schedule is bit-identical for a given seed;
//! * **scenario scripts** — [`Scenario`] describes seeded fault
//!   schedules (loss bursts, partitions, duplicate storms, crash/restart,
//!   broadcast-domain moves, link-profile changes, whole-core crashes) at
//!   scripted virtual times;
//! * **delivery oracle** — [`DeliveryOracle`] records every publish,
//!   delivery and membership transition and checks the paper's §II-C
//!   guarantees (exactly-once, per-sender FIFO, no delivery after purge),
//!   reporting the seed and event trace when one breaks.
//!
//! ```
//! use std::time::Duration;
//! use smc_harness::{run, Scenario};
//!
//! let scenario = Scenario::random(7, 3, Duration::from_secs(4), 4);
//! let report = run(&scenario);
//! report.assert_clean(); // panics with seed + trace on a violation
//! ```

#![warn(missing_docs)]

mod oracle;
mod peer_world;
mod scenario;
mod world;

pub use oracle::{DeliveryOracle, OracleViolation, TraceEvent, ViolationKind};
pub use peer_world::{
    run_peer, run_peer_with_options, CellReport, PeerOptions, PeerRunReport, TelemetryPlaneOptions,
    TelemetryPlaneReport,
};
pub use scenario::{
    shrink_scenario, ChaosOp, CoreComponent, CorruptTarget, LinkProfileKind, Scenario, ScriptedOp,
};
pub use world::{
    default_discovery, default_reliable, run, run_with, run_with_backend, run_with_options,
    HealthOptions, HealthOutcome, RunOptions, RunReport, SupervisionOptions, SupervisionOutcome,
};
