//! The peer-supervision world: two sibling cells in one virtual
//! timeline, each watching the other's supervisor over the wire.
//!
//! The single-cell world ([`crate::world`]) closes the detect → repair
//! loop inside a cell, which leaves the loop's own host as the last
//! single point of failure: kill the supervisor mid-repair and the
//! outage it was handling stays an outage forever. This world closes
//! that hole. Each cell heartbeats a lease over a journaled supervision
//! channel (`smc.supervision` events on [`CHAN_SUPERVISION`], so the
//! lease/claim/adopt protocol rides the same exactly-once, FIFO
//! machinery as the data plane); a [`PeerSupervisor`] per cell tracks
//! sibling leases, claims lapsed ones (lowest member id wins), adopts
//! the silent cell, and drives repair remotely — restart commands ship
//! as [`SupervisionMsg::Repair`] through the policy layer's
//! `peer_repair_policies`, and anti-entropy passes are ordered with
//! [`SupervisionMsg::Reconcile`] so the ward never compacts a corrupted
//! view into its durable truth (the reconcile-before-checkpoint
//! invariant, extended across the wire: a cell whose last reconcile is
//! older than one checkpoint interval refuses to compact).
//!
//! Two planes per cell, deliberately separable:
//!
//! * the **supervisor plane** (health monitor, supervisor, peer
//!   watcher) — killed by [`ChaosOp::KillSupervisor`];
//! * the **cell runtime** (data channels, the supervision channel, and
//!   the actuator that executes wire `Repair`/`Reconcile` commands) —
//!   survives, the way an init system outlives a crashed node agent.
//!   That is what makes remote revival possible at all: the sibling's
//!   `Repair { component: "supervisor" }` lands on a live actuator.
//!
//! Everything steps one `ManualClock`; the same seed produces the same
//! trace, byte for byte.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use smc_discovery::{AgentConfig, DiscoveryConfig, MemberAgent, MembershipEvent};
use smc_health::{
    health_event, ComponentDown, HealthConfig, HealthMonitor, HealthState, PeerConfig, PeerReport,
    PeerSupervisor, RepairAction, ServiceRegistry, ServiceSpec, SloBurn, SupervisionReport,
    Supervisor,
};
use smc_policy::{peer_repair_policies, ActionSpec, PolicyService};
use smc_telemetry::{
    Counter, DeltaExporter, Gauge, Hop, Registry, SloConfig, SloTracker, TraceSink, Tracer,
    WardRegistry, DEFAULT_SINK_CAPACITY,
};
use smc_transport::{Incoming, LinkConfig, ReliableChannel, ReliableConfig, SimNetwork};
use smc_types::{
    codec, episode_trace, member::wellknown, CellId, Event, HopExport, ManualClock, ServiceId,
    ServiceInfo, SharedClock, SupervisionMsg, TelemetryMsg, TraceId, WalRecord,
};
use smc_wal::{
    MemBackend, Wal, WalBackend, WalChannelJournal, WalConfig, CHAN_SUPERVISION, CHAN_TELEMETRY,
};

use crate::oracle::DeliveryOracle;
use crate::scenario::{ChaosOp, CoreComponent, CorruptTarget, Scenario};
use crate::world::{
    apply, boot_core, checkpoint, decode, default_discovery, default_reliable, encode,
    reconcile_pass, restart_discovery, restart_sink, Act, ComponentFlags, Core, Device,
    SupervisionOptions, SupervisionRuntime, CHECKPOINT_MICROS, DRAIN_MICROS, GHOST_MEMBER,
    TICK_MICROS,
};

/// Everything configurable about a peer-supervision run.
#[derive(Debug, Clone)]
pub struct PeerOptions {
    /// Reliable-channel parameters for every channel in both cells.
    pub reliable: ReliableConfig,
    /// Discovery timings for both cells.
    pub discovery: DiscoveryConfig,
    /// The per-cell in-process supervisor (and its remote twin).
    pub supervision: SupervisionOptions,
    /// Lease/claim timings of the peer protocol.
    pub peer: PeerConfig,
    /// Whether hops are recorded into a trace sink.
    pub trace: bool,
    /// The ward-scale telemetry plane: when set, every cell exports
    /// delta-encoded metrics, trace hops and SLO reports as journaled
    /// `smc.telemetry` events to an observer that folds them into a
    /// [`WardRegistry`]. `None` (the default) runs the world exactly as
    /// before — no extra events, byte-identical traces.
    pub telemetry: Option<TelemetryPlaneOptions>,
}

/// The telemetry plane's step cadence: far coarser than the 2ms world
/// tick (telemetry tolerates latency; the data plane does not), fine
/// enough that the export cadence never waits long on it. This is what
/// keeps observing the world an order of magnitude cheaper than
/// running it.
const TEL_STEP_MICROS: u64 = 50 * TICK_MICROS;

/// Configuration of the in-network telemetry plane.
#[derive(Debug, Clone)]
pub struct TelemetryPlaneOptions {
    /// Virtual interval between a cell's exports (µs).
    pub export_interval_micros: u64,
    /// Delivery-latency SLO objective (µs).
    pub delivery_objective_micros: u64,
    /// Supervision time-to-repair SLO objective (µs).
    pub ttr_objective_micros: u64,
}

impl Default for TelemetryPlaneOptions {
    fn default() -> Self {
        TelemetryPlaneOptions {
            export_interval_micros: 400_000,
            delivery_objective_micros: 400_000,
            ttr_objective_micros: 3_000_000,
        }
    }
}

impl Default for PeerOptions {
    fn default() -> Self {
        PeerOptions {
            reliable: default_reliable(),
            discovery: default_discovery(),
            supervision: SupervisionOptions::default(),
            peer: PeerConfig::default(),
            trace: true,
            telemetry: None,
        }
    }
}

/// What one cell ended the run with.
#[derive(Debug)]
pub struct CellReport {
    /// The cell's member id on the supervision plane (1-based).
    pub member_id: u64,
    /// Whether the in-process supervisor was alive at run end.
    pub supervisor_alive: bool,
    /// Times a sibling's remote `Repair` revived this cell's supervisor.
    pub supervisor_revivals: u64,
    /// Core reboots (remote or escalated) this cell went through.
    pub core_recoveries: u64,
    /// The peer watcher's counters and decision log (final incarnation).
    pub peer: PeerReport,
    /// The local supervisor's episode accounting (final incarnation).
    pub report: SupervisionReport,
    /// Repairs executed by the cell's own supervisor: `(at, what)`.
    pub local_repairs: Vec<(u64, String)>,
    /// Repair commands this cell shipped to its adopted ward.
    pub remote_commands: Vec<(u64, String)>,
    /// Wire-commanded repairs executed *on* this cell.
    pub remote_repairs: Vec<(u64, String)>,
    /// Anti-entropy passes run on this cell (local or wire-ordered).
    pub reconciles: u64,
    /// Divergences those passes repaired.
    pub reconcile_fixes: Vec<(u64, String)>,
    /// Checkpoints refused because no reconcile had run recently enough
    /// (the cross-wire reconcile-before-checkpoint invariant holding).
    pub checkpoints_deferred: u64,
    /// Missed-ack pulses the cell's device channels raised.
    pub missed_ack_interrupts: u64,
    /// Sibling member ids this cell still held adopted at run end.
    pub adopted_at_end: Vec<u64>,
}

impl CellReport {
    /// `true` when the cell ended healthy: supervisor alive, no
    /// component down, no unresolved failure episode, no ward still
    /// adopted (its sibling recovered and was released).
    pub fn converged(&self) -> bool {
        self.supervisor_alive && self.report.converged() && self.adopted_at_end.is_empty()
    }
}

/// What the telemetry plane ended the run with (present only when
/// [`PeerOptions::telemetry`] was set).
#[derive(Debug)]
pub struct TelemetryPlaneReport {
    /// The observer's ward view: folded per-cell + rolled-up series,
    /// stitched journeys, per-cell freshness.
    pub ward: Arc<WardRegistry>,
    /// Every supervision episode the watchers traced:
    /// `(target member, episode trace)`.
    pub episodes: Vec<(u64, TraceId)>,
    /// Exports the observer folded (duplicates excluded).
    pub exports_applied: u64,
    /// Journal-replay duplicates the observer dropped.
    pub duplicates: u64,
    /// Times any ward-rolled counter moved backwards (the invariant the
    /// delta encoding exists to hold; must be 0).
    pub backwards: u64,
    /// Aggregation lag quantiles: virtual time between a cell stamping
    /// an export and the observer folding it.
    pub lag_p50_micros: u64,
    /// The p95 of the same lag distribution.
    pub lag_p95_micros: u64,
    /// `slo-burn` detector transitions out of healthy on the observer.
    pub slo_alerts: u64,
    /// Telemetry events cells sent (exports across all three kinds).
    pub exports_sent: u64,
}

impl TelemetryPlaneReport {
    /// `true` when the stitched journey for `trace` carries every one
    /// of `labels` in virtual-time order and was never truncated.
    pub fn journey_complete(&self, trace: TraceId, labels: &[&str]) -> bool {
        let Some(journey) = self.ward.stitched(trace) else {
            return false;
        };
        if journey.truncated {
            return false;
        }
        let mut legs = journey.legs.iter();
        labels.iter().all(|want| legs.any(|leg| leg.label == *want))
    }
}

/// The outcome of one two-cell peer-supervision run.
#[derive(Debug)]
pub struct PeerRunReport {
    /// The shared oracle holding the full trace and any violation.
    pub oracle: DeliveryOracle,
    /// Device endpoints of both cells: cell 0's nodes then cell 1's.
    pub device_ids: Vec<ServiceId>,
    /// Per-cell outcomes, in member-id order.
    pub cells: Vec<CellReport>,
    /// Ticks executed.
    pub ticks: u64,
    /// Virtual micros covered (scripted duration plus drain).
    pub virtual_micros: u64,
    /// The telemetry plane's outcome, when it ran.
    pub telemetry: Option<TelemetryPlaneReport>,
}

impl PeerRunReport {
    /// Panics with seed + trace if a delivery guarantee broke.
    pub fn assert_clean(&self) {
        self.oracle.assert_clean();
    }

    /// The byte-comparable rendering of the whole trace.
    pub fn trace_text(&self) -> String {
        self.oracle.trace_text()
    }

    /// `true` when every published message of every device (both
    /// cells) was delivered.
    pub fn all_delivered(&self) -> bool {
        self.device_ids
            .iter()
            .all(|&id| self.oracle.delivered(id) == self.oracle.published(id))
    }

    /// Total messages published across both cells' devices.
    pub fn total_published(&self) -> u64 {
        self.device_ids
            .iter()
            .map(|&id| self.oracle.published(id))
            .sum()
    }

    /// Total messages delivered across both cells' sinks.
    pub fn total_delivered(&self) -> u64 {
        self.device_ids
            .iter()
            .map(|&id| self.oracle.delivered(id))
            .sum()
    }

    /// `true` when both cells ended healthy (see
    /// [`CellReport::converged`]) with no component left down.
    pub fn converged(&self) -> bool {
        self.cells.iter().all(CellReport::converged)
    }

    /// The cell report for member id `id` (1-based). Panics if absent.
    pub fn cell(&self, id: u64) -> &CellReport {
        self.cells
            .iter()
            .find(|c| c.member_id == id)
            .expect("cell report present")
    }
}

/// The adopter's side of a remote-supervision session: a component-down
/// monitor and a supervisor planning over the ward's components (its
/// supervisor included), with repairs shipped as wire commands instead
/// of executed in-process.
struct RemoteSupervision {
    monitor: HealthMonitor,
    supervisor: Supervisor,
    next_reconcile: u64,
}

fn new_remote(opts: &SupervisionOptions) -> RemoteSupervision {
    let mut registry = ServiceRegistry::new();
    registry.register(ServiceSpec::new("core"));
    registry.register(
        ServiceSpec::new("discovery")
            .depends_on("core")
            .escalates_to("core"),
    );
    registry.register(
        ServiceSpec::new("sink")
            .depends_on("core")
            .escalates_to("core"),
    );
    // The component the local loop can never watch: itself.
    registry.register(
        ServiceSpec::new("supervisor")
            .depends_on("core")
            .escalates_to("core"),
    );
    RemoteSupervision {
        monitor: HealthMonitor::with_detectors(
            opts.health,
            vec![Box::new(ComponentDown::default())],
        ),
        supervisor: Supervisor::new(registry, opts.config),
        next_reconcile: 0,
    }
}

/// One watched supervision episode, traced from lease lapse to remote
/// restart under a single synthetic [`TraceId`].
struct EpisodeState {
    target: u64,
    trace: TraceId,
    started_at: u64,
    adopt_recorded: bool,
    wire_repair_recorded: bool,
}

/// A cell's half of the telemetry plane: harness-plane state (like the
/// supervision channel, it survives the core crashing) that accumulates
/// metrics, hops and SLO observations between exports.
struct CellTelemetry {
    /// The telemetry channel journals into its own WAL, mirroring the
    /// supervision plane: exports survive whatever they report on.
    #[allow(dead_code)]
    wal: Arc<Wal>,
    channel: Arc<ReliableChannel>,
    registry: Registry,
    /// Cached handles into `registry` for the hot publish/deliver
    /// paths, so counting an event is one atomic add, not a lookup.
    published: Counter,
    delivered: Counter,
    members_gauge: Gauge,
    sup_up_gauge: Gauge,
    exporter: DeltaExporter,
    pending_hops: Vec<HopExport>,
    export_seq: u64,
    next_export: u64,
    interval: u64,
    /// Publish stamp per `(device, seq)`, consumed at delivery to feed
    /// the delivery-latency SLO.
    publish_at: HashMap<(ServiceId, u64), u64>,
    slo_delivery: SloTracker,
    slo_ttr: SloTracker,
    episode_ordinal: u64,
    episode: Option<EpisodeState>,
    episodes: Vec<(u64, TraceId)>,
    exports_sent: u64,
    /// The SLO reports last shipped: burn rates change rarely, so an
    /// unchanged set is not re-sent (the observer's gauges keep their
    /// last reading — re-setting them would be a no-op anyway).
    last_slo: Vec<TelemetryMsg>,
}

impl CellTelemetry {
    fn new(
        net: &SimNetwork,
        reliable: &ReliableConfig,
        shared: &SharedClock,
        tracer: &Tracer,
        opts: &TelemetryPlaneOptions,
    ) -> CellTelemetry {
        let (wal, recovered) = Wal::open(Arc::new(MemBackend::new()), WalConfig::default())
            .expect("telemetry wal opens");
        let wal = Arc::new(wal);
        let channel = ReliableChannel::with_clock_journaled(
            Arc::new(net.endpoint()),
            reliable.clone(),
            Arc::clone(shared),
            Arc::new(WalChannelJournal::new(Arc::clone(&wal), CHAN_TELEMETRY)),
            recovered.snapshot.cursors_for(CHAN_TELEMETRY),
            Vec::new(),
        );
        channel.set_tracer(tracer.clone());
        let registry = Registry::new();
        let published = registry.counter("smc_cell_published_total", "Events devices published.");
        let delivered = registry.counter("smc_cell_delivered_total", "Events the sink delivered.");
        let members_gauge =
            registry.gauge("smc_cell_members", "Members in the sink's delivery view.");
        let sup_up_gauge = registry.gauge(
            "smc_cell_supervisor_up",
            "Whether the supervisor plane is alive.",
        );
        CellTelemetry {
            wal,
            channel,
            registry,
            published,
            delivered,
            members_gauge,
            sup_up_gauge,
            exporter: DeltaExporter::new(),
            pending_hops: Vec::new(),
            export_seq: 0,
            next_export: 0,
            interval: opts.export_interval_micros.max(TICK_MICROS),
            publish_at: HashMap::new(),
            slo_delivery: SloTracker::new(SloConfig::new(
                "delivery-latency",
                opts.delivery_objective_micros,
            )),
            slo_ttr: SloTracker::new(SloConfig::new("supervision-ttr", opts.ttr_objective_micros)),
            episode_ordinal: 0,
            episode: None,
            episodes: Vec::new(),
            exports_sent: 0,
            last_slo: Vec::new(),
        }
    }

    fn record_hop(&mut self, trace: TraceId, label: &str, now: u64) {
        self.pending_hops.push(HopExport {
            trace: trace.raw(),
            label: label.to_string(),
            at_micros: now,
        });
    }
}

/// The observer: the endpoint telemetry exports converge on, folding
/// them into the ward view and watching SLO burn.
struct Observer {
    #[allow(dead_code)]
    wal: Arc<Wal>,
    channel: Arc<ReliableChannel>,
    id: ServiceId,
    ward: Arc<WardRegistry>,
    monitor: HealthMonitor,
    /// Last seen value per monotone ward series, for the
    /// backwards-counter invariant check.
    prev_counters: HashMap<String, u64>,
    backwards: u64,
    slo_alerts: u64,
}

/// One sibling cell: a full single-cell world's worth of state plus the
/// supervision plane.
struct Cell {
    member_id: u64,
    backend: Arc<dyn WalBackend>,
    core: Core,
    disco_id: ServiceId,
    sink_id: ServiceId,
    members: HashSet<ServiceId>,
    flags: ComponentFlags,
    core_crashed: bool,
    devices: Vec<Device>,
    device_ids: Vec<ServiceId>,
    /// The supervision channel journals into its own WAL — the plane
    /// must survive the cell's core losing *its* log.
    #[allow(dead_code)]
    sup_wal: Arc<Wal>,
    sup_channel: Arc<ReliableChannel>,
    sup_id: ServiceId,
    /// The in-process repair stack; `rt.alive == false` after a
    /// [`ChaosOp::KillSupervisor`] until a sibling revives it.
    rt: SupervisionRuntime,
    /// The watcher over the sibling (lives and dies with `rt`).
    peer: PeerSupervisor,
    /// The remote session while this cell has adopted its sibling.
    remote: Option<RemoteSupervision>,
    /// Executes wire `Repair` commands through `peer_repair_policies`.
    actuator: PolicyService,
    last_reconcile_at: u64,
    supervisor_revivals: u64,
    core_recoveries: u64,
    local_repairs: Vec<(u64, String)>,
    remote_commands: Vec<(u64, String)>,
    remote_repairs: Vec<(u64, String)>,
    reconciles: u64,
    reconcile_fixes: Vec<(u64, String)>,
    checkpoints_deferred: u64,
    missed_ack_total: u64,
    /// The cell's half of the telemetry plane, when it runs.
    telemetry: Option<CellTelemetry>,
}

/// The read-only snapshot of a ward the adopter's monitor samples.
/// Captured for both cells at the top of the supervision phase so the
/// order cells are processed in cannot change what either observes.
#[derive(Clone, Copy)]
struct CellView {
    discovery_down: bool,
    sink_down: bool,
    sup_alive: bool,
    core_crashed: bool,
}

fn up_sample(name: &str, is_up: bool) -> smc_telemetry::Sample {
    smc_telemetry::Sample {
        name: "smc_component_up".to_string(),
        help: String::new(),
        monotonic: false,
        labels: vec![("component".to_string(), name.to_string())],
        value: u64::from(is_up),
    }
}

/// The gauges the adopter's component-down detector watches: the
/// ward's components *and* its supervisor. (In-process stand-ins for
/// the liveness signals the ward's cell runtime exports; the protocol
/// itself — lease, claim, repair — still crosses the wire.)
fn ward_samples(view: &CellView) -> Vec<smc_telemetry::Sample> {
    vec![
        up_sample("discovery", !view.discovery_down && !view.core_crashed),
        up_sample("sink", !view.sink_down && !view.core_crashed),
        up_sample("supervisor", view.sup_alive),
    ]
}

fn send_sup(cell: &Cell, to: ServiceId, msg: &SupervisionMsg, now: u64) {
    let bytes = codec::to_bytes(&msg.to_event(now));
    let _ = cell.sup_channel.send(to, bytes);
}

/// Runs `scenario` in the two-cell peer world with default options.
pub fn run_peer(scenario: &Scenario) -> PeerRunReport {
    run_peer_with_options(scenario, PeerOptions::default())
}

/// Runs `scenario` in the two-cell peer world.
///
/// Device-indexed and component ops target cell 0 (the cell under
/// test); [`ChaosOp::KillSupervisor`] and [`ChaosOp::PartitionCell`]
/// pick their cell explicitly. Cell 1 runs the same stack and watches.
pub fn run_peer_with_options(scenario: &Scenario, options: PeerOptions) -> PeerRunReport {
    let PeerOptions {
        reliable,
        discovery: discovery_config,
        supervision,
        peer: peer_config,
        trace,
        telemetry: telemetry_opts,
    } = options;
    let clock = Arc::new(ManualClock::new());
    let shared: SharedClock = clock.clone();
    let baseline = LinkConfig::ideal();
    let net = SimNetwork::with_clock(baseline.clone(), scenario.seed, Arc::clone(&shared));
    let (tracer, _trace_sink) = if trace {
        let sink = Arc::new(TraceSink::with_capacity(DEFAULT_SINK_CAPACITY));
        (
            Tracer::new(Arc::clone(&sink), Arc::clone(&shared)),
            Some(sink),
        )
    } else {
        (Tracer::disabled(), None)
    };
    let mut oracle = DeliveryOracle::new(scenario.seed);
    let publish_interval = scenario.publish_interval.as_micros().max(1) as u64;

    // Build the two symmetric cells, member ids 1 and 2.
    let mut cells: Vec<Cell> = (0..2u64)
        .map(|i| {
            let member_id = i + 1;
            let backend: Arc<dyn WalBackend> = Arc::new(MemBackend::new());
            let mut members = HashSet::new();
            let (core, _) = boot_core(
                &net,
                &backend,
                &reliable,
                &discovery_config,
                &shared,
                &tracer,
                None,
                &mut members,
                CellId(member_id),
            );
            let disco_id = core.disco_channel.local_id();
            let sink_id = core.sink_channel.local_id();
            let rt = SupervisionRuntime::new(supervision.clone());
            let devices: Vec<Device> = (0..scenario.nodes)
                .map(|n| {
                    let channel = ReliableChannel::with_clock(
                        Arc::new(net.endpoint()),
                        reliable.clone(),
                        Arc::clone(&shared),
                    );
                    let info = ServiceInfo::new(ServiceId::NIL, "harness.device")
                        .with_name(format!("chaos device {member_id}.{n}"));
                    channel.set_tracer(tracer.clone());
                    channel.set_missed_ack_interrupt(Arc::clone(&rt.interrupt_line));
                    // Both cells share one radio network; the filter
                    // keeps each device joining its own cell's beacons.
                    let agent = MemberAgent::with_clock(
                        info.clone(),
                        Arc::clone(&channel),
                        AgentConfig {
                            cell_filter: Some(CellId(member_id)),
                            ..AgentConfig::default()
                        },
                        Arc::clone(&shared),
                    );
                    Device {
                        id: channel.local_id(),
                        info,
                        channel,
                        agent,
                        next_seq: 1,
                        next_publish: 0,
                        crashed: false,
                        quenched: false,
                        baseline: baseline.clone(),
                        domain: 0,
                    }
                })
                .collect();
            let device_ids: Vec<ServiceId> = devices.iter().map(|d| d.id).collect();
            let (sup_wal, sup_recovered) =
                Wal::open(Arc::new(MemBackend::new()), WalConfig::default())
                    .expect("supervision wal opens");
            let sup_wal = Arc::new(sup_wal);
            let sup_channel = ReliableChannel::with_clock_journaled(
                Arc::new(net.endpoint()),
                reliable.clone(),
                Arc::clone(&shared),
                Arc::new(WalChannelJournal::new(
                    Arc::clone(&sup_wal),
                    CHAN_SUPERVISION,
                )),
                sup_recovered.snapshot.cursors_for(CHAN_SUPERVISION),
                Vec::new(),
            );
            sup_channel.set_tracer(tracer.clone());
            let sup_id = sup_channel.local_id();
            let actuator = PolicyService::new();
            for p in peer_repair_policies() {
                actuator
                    .add(p)
                    .expect("built-in peer repair policies are valid");
            }
            let peer = PeerSupervisor::new(member_id, [1u64, 2], peer_config.clone());
            Cell {
                member_id,
                backend,
                core,
                disco_id,
                sink_id,
                members,
                flags: ComponentFlags::default(),
                core_crashed: false,
                devices,
                device_ids,
                sup_wal,
                sup_channel,
                sup_id,
                rt,
                peer,
                remote: None,
                actuator,
                last_reconcile_at: 0,
                supervisor_revivals: 0,
                core_recoveries: 0,
                local_repairs: Vec::new(),
                remote_commands: Vec::new(),
                remote_repairs: Vec::new(),
                reconciles: 0,
                reconcile_fixes: Vec::new(),
                checkpoints_deferred: 0,
                missed_ack_total: 0,
                telemetry: telemetry_opts
                    .as_ref()
                    .map(|t| CellTelemetry::new(&net, &reliable, &shared, &tracer, t)),
            }
        })
        .collect();
    let sup_ids = [cells[0].sup_id, cells[1].sup_id];
    let tel_ids: [Option<ServiceId>; 2] = [
        cells[0].telemetry.as_ref().map(|t| t.channel.local_id()),
        cells[1].telemetry.as_ref().map(|t| t.channel.local_id()),
    ];

    // The observer: its channel journals like every other plane, so a
    // partitioned cell's backlog lands after heal rather than never.
    let mut observer = telemetry_opts.as_ref().map(|_| {
        let (wal, recovered) = Wal::open(Arc::new(MemBackend::new()), WalConfig::default())
            .expect("observer wal opens");
        let wal = Arc::new(wal);
        let channel = ReliableChannel::with_clock_journaled(
            Arc::new(net.endpoint()),
            reliable.clone(),
            Arc::clone(&shared),
            Arc::new(WalChannelJournal::new(Arc::clone(&wal), CHAN_TELEMETRY)),
            recovered.snapshot.cursors_for(CHAN_TELEMETRY),
            Vec::new(),
        );
        channel.set_tracer(tracer.clone());
        let id = channel.local_id();
        Observer {
            wal,
            channel,
            id,
            ward: Arc::new(WardRegistry::new()),
            // Burn rates move on the scale of the SLO windows (5s/30s);
            // sampling them faster than once a second buys nothing.
            monitor: HealthMonitor::with_detectors(
                HealthConfig {
                    interval_micros: supervision.health.interval_micros.max(1_000_000),
                    ..supervision.health
                },
                vec![Box::new(SloBurn::default())],
            ),
            prev_counters: HashMap::new(),
            backwards: 0,
            slo_alerts: 0,
        }
    });

    // Expand the scripted ops into the fault timeline (same shape as
    // the single-cell world; device and component ops hit cell 0).
    let mut timeline: Vec<(u64, usize, Act)> = Vec::new();
    for s in &scenario.ops {
        let at = s.at.as_micros() as u64;
        match s.op {
            ChaosOp::LossBurst {
                node,
                loss,
                duration,
            } => {
                timeline.push((at, node, Act::Loss(loss)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Heal));
            }
            ChaosOp::DuplicateStorm {
                node,
                duplicate,
                duration,
            } => {
                timeline.push((at, node, Act::Dup(duplicate)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Heal));
            }
            ChaosOp::Partition { node, duration } => {
                timeline.push((at, node, Act::PartitionOn));
                timeline.push((at + duration.as_micros() as u64, node, Act::PartitionOff));
            }
            ChaosOp::Crash { node, down_for } => {
                timeline.push((at, node, Act::Crash));
                timeline.push((at + down_for.as_micros() as u64, node, Act::Restart));
            }
            ChaosOp::DomainMove {
                node,
                domain,
                duration,
            } => {
                timeline.push((at, node, Act::Domain(domain)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Domain(0)));
            }
            ChaosOp::LinkProfile { node, profile } => {
                timeline.push((at, node, Act::Profile(profile)));
            }
            ChaosOp::CoreCrash { down_for } => {
                timeline.push((at, usize::MAX, Act::CoreCrash));
                timeline.push((
                    at + down_for.as_micros() as u64,
                    usize::MAX,
                    Act::CoreRestart,
                ));
            }
            ChaosOp::KillComponent { component, wedged } => {
                timeline.push((at, usize::MAX, Act::Kill(component, wedged)));
            }
            ChaosOp::CorruptState { target } => {
                timeline.push((at, usize::MAX, Act::Corrupt(target)));
            }
            ChaosOp::KillSupervisor { cell } => {
                timeline.push((at, usize::MAX, Act::KillSupervisor(cell)));
            }
            ChaosOp::PartitionCell { cell, duration } => {
                timeline.push((at, usize::MAX, Act::CellPartition(cell, true)));
                timeline.push((
                    at + duration.as_micros() as u64,
                    usize::MAX,
                    Act::CellPartition(cell, false),
                ));
            }
        }
    }
    timeline.sort_by_key(|&(at, node, _)| (at, node));

    let end = scenario.duration.as_micros() as u64;
    let total = end + DRAIN_MICROS;
    let mut next_act = 0usize;
    let mut ticks = 0u64;
    let mut retransmits_gone = 0u64;

    let mut now = 0u64;
    loop {
        // 1. Scripted faults due now.
        while next_act < timeline.len() && timeline[next_act].0 <= now {
            let (_, node, act) = timeline[next_act].clone();
            next_act += 1;
            match act {
                Act::KillSupervisor(c) => {
                    let cell = &mut cells[c.min(1)];
                    if cell.rt.alive {
                        cell.rt.alive = false;
                        // The remote session (if this cell was an
                        // adopter) dies with its host.
                        cell.remote = None;
                        oracle.record_fault(now, format!("cell{} supervisor killed", c.min(1)));
                    }
                    continue;
                }
                Act::CellPartition(c, on) => {
                    let c = c.min(1);
                    net.set_partitioned(sup_ids[c], sup_ids[1 - c], on);
                    // The telemetry plane shares the cell's fate: a
                    // partitioned cell's exports queue in its journal
                    // and drain to the observer after heal.
                    if let (Some(tel), Some(obs)) = (tel_ids[c], observer.as_ref()) {
                        net.set_partitioned(tel, obs.id, on);
                    }
                    oracle.record_fault(
                        now,
                        format!(
                            "cell{c} {}",
                            if on {
                                "partitioned from siblings"
                            } else {
                                "partition healed"
                            }
                        ),
                    );
                    continue;
                }
                Act::CoreCrash => {
                    let cell = &mut cells[0];
                    if cell.core_crashed {
                        continue;
                    }
                    oracle.record_fault(now, "cell0 core crashed");
                    cell.core_crashed = true;
                    cell.core.service.shutdown();
                    cell.core.sink_channel.close();
                    cell.flags = ComponentFlags::default();
                    continue;
                }
                Act::CoreRestart => {
                    if cells[0].core_crashed {
                        reboot_core(
                            &mut cells[0],
                            &net,
                            &reliable,
                            &discovery_config,
                            &shared,
                            &tracer,
                            &mut oracle,
                            now,
                        );
                        oracle.record_fault(now, "cell0 core restarted");
                    }
                    continue;
                }
                Act::Kill(component, wedged) => {
                    let cell = &mut cells[0];
                    if cell.core_crashed {
                        continue;
                    }
                    match component {
                        CoreComponent::Discovery => {
                            if cell.flags.discovery_down {
                                continue;
                            }
                            oracle.record_fault(now, "cell0 discovery killed");
                            cell.core.service.shutdown();
                            cell.flags.discovery_down = true;
                            cell.flags.discovery_wedged = wedged;
                        }
                        CoreComponent::Sink => {
                            if cell.flags.sink_down {
                                continue;
                            }
                            oracle.record_fault(now, "cell0 sink killed");
                            cell.core.sink_channel.close();
                            cell.flags.sink_down = true;
                            cell.flags.sink_wedged = wedged;
                        }
                    }
                    continue;
                }
                Act::Corrupt(target) => {
                    let cell = &mut cells[0];
                    match target {
                        CorruptTarget::MembershipView { node } => {
                            if let Some(&id) = cell.device_ids.get(node) {
                                if cell.members.remove(&id) {
                                    oracle.record_fault(
                                        now,
                                        format!("corrupt: cell0 sink view dropped {id}"),
                                    );
                                }
                            }
                        }
                        CorruptTarget::GhostMember => {
                            if cell.members.insert(GHOST_MEMBER) {
                                oracle.record_fault(
                                    now,
                                    format!("corrupt: ghost {GHOST_MEMBER} in cell0 sink view"),
                                );
                            }
                        }
                        CorruptTarget::DiscoveryMember { node } => {
                            if let Some(&id) = cell.device_ids.get(node) {
                                if !cell.core_crashed
                                    && !cell.flags.discovery_down
                                    && cell.core.service.forget_member(id)
                                {
                                    oracle.record_fault(
                                        now,
                                        format!("corrupt: cell0 discovery forgot {id}"),
                                    );
                                }
                            }
                        }
                    }
                    continue;
                }
                _ => {}
            }
            let cell = &mut cells[0];
            if node >= cell.devices.len() {
                continue;
            }
            let line = Arc::clone(&cell.rt.interrupt_line);
            apply(
                &net,
                &mut cell.devices[node],
                node,
                &act,
                cell.disco_id,
                cell.sink_id,
                &reliable,
                &shared,
                &tracer,
                &mut oracle,
                now,
                &mut retransmits_gone,
                Some(&line),
            );
        }
        // 2. Deliver every datagram whose deadline has passed.
        net.pump_due();
        // 3. Channels. The supervision channel always steps: the plane
        // it carries must outlive both the supervisor and the core.
        for cell in &cells {
            if !cell.core_crashed {
                if !cell.flags.discovery_down {
                    cell.core.disco_channel.step();
                }
                if !cell.flags.sink_down {
                    cell.core.sink_channel.step();
                }
            }
            cell.sup_channel.step();
            // Telemetry is a background plane: its channels step on a
            // coarser (still deterministic) cadence, an order of
            // magnitude below the export interval, so observing the
            // world stays cheap relative to running it.
            if now.is_multiple_of(TEL_STEP_MICROS) {
                if let Some(tel) = &cell.telemetry {
                    tel.channel.step();
                }
            }
            for dev in &cell.devices {
                if !dev.crashed {
                    dev.channel.step();
                }
            }
        }
        if now.is_multiple_of(TEL_STEP_MICROS) {
            if let Some(obs) = &observer {
                obs.channel.step();
            }
        }
        // 4. Protocol logic on top of the channels.
        for cell in &cells {
            if !cell.core_crashed && !cell.flags.discovery_down {
                cell.core.service.step();
            }
            for dev in &cell.devices {
                if !dev.crashed {
                    dev.agent.step();
                }
            }
        }
        // 5. Membership transitions into the oracle, per cell.
        for (i, cell) in cells.iter_mut().enumerate() {
            let _ = i;
            while let Ok(ev) = cell.core.service.events().try_recv() {
                match ev {
                    MembershipEvent::Joined(info) => {
                        let _ = cell
                            .core
                            .wal
                            .append(&WalRecord::MemberJoined { info: info.clone() });
                        cell.members.insert(info.id);
                        oracle.record_joined(now, info.id);
                    }
                    MembershipEvent::Purged(id, _reason) => {
                        let _ = cell
                            .core
                            .wal
                            .append(&WalRecord::MemberPurged { member: id });
                        cell.members.remove(&id);
                        oracle.record_purged(now, id);
                    }
                    MembershipEvent::Suspected(id) => {
                        oracle.record_fault(now, format!("suspected {id}"));
                    }
                    MembershipEvent::Recovered(id) => {
                        oracle.record_fault(now, format!("recovered {id}"));
                    }
                }
            }
        }
        // 5s. The supervision plane. Ward views snapshot first so the
        // processing order of the cells cannot change what either sees.
        let views: Vec<CellView> = cells
            .iter()
            .map(|c| CellView {
                discovery_down: c.flags.discovery_down,
                sink_down: c.flags.sink_down,
                sup_alive: c.rt.alive,
                core_crashed: c.core_crashed,
            })
            .collect();
        for i in 0..2 {
            let ward_view = views[1 - i];
            let sibling_sup = sup_ids[1 - i];
            supervision_step(
                &mut cells[i],
                i,
                ward_view,
                sibling_sup,
                &net,
                &reliable,
                &discovery_config,
                &shared,
                &tracer,
                &mut oracle,
                now,
                &supervision,
                &peer_config,
            );
        }
        // 5b. Checkpoints, gated on the reconcile-before-checkpoint
        // invariant *even when the supervisor that runs reconciles is
        // dead*: a cell whose last anti-entropy pass is older than one
        // checkpoint interval refuses to compact, because compaction
        // would freeze a possibly-diverged view into durable truth.
        // The adopter's wire-ordered Reconcile is what re-arms this.
        for (i, cell) in cells.iter_mut().enumerate() {
            if cell.core_crashed
                || cell.flags.any_down()
                || now == 0
                || !now.is_multiple_of(CHECKPOINT_MICROS)
            {
                continue;
            }
            if now.saturating_sub(cell.last_reconcile_at) <= CHECKPOINT_MICROS {
                checkpoint(&cell.core);
            } else {
                cell.checkpoints_deferred += 1;
                oracle.record_fault(
                    now,
                    format!("cell{i} checkpoint deferred (no recent reconcile)"),
                );
            }
        }
        // 6. Devices publish to their own cell's sink.
        if now < end {
            for cell in &mut cells {
                let sink_id = cell.sink_id;
                let telemetry = &mut cell.telemetry;
                for dev in &mut cell.devices {
                    if dev.crashed
                        || dev.quenched
                        || !dev.agent.is_member()
                        || now < dev.next_publish
                    {
                        continue;
                    }
                    let seq = dev.next_seq;
                    dev.next_seq += 1;
                    dev.next_publish = now + publish_interval;
                    let t = TraceId::for_event(dev.id, seq);
                    tracer.record(t, Hop::Published);
                    oracle.record_publish(now, dev.id, seq);
                    if let Some(tel) = telemetry.as_mut() {
                        tel.published.inc();
                        tel.publish_at.insert((dev.id, seq), now);
                    }
                    let _ = dev.channel.send_traced(sink_id, encode(seq), t);
                }
            }
        }
        // 7. Sinks accept deliveries, per cell.
        for cell in &mut cells {
            while let Ok(incoming) = cell.core.sink_channel.recv(Some(Duration::ZERO)) {
                if let Incoming::Reliable { from, seq, payload } = incoming {
                    if let Some(published) = decode(&payload) {
                        let t = TraceId::for_event(from, published);
                        if cell.members.contains(&from) {
                            tracer.record(t, Hop::Delivered);
                            oracle.record_delivery(now, from, published);
                            if let Some(tel) = cell.telemetry.as_mut() {
                                tel.delivered.inc();
                                if let Some(stamp) = tel.publish_at.remove(&(from, published)) {
                                    tel.slo_delivery.record(now, now - stamp);
                                }
                            }
                        } else {
                            tracer.record(
                                t,
                                Hop::Dropped {
                                    reason: "purge-filter",
                                },
                            );
                            oracle.record_filtered(now, from, published);
                        }
                    }
                    cell.core.sink_channel.consumed(from, seq);
                }
            }
        }
        // 8. The telemetry plane: cells export on cadence, then the
        // observer folds whatever has arrived and watches SLO burn.
        // Cell-runtime plane, like the supervision channel — it keeps
        // exporting with the supervisor dead, which is exactly what
        // lets the ward view narrate the outage. Runs on the coarse
        // telemetry cadence: exports only move when the channels step.
        let tel_due = now.is_multiple_of(TEL_STEP_MICROS);
        if let Some(obs) = observer.as_mut().filter(|_| tel_due) {
            for cell in &mut cells {
                let Cell {
                    telemetry,
                    members,
                    rt,
                    member_id,
                    ..
                } = cell;
                let Some(tel) = telemetry.as_mut() else {
                    continue;
                };
                // The last export fires a full interval before the run
                // ends, so its messages can land inside the drain
                // window instead of dying in flight.
                if now < tel.next_export || now + tel.interval > total {
                    continue;
                }
                tel.next_export = now + tel.interval;
                tel.members_gauge.set(members.len() as u64);
                tel.sup_up_gauge.set(u64::from(rt.alive));
                tel.export_seq += 1;
                let series = tel.exporter.export(&tel.registry.gather());
                // An empty delta still ships: freshness and lag need
                // the heartbeat even when nothing moved.
                let delta = TelemetryMsg::MetricDelta {
                    cell: *member_id,
                    export_seq: tel.export_seq,
                    series,
                };
                let _ = tel
                    .channel
                    .send(obs.id, codec::to_bytes(&delta.to_event(now)));
                tel.exports_sent += 1;
                if !tel.pending_hops.is_empty() {
                    let hops = std::mem::take(&mut tel.pending_hops);
                    let export = TelemetryMsg::TraceExport {
                        cell: *member_id,
                        export_seq: tel.export_seq,
                        hops,
                        truncated: Vec::new(),
                    };
                    let _ = tel
                        .channel
                        .send(obs.id, codec::to_bytes(&export.to_event(now)));
                    tel.exports_sent += 1;
                }
                let slo_reports: Vec<TelemetryMsg> = tel
                    .slo_delivery
                    .reports(now, *member_id)
                    .into_iter()
                    .chain(tel.slo_ttr.reports(now, *member_id))
                    .collect();
                if slo_reports != tel.last_slo {
                    for report in &slo_reports {
                        let _ = tel
                            .channel
                            .send(obs.id, codec::to_bytes(&report.to_event(now)));
                        tel.exports_sent += 1;
                    }
                    tel.last_slo = slo_reports;
                }
            }
            while let Ok(incoming) = obs.channel.recv(Some(Duration::ZERO)) {
                if let Incoming::Reliable { payload, .. } = incoming {
                    if let Ok(event) = codec::from_bytes::<Event>(&payload) {
                        if let Some(msg) = TelemetryMsg::from_event(&event) {
                            obs.ward.apply(&msg, event.timestamp_micros(), now);
                        }
                    }
                }
            }
            if obs.monitor.due(now) {
                let samples = obs.ward.registry().gather();
                // The invariant the delta encoding exists to hold:
                // ward-rolled counters never move backwards, crashes
                // and journal replays included. Checked on the monitor
                // cadence, over the same gather the detectors read.
                for sample in &samples {
                    if !sample.monotonic {
                        continue;
                    }
                    let mut key = String::with_capacity(sample.name.len() + 16);
                    key.push_str(&sample.name);
                    for (k, v) in &sample.labels {
                        key.push('\u{1}');
                        key.push_str(k);
                        key.push('\u{2}');
                        key.push_str(v);
                    }
                    let prev = obs.prev_counters.insert(key, sample.value).unwrap_or(0);
                    if sample.value < prev {
                        obs.backwards += 1;
                        oracle.record_fault(
                            now,
                            format!(
                                "telemetry: ward counter {} went backwards ({prev} -> {})",
                                sample.name, sample.value
                            ),
                        );
                    }
                }
                for t in obs.monitor.observe(now, &samples, &[]) {
                    if t.to != HealthState::Healthy {
                        obs.slo_alerts += 1;
                        oracle.record_fault(
                            now,
                            format!(
                                "telemetry: slo burn alert {} {}->{}",
                                t.component,
                                t.from.as_str(),
                                t.to.as_str()
                            ),
                        );
                    }
                }
            }
        }
        ticks += 1;
        if now >= total {
            break;
        }
        now += TICK_MICROS;
        clock.advance_micros(TICK_MICROS);
    }

    let device_ids: Vec<ServiceId> = cells
        .iter()
        .flat_map(|c| c.device_ids.iter().copied())
        .collect();
    let mut episodes: Vec<(u64, TraceId)> = Vec::new();
    let mut exports_sent = 0u64;
    for cell in &mut cells {
        if let Some(tel) = cell.telemetry.as_mut() {
            episodes.append(&mut tel.episodes);
            exports_sent += tel.exports_sent;
        }
    }
    episodes.sort_by_key(|&(target, trace)| (target, trace.raw()));
    let telemetry = observer.map(|obs| {
        let lag = obs.ward.registry().histogram(
            "smc_ward_aggregation_lag_micros",
            "Virtual-time lag between a cell stamping an export and the observer folding it.",
        );
        let exports_applied = obs
            .ward
            .registry()
            .counter(
                "smc_ward_exports_applied_total",
                "Telemetry exports folded into the ward view.",
            )
            .get();
        TelemetryPlaneReport {
            episodes,
            exports_applied,
            duplicates: obs.ward.duplicates(),
            backwards: obs.backwards,
            lag_p50_micros: lag.quantile(0.5),
            lag_p95_micros: lag.quantile(0.95),
            slo_alerts: obs.slo_alerts,
            exports_sent,
            ward: obs.ward,
        }
    });
    let cells = cells
        .into_iter()
        .map(|cell| CellReport {
            member_id: cell.member_id,
            supervisor_alive: cell.rt.alive,
            supervisor_revivals: cell.supervisor_revivals,
            core_recoveries: cell.core_recoveries,
            peer: cell.peer.report().clone(),
            report: cell.rt.supervisor.report(),
            local_repairs: cell.local_repairs,
            remote_commands: cell.remote_commands,
            remote_repairs: cell.remote_repairs,
            reconciles: cell.reconciles,
            reconcile_fixes: cell.reconcile_fixes,
            checkpoints_deferred: cell.checkpoints_deferred,
            missed_ack_interrupts: cell.rt.interrupt_line.load(Ordering::Relaxed)
                + cell.missed_ack_total,
            adopted_at_end: cell.peer.adopted(),
        })
        .collect();
    PeerRunReport {
        oracle,
        device_ids,
        cells,
        ticks,
        virtual_micros: total,
        telemetry,
    }
}

/// One cell's supervision-plane turn: drain the wire, run the peer
/// protocol, drive the remote session if adopting, then the local
/// detect → repair loop.
#[allow(clippy::too_many_arguments)]
fn supervision_step(
    cell: &mut Cell,
    idx: usize,
    ward_view: CellView,
    sibling_sup: ServiceId,
    net: &SimNetwork,
    reliable: &ReliableConfig,
    discovery_config: &DiscoveryConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    oracle: &mut DeliveryOracle,
    now: u64,
    sup_opts: &SupervisionOptions,
    peer_config: &PeerConfig,
) {
    // a. Drain the supervision channel. Repair/Reconcile are actuator
    // commands the cell runtime executes even with its supervisor dead;
    // everything else is watcher-plane protocol.
    let mut msgs: Vec<(SupervisionMsg, Option<u64>)> = Vec::new();
    while let Ok(incoming) = cell.sup_channel.recv(Some(Duration::ZERO)) {
        if let Incoming::Reliable { payload, .. } = incoming {
            if let Ok(event) = codec::from_bytes::<Event>(&payload) {
                if let Some(msg) = SupervisionMsg::from_event(&event) {
                    // A repair command may carry the adopter's episode
                    // trace; the target's half of the stitched journey
                    // hangs off it.
                    let episode = event
                        .attr(wellknown::TEL_EPISODE)
                        .and_then(|v| v.as_int())
                        .map(|v| v as u64);
                    msgs.push((msg, episode));
                }
            }
        }
    }
    let mut peer_actions = Vec::new();
    for (msg, episode_attr) in msgs {
        match &msg {
            SupervisionMsg::Repair {
                target, component, ..
            } if *target == cell.member_id => {
                let revivals_before = cell.supervisor_revivals;
                // Policy-mediated execution: the wire command becomes a
                // typed event, the built-in obligation fires Restart.
                let fired_list = cell.actuator.on_event(&msg.to_event(now));
                for fired in fired_list {
                    let ActionSpec::Restart { component: tmpl } = &fired.action else {
                        continue;
                    };
                    let resolved = tmpl
                        .resolve(&fired.trigger)
                        .and_then(|v| v.as_str().map(str::to_string));
                    if let Some(resolved) = resolved {
                        debug_assert_eq!(&resolved, component);
                        execute_repair(
                            cell,
                            idx,
                            &resolved,
                            true,
                            net,
                            reliable,
                            discovery_config,
                            clock,
                            tracer,
                            oracle,
                            now,
                            sup_opts,
                            peer_config,
                        );
                    }
                }
                // The cross-cell leg: the repair revived this cell's
                // supervisor, so the hop is recorded *here*, under the
                // adopter's episode trace, and exported on this cell's
                // next telemetry cadence.
                if cell.supervisor_revivals > revivals_before {
                    if let (Some(raw), Some(tel)) = (episode_attr, cell.telemetry.as_mut()) {
                        tel.record_hop(TraceId::from_raw(raw), "remote-restart", now);
                    }
                }
            }
            SupervisionMsg::Reconcile { target, requester } if *target == cell.member_id => {
                // A wire-ordered anti-entropy pass: the adopter insists
                // live views match durable truth before any compaction.
                if !cell.core_crashed {
                    cell.reconciles += 1;
                    cell.last_reconcile_at = now;
                    let fixes = reconcile_pass(&cell.core, &mut cell.members, &cell.flags);
                    for fix in &fixes {
                        oracle.record_fault(
                            now,
                            format!("reconcile(cell{idx}, by {requester}): {fix}"),
                        );
                    }
                    cell.reconcile_fixes
                        .extend(fixes.into_iter().map(|f| (now, f)));
                }
            }
            _ => {
                if cell.rt.alive {
                    peer_actions.extend(cell.peer.on_msg(now, &msg));
                }
            }
        }
    }
    // b + c. The watcher's clock tick, then execute its actions.
    if cell.rt.alive {
        peer_actions.extend(cell.peer.tick(now));
    }
    for action in peer_actions {
        match action {
            smc_health::PeerAction::Send(msg) => {
                if let SupervisionMsg::Claim { target, claimant } = &msg {
                    oracle.record_fault(
                        now,
                        format!("peer {claimant} claims supervision of cell member {target}"),
                    );
                    // A claim opens a supervision episode: mint the
                    // synthetic trace and record its first two hops
                    // (the lapse the claim answers, then the claim).
                    if let Some(tel) = cell.telemetry.as_mut() {
                        if tel.episode.as_ref().is_none_or(|e| e.target != *target) {
                            tel.episode_ordinal += 1;
                            let trace = episode_trace(*target, tel.episode_ordinal);
                            tel.record_hop(trace, "lease-lapse", now);
                            tel.record_hop(trace, "claim", now);
                            tel.episodes.push((*target, trace));
                            tel.episode = Some(EpisodeState {
                                target: *target,
                                trace,
                                started_at: now,
                                adopt_recorded: false,
                                wire_repair_recorded: false,
                            });
                        }
                    }
                }
                send_sup(cell, sibling_sup, &msg, now);
            }
            smc_health::PeerAction::StartRemote { target } => {
                oracle.record_fault(
                    now,
                    format!(
                        "cell member {} adopted cell member {target}",
                        cell.member_id
                    ),
                );
                if let Some(tel) = cell.telemetry.as_mut() {
                    let hop = tel.episode.as_mut().and_then(|ep| {
                        (ep.target == target && !ep.adopt_recorded).then(|| {
                            ep.adopt_recorded = true;
                            ep.trace
                        })
                    });
                    if let Some(trace) = hop {
                        tel.record_hop(trace, "adopt", now);
                    }
                }
                let mut remote = new_remote(sup_opts);
                // Reconcile-before-checkpoint starts *now*: order an
                // anti-entropy pass before the ward's next compaction
                // window, then keep re-arming it on cadence.
                remote.next_reconcile = now + cell.rt.reconcile_micros;
                send_sup(
                    cell,
                    sibling_sup,
                    &SupervisionMsg::Reconcile {
                        target,
                        requester: cell.member_id,
                    },
                    now,
                );
                cell.remote = Some(remote);
            }
            smc_health::PeerAction::StopRemote { target } => {
                oracle.record_fault(
                    now,
                    format!(
                        "cell member {} released cell member {target}",
                        cell.member_id
                    ),
                );
                // Release closes the episode: its duration is exactly
                // the supervision time-to-repair the SLO watches.
                if let Some(tel) = cell.telemetry.as_mut() {
                    if let Some(ep) = tel.episode.take_if(|e| e.target == target) {
                        tel.slo_ttr.record(now, now - ep.started_at);
                    }
                }
                cell.remote = None;
            }
        }
    }
    // d. The remote session: sample the ward, plan repairs, ship them.
    if cell.rt.alive && !ward_view.core_crashed {
        let ward_member = 3 - cell.member_id; // {1,2} → the other one
        let reconcile_micros = cell.rt.reconcile_micros;
        let self_member = cell.member_id;
        let mut order_reconcile = false;
        let mut transition_notes: Vec<String> = Vec::new();
        let mut commands: Vec<(String, u32, String)> = Vec::new();
        if let Some(remote) = cell.remote.as_mut() {
            if now >= remote.next_reconcile {
                remote.next_reconcile = now + reconcile_micros;
                order_reconcile = true;
            }
            if remote.monitor.due(now) {
                let samples = ward_samples(&ward_view);
                let transitions = remote.monitor.observe(now, &samples, &[]);
                let mut actions = Vec::new();
                for t in &transitions {
                    transition_notes.push(format!(
                        "remote supervision(cell member {self_member}) {} {}->{}",
                        t.component,
                        t.from.as_str(),
                        t.to.as_str()
                    ));
                    actions.extend(remote.supervisor.on_transition(t));
                }
                actions.extend(remote.supervisor.tick(now, &remote.monitor.report()));
                for action in actions {
                    let (component, attempt) = match &action {
                        RepairAction::Restart { component, attempt } => {
                            (component.clone(), *attempt)
                        }
                        RepairAction::Escalate { target, .. } => (target.clone(), 0),
                    };
                    commands.push((component, attempt, action.to_string()));
                }
            }
        }
        for note in transition_notes {
            oracle.record_fault(now, note);
        }
        if order_reconcile {
            send_sup(
                cell,
                sibling_sup,
                &SupervisionMsg::Reconcile {
                    target: ward_member,
                    requester: self_member,
                },
                now,
            );
        }
        for (component, attempt, desc) in commands {
            oracle.record_fault(
                now,
                format!("remote repair order: {component} on cell member {ward_member} ({desc})"),
            );
            cell.remote_commands.push((now, desc));
            let supervisor_repair = component == "supervisor";
            let msg = SupervisionMsg::Repair {
                target: ward_member,
                component,
                attempt,
            };
            let mut event = msg.to_event(now);
            // Supervisor revivals carry the episode trace across the
            // wire, so the target can record its restart hop under the
            // same journey the adopter opened.
            if supervisor_repair {
                if let Some(tel) = cell.telemetry.as_mut() {
                    let hop = tel.episode.as_mut().and_then(|ep| {
                        (ep.target == ward_member).then(|| {
                            let first = !ep.wire_repair_recorded;
                            ep.wire_repair_recorded = true;
                            (ep.trace, first)
                        })
                    });
                    if let Some((trace, first)) = hop {
                        event
                            .attributes_mut()
                            .insert(wellknown::TEL_EPISODE, trace.raw() as i64);
                        if first {
                            tel.record_hop(trace, "wire-repair", now);
                        }
                    }
                }
            }
            let _ = cell.sup_channel.send(sibling_sup, codec::to_bytes(&event));
        }
    }
    // e. Local anti-entropy on cadence (alive only — a dead supervisor
    // runs no reconciles, which is exactly what starves the checkpoint
    // gate until the adopter's wire-ordered pass re-arms it).
    if cell.rt.alive && now >= cell.rt.next_reconcile {
        cell.rt.next_reconcile = now + cell.rt.reconcile_micros;
        if !cell.core_crashed {
            cell.reconciles += 1;
            cell.last_reconcile_at = now;
            let fixes = reconcile_pass(&cell.core, &mut cell.members, &cell.flags);
            for fix in &fixes {
                oracle.record_fault(now, format!("reconcile(cell{idx}): {fix}"));
            }
            cell.rt.supervisor.record_reconcile(now, &fixes);
            cell.reconcile_fixes
                .extend(fixes.into_iter().map(|f| (now, f)));
        }
    }
    // f. The local detect → repair loop, interrupt-accelerated exactly
    // like the single-cell world.
    if cell.rt.alive && !cell.core_crashed {
        let pulses = cell.rt.interrupt_line.load(Ordering::Relaxed);
        let interrupted = pulses != cell.rt.seen_interrupts;
        cell.rt.seen_interrupts = pulses;
        if cell.rt.monitor.due(now) || interrupted {
            let samples = cell.rt.samples(&cell.flags);
            let transitions = cell.rt.monitor.observe(now, &samples, &[]);
            let mut actions = Vec::new();
            for t in &transitions {
                oracle.record_fault(
                    now,
                    format!(
                        "supervision(cell{idx}) {} {}->{}",
                        t.component,
                        t.from.as_str(),
                        t.to.as_str()
                    ),
                );
                if t.to == HealthState::Failed {
                    for fired in cell.rt.policy.on_event(&health_event(t, None)) {
                        if let ActionSpec::Restart { component } = &fired.action {
                            if component
                                .resolve(&fired.trigger)
                                .is_some_and(|v| v.as_str().is_some())
                            {
                                cell.rt.policy_restarts += 1;
                            }
                        }
                    }
                }
                actions.extend(cell.rt.supervisor.on_transition(t));
            }
            actions.extend(cell.rt.supervisor.tick(now, &cell.rt.monitor.report()));
            for action in actions {
                let target = match &action {
                    RepairAction::Restart { component, .. } => component.clone(),
                    RepairAction::Escalate { target, .. } => target.clone(),
                };
                execute_repair(
                    cell,
                    idx,
                    &target,
                    false,
                    net,
                    reliable,
                    discovery_config,
                    clock,
                    tracer,
                    oracle,
                    now,
                    sup_opts,
                    peer_config,
                );
            }
        }
    }
}

/// Executes one repair on `cell` — from its own supervisor (`remote ==
/// false`) or a sibling's wire command (`remote == true`). Restart of a
/// wedged component is refused (the gauge stays down and the planner
/// escalates); `core` is the escalation target (full reboot from the
/// WAL, clearing wedges); `supervisor` revives a killed supervisor
/// plane — the repair only a *sibling* can ever order.
#[allow(clippy::too_many_arguments)]
fn execute_repair(
    cell: &mut Cell,
    idx: usize,
    component: &str,
    remote: bool,
    net: &SimNetwork,
    reliable: &ReliableConfig,
    discovery_config: &DiscoveryConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    oracle: &mut DeliveryOracle,
    now: u64,
    sup_opts: &SupervisionOptions,
    peer_config: &PeerConfig,
) {
    fn record(
        oracle: &mut DeliveryOracle,
        cell: &mut Cell,
        remote: bool,
        idx: usize,
        now: u64,
        what: String,
    ) {
        let kind = if remote { "remote repair" } else { "repair" };
        oracle.record_fault(now, format!("cell{idx} {kind} {what}"));
        if remote {
            cell.remote_repairs.push((now, what));
        } else {
            cell.local_repairs.push((now, what));
        }
    }
    match component {
        "discovery" => {
            if !cell.flags.discovery_down {
                // Already back; nothing to do.
            } else if cell.flags.discovery_wedged {
                record(
                    oracle,
                    cell,
                    remote,
                    idx,
                    now,
                    "discovery: failed (wedged)".to_string(),
                );
            } else {
                restart_discovery(
                    net,
                    &mut cell.core,
                    reliable,
                    discovery_config,
                    clock,
                    tracer,
                    cell.disco_id,
                    cell.sink_id,
                    CellId(cell.member_id),
                );
                cell.flags.discovery_down = false;
                record(
                    oracle,
                    cell,
                    remote,
                    idx,
                    now,
                    "discovery: done".to_string(),
                );
            }
        }
        "sink" => {
            if !cell.flags.sink_down {
                // Already back; nothing to do.
            } else if cell.flags.sink_wedged {
                record(
                    oracle,
                    cell,
                    remote,
                    idx,
                    now,
                    "sink: failed (wedged)".to_string(),
                );
            } else {
                restart_sink(
                    net,
                    &mut cell.core,
                    reliable,
                    clock,
                    tracer,
                    cell.sink_id,
                    &cell.members,
                    oracle,
                    now,
                );
                cell.flags.sink_down = false;
                record(oracle, cell, remote, idx, now, "sink: done".to_string());
            }
        }
        "core" => {
            if !cell.core_crashed {
                if !cell.flags.sink_down {
                    cell.core.sink_channel.close();
                }
                if !cell.flags.discovery_down {
                    cell.core.service.shutdown();
                }
                cell.core_crashed = true;
            }
            reboot_core(
                cell,
                net,
                reliable,
                discovery_config,
                clock,
                tracer,
                oracle,
                now,
            );
            record(oracle, cell, remote, idx, now, "core: rebooted".to_string());
        }
        "supervisor" if !cell.rt.alive => {
            // A fresh supervisor plane: fresh monitor (no stale
            // hysteresis), fresh watcher (its first tick heartbeats,
            // which is what makes the adopter release).
            cell.rt = SupervisionRuntime::new(sup_opts.clone());
            for dev in &cell.devices {
                dev.channel
                    .set_missed_ack_interrupt(Arc::clone(&cell.rt.interrupt_line));
            }
            cell.peer = PeerSupervisor::new(cell.member_id, [1u64, 2], peer_config.clone());
            cell.supervisor_revivals += 1;
            record(
                oracle,
                cell,
                remote,
                idx,
                now,
                "supervisor: revived".to_string(),
            );
        }
        _ => {}
    }
}

/// Rebuilds `cell`'s core from its write-ahead log (the escalation
/// repair and the scripted `CoreRestart`), re-processing events the
/// outage caught between ack and recording.
#[allow(clippy::too_many_arguments)]
fn reboot_core(
    cell: &mut Cell,
    net: &SimNetwork,
    reliable: &ReliableConfig,
    discovery_config: &DiscoveryConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    oracle: &mut DeliveryOracle,
    now: u64,
) {
    let backend = Arc::clone(&cell.backend);
    let (reborn, recovered) = boot_core(
        net,
        &backend,
        reliable,
        discovery_config,
        clock,
        tracer,
        Some((cell.disco_id, cell.sink_id)),
        &mut cell.members,
        CellId(cell.member_id),
    );
    cell.core = reborn;
    cell.core_crashed = false;
    cell.core_recoveries += 1;
    for (peer, _epoch, seq, payload) in recovered.snapshot.pending_rx_for(smc_wal::CHAN_BUS) {
        if let Some(published) = decode(&payload) {
            let t = TraceId::for_event(peer, published);
            if cell.members.contains(&peer) {
                tracer.record(t, Hop::Delivered);
                oracle.record_delivery(now, peer, published);
            } else {
                tracer.record(
                    t,
                    Hop::Dropped {
                        reason: "purge-filter",
                    },
                );
                oracle.record_filtered(now, peer, published);
            }
        }
        cell.core.sink_channel.consumed(peer, seq);
    }
    cell.flags = ComponentFlags::default();
}
