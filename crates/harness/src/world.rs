//! The chaos world: a cell plus device nodes in one virtual timeline.
//!
//! [`run`] builds a simulated radio environment ([`SimNetwork`]) around a
//! [`ManualClock`], wires a step-driven discovery service, an event sink
//! (standing in for the cell's bus endpoint) and `scenario.nodes` device
//! agents onto it, then single-threadedly steps virtual time in fixed
//! ticks: scripted faults fire at their scripted instants, devices
//! publish while they hold membership, and every observable fact lands in
//! a [`DeliveryOracle`] in a deterministic order. Seconds of simulated
//! chaos run in milliseconds of wall time, and the same seed always
//! produces the same trace, byte for byte.
//!
//! The core itself is durable: its channels journal cursors and outbound
//! queues into a write-ahead log (an in-memory [`MemBackend`] by
//! default), and a snapshot is cut every [`CHECKPOINT_MICROS`] of virtual
//! time. A [`ChaosOp::CoreCrash`] tears the whole core down — discovery
//! table, sink cursors, pending queues — and rebuilds it from that log,
//! so the oracle checks exactly-once and FIFO *across* the restart
//! boundary. [`run_with_backend`] swaps the backend, which is how tests
//! prove the teeth: the same scenario on a `NoopBackend` loses the
//! cursors and the oracle flags the redelivery.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smc_discovery::{AgentConfig, DiscoveryConfig, DiscoveryService, MemberAgent, MembershipEvent};
use smc_health::{
    health_event, ComponentDown, DeliveryLatency, Detector, FlightRecorder, HealthConfig,
    HealthMonitor, HealthReport, HealthState, HealthTransition, Hysteresis, MembershipFlap,
    QueueGrowth, RepairAction, RetransmitStorm, ServiceRegistry, ServiceSpec, SuperviseConfig,
    SupervisionReport, Supervisor, WalStall,
};
use smc_policy::{
    health_quench_policies, supervision_policies, telemetry_quench_exemptions, ActionClass,
    ActionSpec, Decision, PolicyService,
};
use smc_telemetry::{
    Hop, HopRecord, Journey, Registry, Sample, TraceSink, Tracer, DEFAULT_SINK_CAPACITY,
};
use smc_transport::{Incoming, LinkConfig, ReliableChannel, ReliableConfig, SimNetwork};
use smc_types::{
    CellId, CoreSnapshot, CursorEntry, ManualClock, OutboundEntry, PendingRx, ServiceId,
    ServiceInfo, SharedClock, TraceId, WalRecord,
};
use smc_wal::{
    MemBackend, Recovered, Wal, WalBackend, WalChannelJournal, WalConfig, CHAN_BUS, CHAN_DISCOVERY,
};

use crate::oracle::DeliveryOracle;
use crate::scenario::{ChaosOp, CoreComponent, CorruptTarget, LinkProfileKind, Scenario};

/// Virtual-time step granularity.
pub(crate) const TICK_MICROS: u64 = 2_000;
/// Quiescent tail after the scripted run: publishing stops, faults keep
/// resolving, retransmissions flush.
pub(crate) const DRAIN_MICROS: u64 = 3_000_000;
/// Every n-th message carries a large payload to exercise fragmentation.
const BIG_EVERY: u64 = 5;
/// Virtual interval between core snapshots (log compaction points).
pub(crate) const CHECKPOINT_MICROS: u64 = 2_000_000;
/// The fabricated member `CorruptTarget::GhostMember` injects into the
/// sink's routing view. Out of the simulator's address range, so it can
/// never collide with a real device.
pub(crate) const GHOST_MEMBER: ServiceId = ServiceId::from_raw(0x0BAD_C0DE_0BAD);

/// Reliability parameters the harness runs by default.
pub fn default_reliable() -> ReliableConfig {
    ReliableConfig::default()
}

/// Discovery timings the harness runs by default: second-scale leases
/// that a 30-virtual-second scenario exercises many times over.
pub fn default_discovery() -> DiscoveryConfig {
    DiscoveryConfig {
        beacon_interval: Duration::from_millis(200),
        lease: Duration::from_secs(1),
        grace: Duration::from_secs(1),
        ..DiscoveryConfig::default()
    }
}

/// Everything configurable about a chaos run.
pub struct RunOptions {
    /// Reliable-channel parameters (weaken them — `dedup: false` — to
    /// prove the oracle has teeth).
    pub reliable: ReliableConfig,
    /// Discovery timings and admission control.
    pub discovery: DiscoveryConfig,
    /// The core's WAL backend ([`MemBackend`] by default; `NoopBackend`
    /// demonstrates what durability buys).
    pub backend: Arc<dyn WalBackend>,
    /// Whether every channel, publish and delivery records hops into a
    /// trace sink. On by default; the bench's untraced arm turns it off.
    pub trace: bool,
    /// Ring capacity of the trace sink, in hop records.
    pub trace_capacity: usize,
    /// Contention/occupancy probes (control-mutex hold times, proxy
    /// queue depth at enqueue, WAL append wait/service split) feeding a
    /// [`ProbeSink`](smc_telemetry::ProbeSink) exported through the
    /// run's registry. Off by default; requires `trace`.
    pub probes: bool,
    /// Autonomic self-observation: `Some` runs a [`HealthMonitor`] (plus
    /// flight recorder and the built-in quench obligations) inside the
    /// virtual timeline. `None` (the default) leaves the run untouched —
    /// traces stay byte-identical with pre-health harness versions.
    pub health: Option<HealthOptions>,
    /// Self-repair: `Some` runs a [`Supervisor`] over the core's
    /// components — a `component-down` detector feeds failure episodes,
    /// restarts rebuild the dead component from the write-ahead log,
    /// wedged components escalate to a full core reboot, and a periodic
    /// anti-entropy pass reconciles live views against durable truth.
    /// `None` (the default) leaves [`ChaosOp::KillComponent`] faults
    /// permanently down — the teeth baseline.
    pub supervision: Option<SupervisionOptions>,
}

/// How the in-run supervisor behaves.
#[derive(Debug, Clone)]
pub struct SupervisionOptions {
    /// Restart budget and retry pacing.
    pub config: SuperviseConfig,
    /// Sampling cadence and hysteresis of the component-down detector.
    /// The default is deliberately tight (fail after 2 bad 250 ms
    /// samples) so time-to-repair stays near one virtual second.
    pub health: HealthConfig,
    /// Virtual interval between anti-entropy reconcile passes.
    pub reconcile_micros: u64,
}

impl Default for SupervisionOptions {
    fn default() -> Self {
        SupervisionOptions {
            config: SuperviseConfig::default(),
            health: HealthConfig {
                interval_micros: 250_000,
                hysteresis: Hysteresis {
                    degrade_after: 1,
                    fail_after: 2,
                    recover_after: 1,
                },
            },
            reconcile_micros: 500_000,
        }
    }
}

/// How the in-run health monitor behaves.
#[derive(Debug, Clone)]
pub struct HealthOptions {
    /// Sampling interval and hysteresis.
    pub config: HealthConfig,
    /// Whether the built-in obligations act on transitions: a member
    /// whose channel goes `Degraded` is quenched (stops publishing)
    /// until it recovers. Off = observe-only.
    pub quench: bool,
    /// Members the quench obligation may never silence (raw service
    /// ids): telemetry observers and anything else that must stay
    /// audible while degraded. Registered as authorisation denies on
    /// `quench:<raw>`, checked at the actuator.
    pub quench_exempt: Vec<u64>,
    /// When set, the flight recorder dumps here if the run ends with an
    /// oracle violation or saw a core crash.
    pub dump_path: Option<PathBuf>,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            config: HealthConfig::default(),
            quench: true,
            quench_exempt: Vec::new(),
            dump_path: None,
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            reliable: default_reliable(),
            discovery: default_discovery(),
            backend: Arc::new(MemBackend::new()),
            trace: true,
            trace_capacity: DEFAULT_SINK_CAPACITY,
            probes: false,
            health: None,
            supervision: None,
        }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("trace", &self.trace)
            .field("trace_capacity", &self.trace_capacity)
            .finish_non_exhaustive()
    }
}

/// The outcome of one chaos run.
#[derive(Debug)]
pub struct RunReport {
    /// The oracle holding the full trace and any violation.
    pub oracle: DeliveryOracle,
    /// The device endpoints, in node-index order.
    pub device_ids: Vec<ServiceId>,
    /// Ticks executed.
    pub ticks: u64,
    /// Virtual micros covered (scripted duration plus drain).
    pub virtual_micros: u64,
    /// Core restarts recovered from the write-ahead log.
    pub core_recoveries: u64,
    /// Wall-clock micros spent replaying the log across all recoveries.
    /// Reporting only — never part of the deterministic trace.
    pub recovery_micros_total: u64,
    /// Reliable-channel retransmissions summed over every channel and
    /// every incarnation (crashed devices and cores included).
    pub retransmits: u64,
    /// The hop-record sink every component traced into, when
    /// [`RunOptions::trace`] was on.
    pub trace_sink: Option<Arc<TraceSink>>,
    /// The run's metrics registry: WAL, discovery, channel and harness
    /// counters, sampled when rendered.
    pub registry: Registry,
    /// What the health monitor saw, when [`RunOptions::health`] was on.
    pub health: Option<HealthOutcome>,
    /// What the supervisor saw and repaired, when
    /// [`RunOptions::supervision`] was on.
    pub supervision: Option<SupervisionOutcome>,
}

/// Everything the in-run supervisor produced.
#[derive(Debug)]
pub struct SupervisionOutcome {
    /// Episode accounting: restarts, escalations, per-episode
    /// time-to-repair, the full repair log.
    pub report: SupervisionReport,
    /// Repair actions the harness actually executed (or refused, for
    /// wedged components): `(at_micros, what)`.
    pub repairs: Vec<(u64, String)>,
    /// Anti-entropy passes run.
    pub reconciles: u64,
    /// Divergences the reconcile passes repaired: `(at_micros, what)`.
    pub reconcile_fixes: Vec<(u64, String)>,
    /// `Restart` actions the built-in supervision obligation fired
    /// through the policy service (the policy-layer view of the same
    /// failures the supervisor handled).
    pub policy_restarts: u64,
    /// Missed-ack retransmission rounds that pulsed the monitor's
    /// interrupt line (each one woke an immediate sample).
    pub missed_ack_interrupts: u64,
    /// `false` when a [`ChaosOp::KillSupervisor`] left the in-process
    /// supervisor dead at run end — in this single-cell world nothing
    /// revives it, so any outage it was mid-repair on stays unrepaired.
    pub supervisor_alive: bool,
}

impl SupervisionOutcome {
    /// `true` when every failure episode was repaired by run end.
    pub fn converged(&self) -> bool {
        self.report.converged()
    }
}

/// Everything the in-run health monitor produced.
#[derive(Debug)]
pub struct HealthOutcome {
    /// Every state transition, in virtual-time order.
    pub transitions: Vec<HealthTransition>,
    /// Every quench/wake the built-in obligations applied:
    /// `(at_micros, member, quenched)`.
    pub quenches: Vec<(u64, ServiceId, bool)>,
    /// Final per-component health.
    pub report: HealthReport,
    /// The black box: registry snapshots, hops and notes from the run.
    pub recorder: FlightRecorder,
    /// Where the recorder dumped, if it did.
    pub dumped_to: Option<PathBuf>,
}

impl HealthOutcome {
    /// The first transition of `component` into `to`, if any.
    pub fn first_transition(
        &self,
        component: &str,
        to: smc_health::HealthState,
    ) -> Option<&HealthTransition> {
        self.transitions
            .iter()
            .find(|t| t.component == component && t.to == to)
    }

    /// `true` when the run produced no transitions at all — every
    /// component stayed `Healthy` throughout (the clean-run criterion).
    pub fn stayed_green(&self) -> bool {
        self.transitions.is_empty() && self.report.all_healthy()
    }
}

impl RunReport {
    /// The byte-comparable rendering of the whole trace.
    pub fn trace_text(&self) -> String {
        self.oracle.trace_text()
    }

    /// The hop-by-hop journey of one published message, if tracing was
    /// on (`None` otherwise; an *empty* journey means the ring has
    /// overwritten its records).
    pub fn journey(&self, sender: ServiceId, seq: u64) -> Option<Journey> {
        self.trace_sink
            .as_ref()
            .map(|s| s.journey(TraceId::for_event(sender, seq)))
    }

    /// Panics with seed + trace if a delivery guarantee broke.
    pub fn assert_clean(&self) {
        self.oracle.assert_clean();
    }

    /// `true` when every published message of every device was
    /// delivered — only meaningful for scenarios without purges.
    pub fn all_delivered(&self) -> bool {
        self.device_ids
            .iter()
            .all(|&id| self.oracle.delivered(id) == self.oracle.published(id))
    }

    /// Total messages published across devices.
    pub fn total_published(&self) -> u64 {
        self.device_ids
            .iter()
            .map(|&id| self.oracle.published(id))
            .sum()
    }

    /// Total messages delivered across devices.
    pub fn total_delivered(&self) -> u64 {
        self.device_ids
            .iter()
            .map(|&id| self.oracle.delivered(id))
            .sum()
    }

    /// `true` if the trace contains a purge of `member`.
    pub fn was_purged(&self, member: ServiceId) -> bool {
        self.oracle.trace().iter().any(
            |e| matches!(e, crate::oracle::TraceEvent::Purged { member: m, .. } if *m == member),
        )
    }

    /// How many times `member` was admitted.
    pub fn times_joined(&self, member: ServiceId) -> usize {
        self.oracle
            .trace()
            .iter()
            .filter(|e| matches!(e, crate::oracle::TraceEvent::Joined { member: m, .. } if *m == member))
            .count()
    }
}

/// A fault-timeline entry, expanded from the scenario's scripted ops.
/// Core acts carry no node index (`usize::MAX` sentinel in the timeline).
#[derive(Debug, Clone)]
pub(crate) enum Act {
    Loss(f64),
    Dup(f64),
    Heal,
    Profile(LinkProfileKind),
    PartitionOn,
    PartitionOff,
    Domain(u32),
    Crash,
    Restart,
    CoreCrash,
    CoreRestart,
    Kill(CoreComponent, bool),
    Corrupt(CorruptTarget),
    /// The in-process supervisor of cell `n` dies (no scripted revival).
    KillSupervisor(usize),
    /// Cell `n`'s inter-cell links sever (`true`) or heal (`false`).
    CellPartition(usize, bool),
}

/// Which core components are currently dead (and whether a restart can
/// bring them back). Tracked whether or not supervision is on: without a
/// supervisor a killed component simply stays down.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ComponentFlags {
    pub(crate) discovery_down: bool,
    pub(crate) sink_down: bool,
    pub(crate) discovery_wedged: bool,
    pub(crate) sink_wedged: bool,
}

impl ComponentFlags {
    pub(crate) fn any_down(&self) -> bool {
        self.discovery_down || self.sink_down
    }
}

/// The in-run repair stack: component-down detection, the supervisor,
/// the built-in supervision obligation, and reconcile bookkeeping.
pub(crate) struct SupervisionRuntime {
    pub(crate) monitor: HealthMonitor,
    pub(crate) supervisor: Supervisor,
    pub(crate) policy: PolicyService,
    pub(crate) reconcile_micros: u64,
    pub(crate) next_reconcile: u64,
    pub(crate) repairs: Vec<(u64, String)>,
    pub(crate) reconciles: u64,
    pub(crate) reconcile_fixes: Vec<(u64, String)>,
    pub(crate) policy_restarts: u64,
    /// Pulsed by the reliable channels whenever a message enters a
    /// retransmission round (a missed ack — the earliest wire-visible
    /// sign of a dead receiver). The monitor samples immediately instead
    /// of waiting out its cadence.
    pub(crate) interrupt_line: Arc<AtomicU64>,
    /// Interrupt pulses already consumed by a sample.
    pub(crate) seen_interrupts: u64,
    /// `false` after a [`ChaosOp::KillSupervisor`]: the loop stops
    /// ticking — detection, repair and reconcile all halt — while the
    /// data plane runs on. Only a sibling cell's remote repair (the
    /// peer world) ever revives it.
    pub(crate) alive: bool,
}

impl SupervisionRuntime {
    pub(crate) fn new(opts: SupervisionOptions) -> SupervisionRuntime {
        let mut registry = ServiceRegistry::new();
        registry.register(ServiceSpec::new("core"));
        registry.register(
            ServiceSpec::new("discovery")
                .depends_on("core")
                .escalates_to("core"),
        );
        registry.register(
            ServiceSpec::new("sink")
                .depends_on("core")
                .escalates_to("core"),
        );
        let policy = PolicyService::new();
        for p in supervision_policies() {
            policy
                .add(p)
                .expect("built-in supervision policies are valid");
        }
        SupervisionRuntime {
            monitor: HealthMonitor::with_detectors(
                opts.health,
                vec![Box::new(ComponentDown::default())],
            ),
            supervisor: Supervisor::new(registry, opts.config),
            policy,
            reconcile_micros: opts.reconcile_micros.max(1),
            next_reconcile: 0,
            repairs: Vec::new(),
            reconciles: 0,
            reconcile_fixes: Vec::new(),
            policy_restarts: 0,
            interrupt_line: Arc::new(AtomicU64::new(0)),
            seen_interrupts: 0,
            alive: true,
        }
    }

    /// The up/down gauges the component-down detector watches.
    pub(crate) fn samples(&self, flags: &ComponentFlags) -> Vec<Sample> {
        let up = |name: &str, is_up: bool| Sample {
            name: "smc_component_up".to_string(),
            help: String::new(),
            monotonic: false,
            labels: vec![("component".to_string(), name.to_string())],
            value: u64::from(is_up),
        };
        vec![
            up("discovery", !flags.discovery_down),
            up("sink", !flags.sink_down),
        ]
    }
}

pub(crate) struct Device {
    pub(crate) id: ServiceId,
    pub(crate) info: ServiceInfo,
    pub(crate) channel: Arc<ReliableChannel>,
    pub(crate) agent: Arc<MemberAgent>,
    pub(crate) next_seq: u64,
    pub(crate) next_publish: u64,
    pub(crate) crashed: bool,
    /// Set by the built-in health obligation: a quenched device holds
    /// its publishes until woken.
    pub(crate) quenched: bool,
    /// The link profile faults modify and heals restore to.
    pub(crate) baseline: LinkConfig,
    pub(crate) domain: u32,
}

/// The cell's side of the world: everything a `CoreCrash` destroys and a
/// `CoreRestart` rebuilds from the write-ahead log.
pub(crate) struct Core {
    pub(crate) wal: Arc<Wal>,
    pub(crate) disco_channel: Arc<ReliableChannel>,
    pub(crate) sink_channel: Arc<ReliableChannel>,
    pub(crate) service: Arc<DiscoveryService>,
}

/// The in-run self-observation stack: monitor, built-in obligations, and
/// the flight recorder, all stepped on the virtual timeline.
struct HealthRuntime {
    monitor: HealthMonitor,
    policy: PolicyService,
    recorder: FlightRecorder,
    transitions: Vec<HealthTransition>,
    quenches: Vec<(u64, ServiceId, bool)>,
    quench: bool,
    dump_path: Option<PathBuf>,
    hop_cursor: u64,
}

impl HealthRuntime {
    fn new(opts: HealthOptions) -> HealthRuntime {
        // The same detector suite `default_detectors` ships, except the
        // WAL-stall traffic reference is the harness's own publish
        // counter (the harness routes events itself, so the cell's
        // `smc_events_published_total` never moves here).
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(RetransmitStorm::default()),
            Box::new(QueueGrowth::default()),
            Box::new(WalStall::new(
                "smc_wal_records_appended_total",
                "smc_harness_published_total",
            )),
            Box::new(DeliveryLatency::default()),
            Box::new(MembershipFlap::default()),
        ];
        let policy = PolicyService::new();
        for p in health_quench_policies() {
            policy.add(p).expect("built-in health policies are valid");
        }
        for p in telemetry_quench_exemptions(opts.quench_exempt.iter().copied()) {
            policy
                .add(p)
                .expect("built-in exemption policies are valid");
        }
        HealthRuntime {
            monitor: HealthMonitor::with_detectors(opts.config, detectors),
            policy,
            recorder: FlightRecorder::default(),
            transitions: Vec::new(),
            quenches: Vec::new(),
            quench: opts.quench,
            dump_path: opts.dump_path,
            hop_cursor: 0,
        }
    }
}

/// One health-sampling window's worth of metrics, read straight off the
/// live objects (the registry's collectors capture the *final* core
/// incarnation, so the in-run monitor samples the current one directly).
fn health_samples(
    devices: &[Device],
    core: &Core,
    core_crashed: bool,
    oracle: &DeliveryOracle,
    device_ids: &[ServiceId],
    sink_id: ServiceId,
) -> Vec<Sample> {
    fn mk(name: &str, labels: Vec<(String, String)>, monotonic: bool, value: u64) -> Sample {
        Sample {
            name: name.to_string(),
            help: String::new(),
            monotonic,
            labels,
            value,
        }
    }
    let mut out = Vec::new();
    for (n, dev) in devices.iter().enumerate() {
        let label = format!("device{n}");
        out.push(mk(
            "smc_channel_retransmits_total",
            vec![("channel".to_string(), label.clone())],
            true,
            dev.channel.stats().retransmits,
        ));
        out.push(mk(
            "smc_proxy_queue_depth",
            vec![("queue".to_string(), label)],
            false,
            dev.channel.pending(sink_id) as u64,
        ));
    }
    if !core_crashed {
        out.push(mk(
            "smc_channel_retransmits_total",
            vec![("channel".to_string(), "sink".to_string())],
            true,
            core.sink_channel.stats().retransmits,
        ));
        out.push(mk(
            "smc_channel_retransmits_total",
            vec![("channel".to_string(), "discovery".to_string())],
            true,
            core.disco_channel.stats().retransmits,
        ));
        let d = core.service.stats();
        out.push(mk("smc_discovery_joins_total", Vec::new(), true, d.joins));
        out.push(mk("smc_discovery_purges_total", Vec::new(), true, d.purges));
        out.push(mk(
            "smc_wal_records_appended_total",
            Vec::new(),
            true,
            core.wal.metrics().records_appended,
        ));
    }
    let published: u64 = device_ids.iter().map(|&id| oracle.published(id)).sum();
    out.push(mk(
        "smc_harness_published_total",
        Vec::new(),
        true,
        published,
    ));
    out
}

/// Maps a detector's component key back to the device it watches:
/// `channel:device3` / `queue:device3` → index 3.
fn component_device(component: &str, device_ids: &[ServiceId]) -> Option<ServiceId> {
    component
        .strip_prefix("channel:")
        .or_else(|| component.strip_prefix("queue:"))
        .and_then(|l| l.strip_prefix("device"))
        .and_then(|n| n.parse::<usize>().ok())
        .and_then(|n| device_ids.get(n).copied())
}

pub(crate) fn encode(seq: u64) -> Vec<u8> {
    let filler = if seq.is_multiple_of(BIG_EVERY) {
        2000
    } else {
        32
    };
    let mut payload = Vec::with_capacity(8 + filler);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.resize(8 + filler, 0xA5);
    payload
}

pub(crate) fn decode(payload: &[u8]) -> Option<u64> {
    payload
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// Opens the WAL on `backend` and assembles a core from whatever it
/// recovers: journaled channels seeded with the restored receive
/// cursors, a discovery service re-admitting every snapshotted member
/// (resetting the sink's member filter to match), and the recovered
/// outbound queue re-enqueued for retransmission. `ids` pins the
/// endpoints of a previous incarnation on restart; `cell` names the
/// cell the discovery service beacons as (sibling cells on one radio
/// network must beacon distinct ids so agents can filter).
#[allow(clippy::too_many_arguments)]
pub(crate) fn boot_core(
    net: &SimNetwork,
    backend: &Arc<dyn WalBackend>,
    reliable: &ReliableConfig,
    discovery_config: &DiscoveryConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    ids: Option<(ServiceId, ServiceId)>,
    members: &mut HashSet<ServiceId>,
    cell: CellId,
) -> (Core, Recovered) {
    let (wal, recovered) =
        Wal::open(Arc::clone(backend), WalConfig::default()).expect("wal backend opens");
    let wal = Arc::new(wal);
    if let Some(probes) = tracer.probes() {
        wal.set_probes(Arc::clone(probes), Arc::clone(clock));
    }
    let (disco_transport, sink_transport) = match ids {
        Some((disco_id, sink_id)) => (
            net.endpoint_with_id(disco_id),
            net.endpoint_with_id(sink_id),
        ),
        None => (net.endpoint(), net.endpoint()),
    };
    let disco_channel = ReliableChannel::with_clock_journaled(
        Arc::new(disco_transport),
        reliable.clone(),
        Arc::clone(clock),
        Arc::new(WalChannelJournal::new(Arc::clone(&wal), CHAN_DISCOVERY)),
        recovered.snapshot.cursors_for(CHAN_DISCOVERY),
        Vec::new(),
    );
    // The sink retains delivered payloads until the run loop records
    // them (mirroring the SMC bus channel): an acked-but-unrecorded
    // message survives a crash in the log instead of vanishing.
    let sink_channel = ReliableChannel::with_clock_journaled(
        Arc::new(sink_transport),
        reliable.clone(),
        Arc::clone(clock),
        Arc::new(WalChannelJournal::with_rx_retention(
            Arc::clone(&wal),
            CHAN_BUS,
        )),
        recovered.snapshot.cursors_for(CHAN_BUS),
        recovered.snapshot.pending_rx_for(CHAN_BUS),
    );
    disco_channel.set_tracer(tracer.clone());
    sink_channel.set_tracer(tracer.clone());
    let service = DiscoveryService::with_clock(
        cell,
        Arc::clone(&disco_channel),
        discovery_config
            .clone()
            .with_bus_endpoint(sink_channel.local_id()),
        Arc::clone(clock),
    );
    members.clear();
    for info in &recovered.snapshot.members {
        service.restore_member(info.clone());
        members.insert(info.id);
    }
    // `send_recovered` renumbers the journal's retained entries instead
    // of journalling fresh copies, so a second crash resends this queue
    // once more — never twice.
    for (peer, payloads) in recovered.snapshot.outbound_for(CHAN_BUS) {
        for (prior_seq, payload) in payloads {
            let _ = sink_channel.send_recovered(peer, payload, prior_seq);
        }
    }
    (
        Core {
            wal,
            disco_channel,
            sink_channel,
            service,
        },
        recovered,
    )
}

/// Cuts a snapshot of the core's durable state into the WAL: both
/// channels' receive cursors, the sink's pending outbound plus
/// delivered-but-unrecorded inbound, and the sorted membership table.
/// Mirrors `SmcCell::checkpoint` (the world is single-threaded, so the
/// pre-built-snapshot form of `Wal::snapshot` is race-free here).
pub(crate) fn checkpoint(core: &Core) {
    let mut snap = CoreSnapshot::default();
    for (peer, epoch, expected) in core.sink_channel.rx_cursors() {
        snap.cursors.push(CursorEntry {
            chan: CHAN_BUS,
            peer,
            epoch,
            expected,
        });
    }
    for (peer, epoch, expected) in core.disco_channel.rx_cursors() {
        snap.cursors.push(CursorEntry {
            chan: CHAN_DISCOVERY,
            peer,
            epoch,
            expected,
        });
    }
    for (peer, msgs) in core.sink_channel.outbound_pending() {
        for (seq, payload) in msgs {
            snap.outbound.push(OutboundEntry {
                chan: CHAN_BUS,
                peer,
                seq,
                payload,
            });
        }
    }
    for (peer, epoch, seq, payload) in core.sink_channel.unconsumed_rx() {
        snap.pending_rx.push(PendingRx {
            chan: CHAN_BUS,
            peer,
            epoch,
            seq,
            payload,
        });
    }
    snap.members = core.service.members();
    snap.members.sort_by_key(|i| i.id);
    let _ = core.wal.snapshot(&snap);
}

/// Rebuilds the discovery service (and its journaled channel) on the
/// same endpoint from durable truth — the supervisor's `restart
/// discovery` repair. The sink and its membership view are untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn restart_discovery(
    net: &SimNetwork,
    core: &mut Core,
    reliable: &ReliableConfig,
    discovery_config: &DiscoveryConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    disco_id: ServiceId,
    sink_id: ServiceId,
    cell: CellId,
) {
    let state = core.wal.recover_state().unwrap_or_default();
    let disco_channel = ReliableChannel::with_clock_journaled(
        Arc::new(net.endpoint_with_id(disco_id)),
        reliable.clone(),
        Arc::clone(clock),
        Arc::new(WalChannelJournal::new(
            Arc::clone(&core.wal),
            CHAN_DISCOVERY,
        )),
        state.cursors_for(CHAN_DISCOVERY),
        Vec::new(),
    );
    disco_channel.set_tracer(tracer.clone());
    let service = DiscoveryService::with_clock(
        cell,
        Arc::clone(&disco_channel),
        discovery_config.clone().with_bus_endpoint(sink_id),
        Arc::clone(clock),
    );
    for info in &state.members {
        service.restore_member(info.clone());
    }
    core.disco_channel = disco_channel;
    core.service = service;
}

/// Rebuilds the sink channel on the same endpoint from durable truth —
/// the supervisor's `restart sink` repair. Recovered receive cursors
/// keep dedup across the outage; the recovered outbound queue re-enters
/// retransmission; events the kill caught between ack and recording are
/// re-processed from the journal's retained copies, exactly like the
/// core-crash recovery path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn restart_sink(
    net: &SimNetwork,
    core: &mut Core,
    reliable: &ReliableConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    sink_id: ServiceId,
    members: &HashSet<ServiceId>,
    oracle: &mut DeliveryOracle,
    now: u64,
) {
    let state = core.wal.recover_state().unwrap_or_default();
    let sink_channel = ReliableChannel::with_clock_journaled(
        Arc::new(net.endpoint_with_id(sink_id)),
        reliable.clone(),
        Arc::clone(clock),
        Arc::new(WalChannelJournal::with_rx_retention(
            Arc::clone(&core.wal),
            CHAN_BUS,
        )),
        state.cursors_for(CHAN_BUS),
        state.pending_rx_for(CHAN_BUS),
    );
    sink_channel.set_tracer(tracer.clone());
    for (peer, payloads) in state.outbound_for(CHAN_BUS) {
        for (prior_seq, payload) in payloads {
            let _ = sink_channel.send_recovered(peer, payload, prior_seq);
        }
    }
    core.sink_channel = sink_channel;
    for (peer, _epoch, seq, payload) in state.pending_rx_for(CHAN_BUS) {
        if let Some(published) = decode(&payload) {
            let t = TraceId::for_event(peer, published);
            if members.contains(&peer) {
                tracer.record(t, Hop::Delivered);
                oracle.record_delivery(now, peer, published);
            } else {
                tracer.record(
                    t,
                    Hop::Dropped {
                        reason: "purge-filter",
                    },
                );
                oracle.record_filtered(now, peer, published);
            }
        }
        core.sink_channel.consumed(peer, seq);
    }
}

/// One anti-entropy pass: diffs the sink's membership view and the
/// discovery table against durable truth (the folded write-ahead log)
/// and repairs both directions. Returns human-readable descriptions of
/// every divergence repaired, in deterministic order.
pub(crate) fn reconcile_pass(
    core: &Core,
    members: &mut HashSet<ServiceId>,
    flags: &ComponentFlags,
) -> Vec<String> {
    let Ok(truth) = core.wal.recover_state() else {
        return Vec::new();
    };
    let mut fixes = Vec::new();
    let mut truth_sorted = truth.members.clone();
    truth_sorted.sort_by_key(|i| i.id);
    let truth_ids: HashSet<ServiceId> = truth_sorted.iter().map(|i| i.id).collect();
    // Sink view: re-admit members durable truth still has...
    for info in &truth_sorted {
        if members.insert(info.id) {
            fixes.push(format!("sink view re-admitted {}", info.id));
        }
    }
    // ...and drop ids truth never admitted (or has purged).
    let mut ghosts: Vec<ServiceId> = members
        .iter()
        .filter(|id| !truth_ids.contains(id))
        .copied()
        .collect();
    ghosts.sort();
    for ghost in ghosts {
        members.remove(&ghost);
        fixes.push(format!("sink view dropped ghost {ghost}"));
    }
    // Discovery table, when it's alive: same diff, both directions.
    if !flags.discovery_down {
        let live_ids: HashSet<ServiceId> = core.service.members().iter().map(|i| i.id).collect();
        for info in &truth_sorted {
            if !live_ids.contains(&info.id) {
                core.service.restore_member(info.clone());
                fixes.push(format!("discovery re-admitted {}", info.id));
            }
        }
        let mut stray: Vec<ServiceId> = live_ids
            .iter()
            .filter(|id| !truth_ids.contains(id))
            .copied()
            .collect();
        stray.sort();
        for id in stray {
            if core.service.forget_member(id) {
                fixes.push(format!("discovery dropped ghost {id}"));
            }
        }
    }
    fixes
}

/// Runs `scenario` with the default reliability and discovery settings.
pub fn run(scenario: &Scenario) -> RunReport {
    run_with_options(scenario, RunOptions::default())
}

/// Runs `scenario` with explicit channel and discovery parameters (e.g.
/// `dedup: false` to prove the oracle catches a broken channel). The
/// core journals into a fresh in-memory WAL backend.
pub fn run_with(
    scenario: &Scenario,
    reliable: ReliableConfig,
    discovery_config: DiscoveryConfig,
) -> RunReport {
    run_with_options(
        scenario,
        RunOptions {
            reliable,
            discovery: discovery_config,
            ..RunOptions::default()
        },
    )
}

/// Runs `scenario` with an explicit WAL backend for the core. Passing
/// `NoopBackend` demonstrates what the durability layer buys: any
/// `CoreCrash` then loses the cursors and the oracle catches the
/// resulting redeliveries.
pub fn run_with_backend(
    scenario: &Scenario,
    reliable: ReliableConfig,
    discovery_config: DiscoveryConfig,
    backend: Arc<dyn WalBackend>,
) -> RunReport {
    run_with_options(
        scenario,
        RunOptions {
            reliable,
            discovery: discovery_config,
            backend,
            ..RunOptions::default()
        },
    )
}

/// Runs `scenario` under full [`RunOptions`] control.
pub fn run_with_options(scenario: &Scenario, options: RunOptions) -> RunReport {
    let RunOptions {
        reliable,
        discovery: discovery_config,
        backend,
        trace,
        trace_capacity,
        probes,
        health,
        supervision,
    } = options;
    let clock = Arc::new(ManualClock::new());
    let shared: SharedClock = clock.clone();
    let baseline = LinkConfig::ideal();
    let net = SimNetwork::with_clock(baseline.clone(), scenario.seed, Arc::clone(&shared));

    let (tracer, trace_sink) = if trace {
        let sink = Arc::new(TraceSink::with_capacity(trace_capacity));
        let tracer = if probes {
            Tracer::with_probes(
                Arc::clone(&sink),
                Arc::clone(&shared),
                Arc::new(smc_telemetry::ProbeSink::new()),
            )
        } else {
            Tracer::new(Arc::clone(&sink), Arc::clone(&shared))
        };
        (tracer, Some(sink))
    } else {
        (Tracer::disabled(), None)
    };

    let mut oracle = DeliveryOracle::new(scenario.seed);
    let mut members: HashSet<ServiceId> = HashSet::new();
    let (mut core, _) = boot_core(
        &net,
        &backend,
        &reliable,
        &discovery_config,
        &shared,
        &tracer,
        None,
        &mut members,
        CellId(1),
    );
    let disco_id = core.disco_channel.local_id();
    let sink_id = core.sink_channel.local_id();

    let publish_interval = scenario.publish_interval.as_micros().max(1) as u64;
    let mut devices: Vec<Device> = (0..scenario.nodes)
        .map(|n| {
            let channel = ReliableChannel::with_clock(
                Arc::new(net.endpoint()),
                reliable.clone(),
                Arc::clone(&shared),
            );
            let info = ServiceInfo::new(ServiceId::NIL, "harness.device")
                .with_name(format!("chaos device {n}"));
            channel.set_tracer(tracer.clone());
            let agent = MemberAgent::with_clock(
                info.clone(),
                Arc::clone(&channel),
                AgentConfig::default(),
                Arc::clone(&shared),
            );
            Device {
                id: channel.local_id(),
                info,
                channel,
                agent,
                next_seq: 1,
                next_publish: 0,
                crashed: false,
                quenched: false,
                baseline: baseline.clone(),
                domain: 0,
            }
        })
        .collect();
    let device_ids: Vec<ServiceId> = devices.iter().map(|d| d.id).collect();

    // Expand scripted ops into an absolute-time fault timeline. Core ops
    // use a `usize::MAX` node sentinel so they sort after device ops at
    // the same instant (deterministically).
    let mut timeline: Vec<(u64, usize, Act)> = Vec::new();
    for s in &scenario.ops {
        let at = s.at.as_micros() as u64;
        match s.op {
            ChaosOp::LossBurst {
                node,
                loss,
                duration,
            } => {
                timeline.push((at, node, Act::Loss(loss)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Heal));
            }
            ChaosOp::DuplicateStorm {
                node,
                duplicate,
                duration,
            } => {
                timeline.push((at, node, Act::Dup(duplicate)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Heal));
            }
            ChaosOp::Partition { node, duration } => {
                timeline.push((at, node, Act::PartitionOn));
                timeline.push((at + duration.as_micros() as u64, node, Act::PartitionOff));
            }
            ChaosOp::Crash { node, down_for } => {
                timeline.push((at, node, Act::Crash));
                timeline.push((at + down_for.as_micros() as u64, node, Act::Restart));
            }
            ChaosOp::DomainMove {
                node,
                domain,
                duration,
            } => {
                timeline.push((at, node, Act::Domain(domain)));
                timeline.push((at + duration.as_micros() as u64, node, Act::Domain(0)));
            }
            ChaosOp::LinkProfile { node, profile } => {
                timeline.push((at, node, Act::Profile(profile)));
            }
            ChaosOp::CoreCrash { down_for } => {
                timeline.push((at, usize::MAX, Act::CoreCrash));
                timeline.push((
                    at + down_for.as_micros() as u64,
                    usize::MAX,
                    Act::CoreRestart,
                ));
            }
            // No scripted recovery for either: the supervisor restarts
            // killed components, the reconcile pass heals corruptions.
            ChaosOp::KillComponent { component, wedged } => {
                timeline.push((at, usize::MAX, Act::Kill(component, wedged)));
            }
            ChaosOp::CorruptState { target } => {
                timeline.push((at, usize::MAX, Act::Corrupt(target)));
            }
            // No scripted revival: in this single-cell world a killed
            // supervisor stays dead (the peer-supervision baseline).
            ChaosOp::KillSupervisor { cell } => {
                timeline.push((at, usize::MAX, Act::KillSupervisor(cell)));
            }
            ChaosOp::PartitionCell { cell, duration } => {
                timeline.push((at, usize::MAX, Act::CellPartition(cell, true)));
                timeline.push((
                    at + duration.as_micros() as u64,
                    usize::MAX,
                    Act::CellPartition(cell, false),
                ));
            }
        }
    }
    timeline.sort_by_key(|&(at, node, _)| (at, node));

    let end = scenario.duration.as_micros() as u64;
    let total = end + DRAIN_MICROS;
    let mut next_act = 0usize;
    let mut ticks = 0u64;
    let mut core_crashed = false;
    let mut core_recoveries = 0u64;
    let mut recovery_micros_total = 0u64;
    // Retransmissions of incarnations that no longer exist at run end.
    let mut retransmits_gone = 0u64;
    let mut saw_core_crash = false;
    let mut saw_escalation = false;
    let mut health_rt = health.map(HealthRuntime::new);
    let mut sup_rt = supervision.map(SupervisionRuntime::new);
    let mut flags = ComponentFlags::default();
    // Wire the missed-ack interrupt: every device channel pulses the
    // supervision runtime's line when a send enters retransmission, so
    // detection reacts at wire speed instead of the sampling cadence.
    if let Some(rt) = &sup_rt {
        for dev in &devices {
            dev.channel
                .set_missed_ack_interrupt(Arc::clone(&rt.interrupt_line));
        }
    }

    let mut now = 0u64;
    loop {
        // 1. Scripted faults due now.
        while next_act < timeline.len() && timeline[next_act].0 <= now {
            let (_, node, act) = timeline[next_act].clone();
            next_act += 1;
            match act {
                Act::CoreCrash => {
                    if core_crashed {
                        continue;
                    }
                    oracle.record_fault(now, "core crashed");
                    core_crashed = true;
                    saw_core_crash = true;
                    if let Some(rt) = health_rt.as_mut() {
                        rt.recorder.note(now, "core crashed");
                    }
                    retransmits_gone += core.sink_channel.stats().retransmits
                        + core.disco_channel.stats().retransmits;
                    core.service.shutdown();
                    core.sink_channel.close();
                    flags = ComponentFlags::default();
                    continue;
                }
                Act::Kill(component, wedged) => {
                    if core_crashed {
                        continue;
                    }
                    match component {
                        CoreComponent::Discovery => {
                            if flags.discovery_down {
                                continue;
                            }
                            oracle.record_fault(now, "discovery killed");
                            retransmits_gone += core.disco_channel.stats().retransmits;
                            core.service.shutdown();
                            flags.discovery_down = true;
                            flags.discovery_wedged = wedged;
                        }
                        CoreComponent::Sink => {
                            if flags.sink_down {
                                continue;
                            }
                            oracle.record_fault(now, "sink killed");
                            retransmits_gone += core.sink_channel.stats().retransmits;
                            core.sink_channel.close();
                            flags.sink_down = true;
                            flags.sink_wedged = wedged;
                        }
                    }
                    continue;
                }
                Act::Corrupt(target) => {
                    match target {
                        CorruptTarget::MembershipView { node } => {
                            if let Some(&id) = device_ids.get(node) {
                                if members.remove(&id) {
                                    oracle.record_fault(
                                        now,
                                        format!("corrupt: sink view dropped {id}"),
                                    );
                                }
                            }
                        }
                        CorruptTarget::GhostMember => {
                            if members.insert(GHOST_MEMBER) {
                                oracle.record_fault(
                                    now,
                                    format!("corrupt: ghost {GHOST_MEMBER} in sink view"),
                                );
                            }
                        }
                        CorruptTarget::DiscoveryMember { node } => {
                            if let Some(&id) = device_ids.get(node) {
                                if !core_crashed
                                    && !flags.discovery_down
                                    && core.service.forget_member(id)
                                {
                                    oracle.record_fault(
                                        now,
                                        format!("corrupt: discovery forgot {id}"),
                                    );
                                }
                            }
                        }
                    }
                    continue;
                }
                Act::CoreRestart => {
                    if !core_crashed {
                        continue;
                    }
                    let (reborn, recovered) = boot_core(
                        &net,
                        &backend,
                        &reliable,
                        &discovery_config,
                        &shared,
                        &tracer,
                        Some((disco_id, sink_id)),
                        &mut members,
                        CellId(1),
                    );
                    core = reborn;
                    core_crashed = false;
                    core_recoveries += 1;
                    recovery_micros_total += recovered.recovery_micros;
                    oracle.record_fault(now, "core restarted");
                    if let Some(rt) = health_rt.as_mut() {
                        rt.recorder.note(now, "core restarted from WAL");
                    }
                    // Re-process events the crash caught between ack and
                    // recording: their senders saw them acknowledged and
                    // will never retransmit, so the log held the only
                    // copy. Mirrors `SmcCell::start_durable`.
                    for (peer, _epoch, seq, payload) in recovered.snapshot.pending_rx_for(CHAN_BUS)
                    {
                        if let Some(published) = decode(&payload) {
                            let t = TraceId::for_event(peer, published);
                            if members.contains(&peer) {
                                tracer.record(t, Hop::Delivered);
                                oracle.record_delivery(now, peer, published);
                            } else {
                                tracer.record(
                                    t,
                                    Hop::Dropped {
                                        reason: "purge-filter",
                                    },
                                );
                                oracle.record_filtered(now, peer, published);
                            }
                        }
                        core.sink_channel.consumed(peer, seq);
                    }
                    continue;
                }
                Act::KillSupervisor(cell) => {
                    // Single-cell world: only cell 0's supervisor exists.
                    match sup_rt.as_mut() {
                        Some(rt) if rt.alive && cell == 0 => {
                            rt.alive = false;
                            oracle.record_fault(now, "supervisor killed");
                            if let Some(h) = health_rt.as_mut() {
                                h.recorder.note(now, "supervisor killed");
                            }
                        }
                        _ => {
                            oracle.record_fault(now, "supervisor killed (none running)");
                        }
                    }
                    continue;
                }
                Act::CellPartition(cell, on) => {
                    // No sibling cells in this world — record the fault
                    // for the trace; the peer world severs real links.
                    oracle.record_fault(
                        now,
                        format!(
                            "cell{cell} {}",
                            if on {
                                "partitioned from siblings"
                            } else {
                                "partition healed"
                            }
                        ),
                    );
                    continue;
                }
                _ => {}
            }
            if node >= devices.len() {
                continue;
            }
            apply(
                &net,
                &mut devices[node],
                node,
                &act,
                disco_id,
                sink_id,
                &reliable,
                &shared,
                &tracer,
                &mut oracle,
                now,
                &mut retransmits_gone,
                sup_rt.as_ref().map(|rt| &rt.interrupt_line),
            );
        }
        // 2. Deliver every datagram whose deadline has passed.
        net.pump_due();
        // 3. Channels: process frames, ack, retransmit. A killed
        // component's channel is closed; don't step the corpse.
        if !core_crashed {
            if !flags.discovery_down {
                core.disco_channel.step();
            }
            if !flags.sink_down {
                core.sink_channel.step();
            }
        }
        for dev in &devices {
            if !dev.crashed {
                dev.channel.step();
            }
        }
        // 4. Protocol logic on top of the channels.
        if !core_crashed && !flags.discovery_down {
            core.service.step();
        }
        for dev in &devices {
            if !dev.crashed {
                dev.agent.step();
            }
        }
        // 5. Membership transitions into the oracle (and the sink's
        // member filter). Joins and purges are journaled, mirroring the
        // SMC core's own event path.
        while let Ok(ev) = core.service.events().try_recv() {
            match ev {
                MembershipEvent::Joined(info) => {
                    let _ = core
                        .wal
                        .append(&WalRecord::MemberJoined { info: info.clone() });
                    members.insert(info.id);
                    oracle.record_joined(now, info.id);
                }
                MembershipEvent::Purged(id, _reason) => {
                    let _ = core.wal.append(&WalRecord::MemberPurged { member: id });
                    members.remove(&id);
                    oracle.record_purged(now, id);
                }
                MembershipEvent::Suspected(id) => {
                    oracle.record_fault(now, format!("suspected {id}"));
                }
                MembershipEvent::Recovered(id) => {
                    oracle.record_fault(now, format!("recovered {id}"));
                }
            }
        }
        // 5a. Anti-entropy on its own cadence: diff the sink's view and
        // the discovery table against the folded log and repair both
        // directions, whether or not anything ever failed. This runs
        // *before* the checkpoint on purpose — compaction snapshots the
        // live tables, so reconciling first means a corrupted view can
        // never be frozen into the durable truth repair depends on.
        if let Some(rt) = sup_rt.as_mut() {
            if rt.alive && now >= rt.next_reconcile {
                rt.next_reconcile = now + rt.reconcile_micros;
                if !core_crashed {
                    rt.reconciles += 1;
                    let fixes = reconcile_pass(&core, &mut members, &flags);
                    for fix in &fixes {
                        oracle.record_fault(now, format!("reconcile: {fix}"));
                    }
                    rt.supervisor.record_reconcile(now, &fixes);
                    rt.reconcile_fixes
                        .extend(fixes.into_iter().map(|f| (now, f)));
                }
            }
        }
        // 5b. Periodic snapshot: compacts the log so recovery replays a
        // bounded tail. Never while a component is down: snapshotting a
        // closed channel would freeze empty cursors over the journal's
        // live tail and destroy the durable truth repair depends on.
        if !core_crashed && !flags.any_down() && now > 0 && now.is_multiple_of(CHECKPOINT_MICROS) {
            checkpoint(&core);
        }
        // 5c. Self-observation: the health monitor samples the live
        // channels/WAL/discovery on its own virtual cadence, runs its
        // detectors, and lets the built-in obligations quench a degraded
        // publisher — the paper's autonomic feedback loop, in-run.
        if let Some(rt) = health_rt.as_mut() {
            if rt.monitor.due(now) {
                let samples =
                    health_samples(&devices, &core, core_crashed, &oracle, &device_ids, sink_id);
                let hops: Vec<HopRecord> = match &trace_sink {
                    Some(sink) => sink
                        .records()
                        .into_iter()
                        .filter(|r| r.order >= rt.hop_cursor)
                        .collect(),
                    None => Vec::new(),
                };
                if let Some(max) = hops.iter().map(|r| r.order).max() {
                    rt.hop_cursor = max + 1;
                }
                let transitions = rt.monitor.observe(now, &samples, &hops);
                for t in &transitions {
                    oracle.record_fault(
                        now,
                        format!(
                            "health {} {}->{} [{}]",
                            t.component,
                            t.from.as_str(),
                            t.to.as_str(),
                            t.detector
                        ),
                    );
                    if !rt.quench {
                        continue;
                    }
                    // Publish the transition as a typed `smc.health`
                    // event through the policy service, exactly as the
                    // cell would; execute any quench it fires.
                    let member = component_device(&t.component, &device_ids);
                    for fired in rt.policy.on_event(&health_event(t, member)) {
                        let ActionSpec::Quench { publisher, enable } = fired.action else {
                            continue;
                        };
                        let Some(raw) = publisher.resolve(&fired.trigger).and_then(|v| v.as_int())
                        else {
                            continue;
                        };
                        let target = ServiceId::from_raw(raw as u64);
                        // The actuator consults authorisation before
                        // silencing anyone: telemetry observers carry a
                        // deny on `quench:<raw>` and stay audible.
                        if enable
                            && rt.policy.check(
                                "*",
                                ActionClass::Command,
                                &format!("quench:{}", target.raw()),
                            ) == Decision::Deny
                        {
                            oracle.record_fault(now, format!("quench-exempt {target}"));
                            continue;
                        }
                        if let Some(dev) = devices.iter_mut().find(|d| d.id == target) {
                            dev.quenched = enable;
                            rt.quenches.push((now, target, enable));
                            oracle.record_fault(
                                now,
                                format!("{} {target}", if enable { "quench" } else { "wake" }),
                            );
                        }
                    }
                }
                rt.recorder.record_hops(&hops);
                rt.recorder.record_frame(now, samples, rt.monitor.report());
                rt.transitions.extend(transitions);
            }
        }
        // 5d. Supervision: the detect → repair loop. The component-down
        // detector samples liveness gauges, failures route through the
        // built-in restart obligation (policy-mediated, as the paper's
        // management events would be) into the supervisor, and the
        // supervisor's plan is executed against durable truth. A wedged
        // component refuses its restart, the gauge stays down, and the
        // tick's retry timeout escalates up the dependency graph. While
        // the core itself is scripted-crashed the supervisor holds off:
        // the scenario owns that outage.
        if let Some(rt) = sup_rt.as_mut() {
            // A missed ack anywhere pulses the interrupt line; sample
            // immediately instead of waiting out the monitor's cadence.
            // (Observing resets the cadence, so a quiet line costs
            // nothing extra.)
            let pulses = rt.interrupt_line.load(Ordering::Relaxed);
            let interrupted = pulses != rt.seen_interrupts;
            rt.seen_interrupts = pulses;
            if rt.alive && !core_crashed && (rt.monitor.due(now) || interrupted) {
                let samples = rt.samples(&flags);
                let transitions = rt.monitor.observe(now, &samples, &[]);
                let mut actions = Vec::new();
                for t in &transitions {
                    oracle.record_fault(
                        now,
                        format!(
                            "supervision {} {}->{}",
                            t.component,
                            t.from.as_str(),
                            t.to.as_str()
                        ),
                    );
                    if t.to == HealthState::Failed {
                        for fired in rt.policy.on_event(&health_event(t, None)) {
                            if let ActionSpec::Restart { component } = &fired.action {
                                if component
                                    .resolve(&fired.trigger)
                                    .is_some_and(|v| v.as_str().is_some())
                                {
                                    rt.policy_restarts += 1;
                                }
                            }
                        }
                    }
                    actions.extend(rt.supervisor.on_transition(t));
                }
                actions.extend(rt.supervisor.tick(now, &rt.monitor.report()));
                for action in actions {
                    if let RepairAction::Escalate { failed, target } = &action {
                        // Escalations are the loop admitting a restart
                        // was not enough — exactly the runs worth a
                        // black-box dump.
                        saw_escalation = true;
                        if let Some(h) = health_rt.as_mut() {
                            h.recorder
                                .note(now, format!("escalation: {failed} -> {target}"));
                        }
                    }
                    let target = match &action {
                        RepairAction::Restart { component, .. } => component.clone(),
                        RepairAction::Escalate { target, .. } => target.clone(),
                    };
                    match target.as_str() {
                        "discovery" => {
                            if !flags.discovery_down {
                                // Already back (detector hysteresis lags
                                // the repair); nothing to do.
                            } else if flags.discovery_wedged {
                                rt.repairs.push((now, format!("{action}: failed (wedged)")));
                                oracle.record_fault(now, format!("{action}: failed (wedged)"));
                            } else {
                                restart_discovery(
                                    &net,
                                    &mut core,
                                    &reliable,
                                    &discovery_config,
                                    &shared,
                                    &tracer,
                                    disco_id,
                                    sink_id,
                                    CellId(1),
                                );
                                flags.discovery_down = false;
                                rt.repairs.push((now, action.to_string()));
                                oracle.record_fault(now, format!("{action}: done"));
                            }
                        }
                        "sink" => {
                            if !flags.sink_down {
                                // Already back; nothing to do.
                            } else if flags.sink_wedged {
                                rt.repairs.push((now, format!("{action}: failed (wedged)")));
                                oracle.record_fault(now, format!("{action}: failed (wedged)"));
                            } else {
                                restart_sink(
                                    &net,
                                    &mut core,
                                    &reliable,
                                    &shared,
                                    &tracer,
                                    sink_id,
                                    &members,
                                    &mut oracle,
                                    now,
                                );
                                flags.sink_down = false;
                                rt.repairs.push((now, action.to_string()));
                                oracle.record_fault(now, format!("{action}: done"));
                            }
                        }
                        "core" => {
                            // Escalation target: a full reboot from the
                            // write-ahead log subsumes every child — and
                            // clears a wedge, the way power-cycling a
                            // gateway does what restarting one daemon on
                            // it could not.
                            if !flags.sink_down {
                                retransmits_gone += core.sink_channel.stats().retransmits;
                                core.sink_channel.close();
                            }
                            if !flags.discovery_down {
                                retransmits_gone += core.disco_channel.stats().retransmits;
                                core.service.shutdown();
                            }
                            let (reborn, recovered) = boot_core(
                                &net,
                                &backend,
                                &reliable,
                                &discovery_config,
                                &shared,
                                &tracer,
                                Some((disco_id, sink_id)),
                                &mut members,
                                CellId(1),
                            );
                            core = reborn;
                            core_recoveries += 1;
                            recovery_micros_total += recovered.recovery_micros;
                            for (peer, _epoch, seq, payload) in
                                recovered.snapshot.pending_rx_for(CHAN_BUS)
                            {
                                if let Some(published) = decode(&payload) {
                                    let t = TraceId::for_event(peer, published);
                                    if members.contains(&peer) {
                                        tracer.record(t, Hop::Delivered);
                                        oracle.record_delivery(now, peer, published);
                                    } else {
                                        tracer.record(
                                            t,
                                            Hop::Dropped {
                                                reason: "purge-filter",
                                            },
                                        );
                                        oracle.record_filtered(now, peer, published);
                                    }
                                }
                                core.sink_channel.consumed(peer, seq);
                            }
                            flags = ComponentFlags::default();
                            rt.repairs.push((now, action.to_string()));
                            oracle.record_fault(now, format!("{action}: core rebooted"));
                        }
                        _ => {}
                    }
                }
            }
        }
        // 6. Member devices publish on schedule (until the scripted end).
        // A crashed core does not stop them: their channels queue and
        // retransmit into the outage, which is exactly the traffic the
        // recovered cursors must dedup. A *quenched* device, though,
        // holds its publishes until the obligation wakes it.
        if now < end {
            for dev in &mut devices {
                if dev.crashed || dev.quenched || !dev.agent.is_member() || now < dev.next_publish {
                    continue;
                }
                let seq = dev.next_seq;
                dev.next_seq += 1;
                dev.next_publish = now + publish_interval;
                let t = TraceId::for_event(dev.id, seq);
                tracer.record(t, Hop::Published);
                oracle.record_publish(now, dev.id, seq);
                let _ = dev.channel.send_traced(sink_id, encode(seq), t);
            }
        }
        // 7. The sink accepts deliveries, mirroring the SMC's rule that
        // purged members' traffic is no longer served. A killed sink
        // accepts nothing — its channel is closed and senders retransmit
        // into the outage until the supervisor brings it back.
        while let Ok(incoming) = core.sink_channel.recv(Some(Duration::ZERO)) {
            if let Incoming::Reliable { from, seq, payload } = incoming {
                if let Some(published) = decode(&payload) {
                    let t = TraceId::for_event(from, published);
                    if members.contains(&from) {
                        tracer.record(t, Hop::Delivered);
                        oracle.record_delivery(now, from, published);
                    } else {
                        tracer.record(
                            t,
                            Hop::Dropped {
                                reason: "purge-filter",
                            },
                        );
                        oracle.record_filtered(now, from, published);
                    }
                }
                // Recording *is* the harness's routing step; release the
                // journal's retained copy so checkpoints stop carrying it.
                core.sink_channel.consumed(from, seq);
            }
        }
        ticks += 1;
        if now >= total {
            break;
        }
        now += TICK_MICROS;
        clock.advance_micros(TICK_MICROS);
    }

    let retransmits = retransmits_gone
        + core.sink_channel.stats().retransmits
        + core.disco_channel.stats().retransmits
        + devices
            .iter()
            .map(|d| d.channel.stats().retransmits)
            .sum::<u64>();

    // Attach the offending event's journey to the violation, if any: the
    // sink can replay exactly where the message's guarantees broke down.
    if let Some(sink) = &trace_sink {
        if let Some(v) = oracle.violation_mut() {
            if let Some((sender, seq)) = v.offender {
                v.journey = Some(sink.journey(TraceId::for_event(sender, seq)));
            }
        }
    }

    // Assemble the run's registry. Collectors sample the final core
    // incarnation at render time; run-wide aggregates (which span crashed
    // incarnations) go in as plain instruments with their final values.
    let registry = Registry::default();
    core.wal.register_with(&registry);
    core.service.register_with(&registry);
    {
        let sink_channel = Arc::clone(&core.sink_channel);
        registry.register_collector(move |out| {
            let s = sink_channel.stats();
            let counter = |name: &str, help: &str, value: u64| smc_telemetry::Sample {
                name: name.to_string(),
                help: help.to_string(),
                monotonic: true,
                labels: vec![("channel".to_string(), "sink".to_string())],
                value,
            };
            out.push(counter(
                "smc_channel_msgs_delivered_total",
                "Reliable messages delivered to the application.",
                s.msgs_delivered,
            ));
            out.push(counter(
                "smc_channel_retransmits_total",
                "Fragment retransmissions.",
                s.retransmits,
            ));
            out.push(counter(
                "smc_channel_duplicates_suppressed_total",
                "Duplicate fragments suppressed on receive.",
                s.duplicates_suppressed,
            ));
        });
    }
    if let Some(sink) = &trace_sink {
        sink.register_with(&registry);
    }
    if let Some(probe_sink) = tracer.probes() {
        probe_sink.register_with(&registry);
    }
    let published_total: u64 = device_ids.iter().map(|&id| oracle.published(id)).sum();
    let delivered_total: u64 = device_ids.iter().map(|&id| oracle.delivered(id)).sum();
    registry
        .counter(
            "smc_harness_published_total",
            "Messages devices handed to their channels over the run.",
        )
        .add(published_total);
    registry
        .counter(
            "smc_harness_delivered_total",
            "Messages the sink accepted over the run.",
        )
        .add(delivered_total);
    registry
        .counter(
            "smc_harness_retransmits_total",
            "Retransmissions across every channel and incarnation.",
        )
        .add(retransmits);
    registry
        .counter(
            "smc_harness_core_recoveries_total",
            "Core restarts recovered from the write-ahead log.",
        )
        .add(core_recoveries);
    if let Some(rt) = &sup_rt {
        registry
            .counter(
                "smc_missed_ack_interrupts_total",
                "Missed-ack retransmission rounds that pulsed the supervision interrupt line.",
            )
            .add(rt.interrupt_line.load(Ordering::Relaxed));
    }

    // The flight recorder's reason to exist: when the run ended badly,
    // dump the black box for post-mortem before reporting.
    let health = health_rt.map(|mut rt| {
        let report = rt.monitor.report();
        let violated = oracle.violation().is_some();
        let mut dumped_to = None;
        if let Some(path) = rt.dump_path.take() {
            if violated || saw_core_crash || saw_escalation {
                rt.recorder.note(
                    total,
                    if violated {
                        "dump: run ended with an oracle violation"
                    } else if saw_core_crash {
                        "dump: run saw a core crash"
                    } else {
                        "dump: run saw a supervision escalation"
                    },
                );
                if rt.recorder.dump_to(&path).is_ok() {
                    dumped_to = Some(path);
                }
            }
        }
        HealthOutcome {
            transitions: rt.transitions,
            quenches: rt.quenches,
            report,
            recorder: rt.recorder,
            dumped_to,
        }
    });

    let supervision = sup_rt.map(|rt| SupervisionOutcome {
        report: rt.supervisor.report(),
        repairs: rt.repairs,
        reconciles: rt.reconciles,
        reconcile_fixes: rt.reconcile_fixes,
        policy_restarts: rt.policy_restarts,
        missed_ack_interrupts: rt.interrupt_line.load(Ordering::Relaxed),
        supervisor_alive: rt.alive,
    });

    RunReport {
        oracle,
        device_ids,
        ticks,
        virtual_micros: total,
        core_recoveries,
        recovery_micros_total,
        retransmits,
        trace_sink,
        registry,
        health,
        supervision,
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn apply(
    net: &SimNetwork,
    dev: &mut Device,
    node: usize,
    act: &Act,
    disco_id: ServiceId,
    sink_id: ServiceId,
    reliable: &ReliableConfig,
    clock: &SharedClock,
    tracer: &Tracer,
    oracle: &mut DeliveryOracle,
    now: u64,
    retransmits_gone: &mut u64,
    interrupt_line: Option<&Arc<AtomicU64>>,
) {
    let set_links = |link: LinkConfig| {
        net.set_link_between(dev.id, sink_id, link.clone());
        net.set_link_between(dev.id, disco_id, link);
    };
    match act {
        Act::Loss(loss) => {
            oracle.record_fault(now, format!("node{node} loss burst {loss:.2}"));
            let mut link = dev.baseline.clone();
            link.loss = *loss;
            set_links(link);
        }
        Act::Dup(dup) => {
            oracle.record_fault(now, format!("node{node} duplicate storm {dup:.2}"));
            let mut link = dev.baseline.clone();
            link.duplicate = *dup;
            set_links(link);
        }
        Act::Heal => {
            oracle.record_fault(now, format!("node{node} link healed"));
            set_links(dev.baseline.clone());
        }
        Act::Profile(profile) => {
            oracle.record_fault(now, format!("node{node} link profile {profile:?}"));
            let mut link = profile.config();
            // Keep the baseline MTU: fragments are sized against the
            // default link, and a shrunken path MTU would wedge them.
            link.mtu = dev.baseline.mtu;
            dev.baseline = link.clone();
            set_links(link);
        }
        Act::PartitionOn => {
            oracle.record_fault(now, format!("node{node} partitioned"));
            net.set_partitioned(dev.id, sink_id, true);
            net.set_partitioned(dev.id, disco_id, true);
        }
        Act::PartitionOff => {
            oracle.record_fault(now, format!("node{node} partition healed"));
            net.set_partitioned(dev.id, sink_id, false);
            net.set_partitioned(dev.id, disco_id, false);
        }
        Act::Domain(domain) => {
            oracle.record_fault(now, format!("node{node} moved to domain {domain}"));
            dev.domain = *domain;
            net.set_domain(dev.id, *domain);
        }
        Act::Crash => {
            oracle.record_fault(now, format!("node{node} crashed"));
            dev.crashed = true;
            *retransmits_gone += dev.channel.stats().retransmits;
            dev.channel.close();
        }
        Act::Restart => {
            if !dev.crashed {
                return;
            }
            oracle.record_fault(now, format!("node{node} restarted"));
            let transport = Arc::new(net.endpoint_with_id(dev.id));
            let channel =
                ReliableChannel::with_clock(transport, reliable.clone(), Arc::clone(clock));
            channel.set_tracer(tracer.clone());
            if let Some(line) = interrupt_line {
                channel.set_missed_ack_interrupt(Arc::clone(line));
            }
            let agent = MemberAgent::with_clock(
                dev.info.clone(),
                Arc::clone(&channel),
                AgentConfig::default(),
                Arc::clone(clock),
            );
            net.set_domain(dev.id, dev.domain);
            dev.channel = channel;
            dev.agent = agent;
            dev.crashed = false;
        }
        // Core acts are handled inline by the run loop (they touch state
        // no single device owns); reaching here is a timeline bug.
        Act::CoreCrash
        | Act::CoreRestart
        | Act::Kill(..)
        | Act::Corrupt(..)
        | Act::KillSupervisor(..)
        | Act::CellPartition(..) => {
            unreachable!("core acts routed in run loop")
        }
    }
}
