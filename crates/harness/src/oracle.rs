//! The delivery-semantics oracle.
//!
//! Records every publish, delivery and membership transition the harness
//! observes, in virtual-time order, and checks the paper's delivery
//! guarantees (§II-C) as the trace grows:
//!
//! * **exactly-once** — no application message is delivered twice;
//! * **per-sender FIFO** — deliveries from one sender arrive in publish
//!   order;
//! * **no delivery after purge** — once discovery purges a member, its
//!   traffic stops being delivered until it is re-admitted.
//!
//! On a violation the oracle reports the scenario seed and the tail of
//! the event trace, which — because runs are deterministic — is enough
//! to replay the failure exactly.

use std::collections::HashMap;
use std::fmt;

use smc_telemetry::Journey;
use smc_types::ServiceId;

/// One observed fact, stamped with virtual micros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A device handed a message to its channel.
    Publish {
        /// Virtual time in micros.
        at: u64,
        /// The publishing endpoint.
        sender: ServiceId,
        /// The sender's application sequence number.
        seq: u64,
    },
    /// The cell's sink accepted a message.
    Deliver {
        /// Virtual time in micros.
        at: u64,
        /// The publishing endpoint.
        sender: ServiceId,
        /// The sender's application sequence number.
        seq: u64,
    },
    /// The sink dropped a message from a non-member (the purge filter).
    Filtered {
        /// Virtual time in micros.
        at: u64,
        /// The publishing endpoint.
        sender: ServiceId,
        /// The sender's application sequence number.
        seq: u64,
    },
    /// Discovery admitted a member.
    Joined {
        /// Virtual time in micros.
        at: u64,
        /// The admitted endpoint.
        member: ServiceId,
    },
    /// Discovery purged a member.
    Purged {
        /// Virtual time in micros.
        at: u64,
        /// The purged endpoint.
        member: ServiceId,
    },
    /// A scripted fault fired (free-form description).
    Fault {
        /// Virtual time in micros.
        at: u64,
        /// What the script did.
        what: String,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Publish { at, sender, seq } => {
                write!(f, "{at:>12} publish  {sender} #{seq}")
            }
            TraceEvent::Deliver { at, sender, seq } => {
                write!(f, "{at:>12} deliver  {sender} #{seq}")
            }
            TraceEvent::Filtered { at, sender, seq } => {
                write!(f, "{at:>12} filtered {sender} #{seq}")
            }
            TraceEvent::Joined { at, member } => write!(f, "{at:>12} joined   {member}"),
            TraceEvent::Purged { at, member } => write!(f, "{at:>12} purged   {member}"),
            TraceEvent::Fault { at, what } => write!(f, "{at:>12} fault    {what}"),
        }
    }
}

/// A broken delivery guarantee, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct OracleViolation {
    /// The scenario seed that produced the run.
    pub seed: u64,
    /// Which guarantee broke.
    pub kind: ViolationKind,
    /// Human-readable description of the offending delivery.
    pub detail: String,
    /// The offending delivery, if the violation has one: `(sender, seq)`
    /// — enough to derive its [`smc_types::TraceId`].
    pub offender: Option<(ServiceId, u64)>,
    /// The offending event's hop-by-hop journey, attached by the harness
    /// after the run when a trace sink was recording.
    pub journey: Option<Journey>,
    /// The trace up to and including the violation.
    pub trace: Vec<TraceEvent>,
}

/// The delivery guarantee a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A message was delivered more than once.
    DuplicateDelivery,
    /// Deliveries from one sender arrived out of publish order.
    FifoViolation,
    /// A message was delivered for a purged, not-readmitted member.
    DeliveryAfterPurge,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "delivery oracle violation: {:?} (seed {})",
            self.kind, self.seed
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  trace tail:")?;
        let skip = self.trace.len().saturating_sub(40);
        if skip > 0 {
            writeln!(f, "    … {skip} earlier events elided …")?;
        }
        for ev in &self.trace[skip..] {
            writeln!(f, "    {ev}")?;
        }
        if let Some(journey) = &self.journey {
            writeln!(f, "  offending event's journey:")?;
            for line in journey.to_string().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct SenderState {
    /// Highest delivered application seq (0 = none yet).
    last_delivered: u64,
    /// Member right now (admitted more recently than purged)?
    member: bool,
    /// Ever purged without a later re-admission?
    published: u64,
    delivered: u64,
}

/// Records the run and checks delivery semantics incrementally.
///
/// All `record_*` methods must be called in virtual-time order — the
/// harness's single-threaded step loop guarantees that.
#[derive(Debug)]
pub struct DeliveryOracle {
    seed: u64,
    trace: Vec<TraceEvent>,
    senders: HashMap<ServiceId, SenderState>,
    violation: Option<OracleViolation>,
}

impl DeliveryOracle {
    /// An empty oracle for a run produced by `seed`.
    pub fn new(seed: u64) -> Self {
        DeliveryOracle {
            seed,
            trace: Vec::new(),
            senders: HashMap::new(),
            violation: None,
        }
    }

    /// The full trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The trace rendered one event per line — the byte-comparable form
    /// used by determinism assertions.
    pub fn trace_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// The first violation observed, if any.
    pub fn violation(&self) -> Option<&OracleViolation> {
        self.violation.as_ref()
    }

    /// Mutable access to the violation — the harness uses it to attach
    /// the offending event's journey once the run has finished.
    pub fn violation_mut(&mut self) -> Option<&mut OracleViolation> {
        self.violation.as_mut()
    }

    /// Panics with the full seed + trace report if a guarantee broke.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!("{v}");
        }
    }

    /// Messages recorded as published, per sender.
    pub fn published(&self, sender: ServiceId) -> u64 {
        self.senders.get(&sender).map_or(0, |s| s.published)
    }

    /// Messages recorded as delivered, per sender.
    pub fn delivered(&self, sender: ServiceId) -> u64 {
        self.senders.get(&sender).map_or(0, |s| s.delivered)
    }

    fn fail(&mut self, kind: ViolationKind, detail: String, offender: Option<(ServiceId, u64)>) {
        if self.violation.is_none() {
            self.violation = Some(OracleViolation {
                seed: self.seed,
                kind,
                detail,
                offender,
                journey: None,
                trace: self.trace.clone(),
            });
        }
    }

    /// Records a scripted fault (context for trace readers).
    pub fn record_fault(&mut self, at: u64, what: impl Into<String>) {
        self.trace.push(TraceEvent::Fault {
            at,
            what: what.into(),
        });
    }

    /// Records a member admission.
    pub fn record_joined(&mut self, at: u64, member: ServiceId) {
        self.trace.push(TraceEvent::Joined { at, member });
        self.senders.entry(member).or_default().member = true;
    }

    /// Records a member purge.
    pub fn record_purged(&mut self, at: u64, member: ServiceId) {
        self.trace.push(TraceEvent::Purged { at, member });
        self.senders.entry(member).or_default().member = false;
    }

    /// Records a device handing message `seq` to its channel.
    pub fn record_publish(&mut self, at: u64, sender: ServiceId, seq: u64) {
        self.trace.push(TraceEvent::Publish { at, sender, seq });
        self.senders.entry(sender).or_default().published += 1;
    }

    /// Records the sink filtering a non-member's message (not a
    /// delivery; kept in the trace for context).
    pub fn record_filtered(&mut self, at: u64, sender: ServiceId, seq: u64) {
        self.trace.push(TraceEvent::Filtered { at, sender, seq });
    }

    /// Records the sink accepting message `seq` from `sender`, checking
    /// every guarantee.
    pub fn record_delivery(&mut self, at: u64, sender: ServiceId, seq: u64) {
        self.trace.push(TraceEvent::Deliver { at, sender, seq });
        let state = self.senders.entry(sender).or_default();
        state.delivered += 1;
        let last = state.last_delivered;
        let member = state.member;
        if seq == last && last != 0 {
            self.fail(
                ViolationKind::DuplicateDelivery,
                format!("message #{seq} from {sender} delivered twice"),
                Some((sender, seq)),
            );
        } else if seq < last {
            self.fail(
                ViolationKind::FifoViolation,
                format!("message #{seq} from {sender} delivered after #{last}"),
                Some((sender, seq)),
            );
        } else {
            self.senders
                .get_mut(&sender)
                .expect("sender state exists")
                .last_delivered = seq;
        }
        if !member {
            self.fail(
                ViolationKind::DeliveryAfterPurge,
                format!("message #{seq} from {sender} delivered while purged / never admitted"),
                Some((sender, seq)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ServiceId {
        ServiceId::from_raw(n)
    }

    #[test]
    fn clean_run_passes() {
        let mut o = DeliveryOracle::new(1);
        o.record_joined(10, id(7));
        o.record_publish(20, id(7), 1);
        o.record_delivery(30, id(7), 1);
        o.record_publish(40, id(7), 2);
        o.record_delivery(50, id(7), 2);
        o.assert_clean();
        assert_eq!(o.published(id(7)), 2);
        assert_eq!(o.delivered(id(7)), 2);
    }

    #[test]
    fn duplicate_is_flagged_with_seed_and_trace() {
        let mut o = DeliveryOracle::new(99);
        o.record_joined(1, id(3));
        o.record_publish(2, id(3), 1);
        o.record_delivery(3, id(3), 1);
        o.record_delivery(4, id(3), 1);
        let v = o.violation().expect("duplicate must be flagged");
        assert_eq!(v.kind, ViolationKind::DuplicateDelivery);
        assert_eq!(v.seed, 99);
        assert!(v.trace.len() >= 4);
        let text = v.to_string();
        assert!(text.contains("seed 99"));
        assert!(text.contains("deliver"));
    }

    #[test]
    fn reorder_is_flagged() {
        let mut o = DeliveryOracle::new(5);
        o.record_joined(1, id(3));
        o.record_delivery(2, id(3), 2);
        o.record_delivery(3, id(3), 1);
        assert_eq!(o.violation().unwrap().kind, ViolationKind::FifoViolation);
    }

    #[test]
    fn delivery_after_purge_is_flagged() {
        let mut o = DeliveryOracle::new(5);
        o.record_joined(1, id(3));
        o.record_purged(2, id(3));
        o.record_delivery(3, id(3), 1);
        assert_eq!(
            o.violation().unwrap().kind,
            ViolationKind::DeliveryAfterPurge
        );
    }

    #[test]
    fn readmission_clears_the_purge() {
        let mut o = DeliveryOracle::new(5);
        o.record_joined(1, id(3));
        o.record_purged(2, id(3));
        o.record_joined(3, id(3));
        o.record_delivery(4, id(3), 1);
        o.assert_clean();
    }
}
