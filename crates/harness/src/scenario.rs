//! Scenario scripts: seeded, reproducible fault schedules.
//!
//! A [`Scenario`] is a complete description of one chaos run — node
//! count, duration, publish cadence and a list of [`ScriptedOp`]s fired
//! at scripted virtual times. Everything is plain data: printing a
//! scenario and feeding it back reproduces the run bit for bit, which is
//! what makes oracle violations actionable.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canned link profiles a scripted op can switch a node to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkProfileKind {
    /// Zero-latency, lossless.
    Ideal,
    /// The paper prototype's USB/IP access network.
    UsbIp,
    /// Bluetooth personal-area link.
    Bluetooth,
    /// 802.15.4 body-sensor link.
    Zigbee,
}

impl LinkProfileKind {
    /// The transport-level configuration for this profile.
    pub fn config(self) -> smc_transport::LinkConfig {
        match self {
            LinkProfileKind::Ideal => smc_transport::LinkConfig::ideal(),
            LinkProfileKind::UsbIp => smc_transport::LinkConfig::usb_ip_link(),
            LinkProfileKind::Bluetooth => smc_transport::LinkConfig::bluetooth_link(),
            LinkProfileKind::Zigbee => smc_transport::LinkConfig::zigbee_link(),
        }
    }
}

/// One fault injected into the simulated world.
///
/// `node` indexes the scenario's device nodes (`0..Scenario::nodes`).
/// Operations with a `duration` are reverted (link restored, partition
/// healed, node restarted) that long after they fire.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosOp {
    /// The node's links drop datagrams with probability `loss`.
    LossBurst {
        /// Target device node index.
        node: usize,
        /// Drop probability in `[0, 1]`.
        loss: f64,
        /// Burst length; the link heals afterwards.
        duration: Duration,
    },
    /// The node is partitioned from the cell (both endpoints).
    Partition {
        /// Target device node index.
        node: usize,
        /// Partition length; heals afterwards.
        duration: Duration,
    },
    /// The node's links deliver duplicates with probability `duplicate`.
    DuplicateStorm {
        /// Target device node index.
        node: usize,
        /// Duplication probability in `[0, 1]`.
        duplicate: f64,
        /// Storm length; the link heals afterwards.
        duration: Duration,
    },
    /// The node crashes (loses all channel state) and restarts with the
    /// same identity after `down_for`.
    Crash {
        /// Target device node index.
        node: usize,
        /// Outage length before the restart.
        down_for: Duration,
    },
    /// The node moves to another broadcast domain (stops hearing the
    /// cell's beacons) and moves back after `duration`.
    DomainMove {
        /// Target device node index.
        node: usize,
        /// The domain wandered into.
        domain: u32,
        /// Time away before returning to the cell's domain.
        duration: Duration,
    },
    /// The node's links permanently switch to a different profile.
    LinkProfile {
        /// Target device node index.
        node: usize,
        /// The new profile.
        profile: LinkProfileKind,
    },
    /// The *core* crashes — discovery and the bus sink lose all
    /// in-memory state — and restarts from its write-ahead log after
    /// `down_for`. The durability layer's whole job is making this
    /// indistinguishable (oracle-wise) from a long network stall.
    CoreCrash {
        /// Outage length before the recovery.
        down_for: Duration,
    },
}

impl ChaosOp {
    /// The device node this op targets, or `None` for ops aimed at the
    /// core itself.
    pub fn node(&self) -> Option<usize> {
        match *self {
            ChaosOp::LossBurst { node, .. }
            | ChaosOp::Partition { node, .. }
            | ChaosOp::DuplicateStorm { node, .. }
            | ChaosOp::Crash { node, .. }
            | ChaosOp::DomainMove { node, .. }
            | ChaosOp::LinkProfile { node, .. } => Some(node),
            ChaosOp::CoreCrash { .. } => None,
        }
    }
}

/// A [`ChaosOp`] scheduled at a virtual time offset from the run start.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedOp {
    /// When the op fires, relative to the start of the run.
    pub at: Duration,
    /// What happens.
    pub op: ChaosOp,
}

/// A complete, reproducible chaos-run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for the network's loss/jitter/duplication draws (and the one
    /// reported when the oracle flags a violation).
    pub seed: u64,
    /// Number of device nodes (publishers) besides the cell.
    pub nodes: usize,
    /// Virtual length of the run.
    pub duration: Duration,
    /// How often each member device publishes an event.
    pub publish_interval: Duration,
    /// The fault schedule.
    pub ops: Vec<ScriptedOp>,
}

impl Scenario {
    /// A quiet scenario: no faults, `nodes` devices publishing for
    /// `duration`.
    pub fn quiet(seed: u64, nodes: usize, duration: Duration) -> Self {
        Scenario {
            seed,
            nodes,
            duration,
            publish_interval: Duration::from_millis(100),
            ops: Vec::new(),
        }
    }

    /// Generates a randomized fault schedule from `seed`: `ops` faults
    /// drawn uniformly over the op families, spread over the first 80%
    /// of the run (so late faults still resolve inside it).
    pub fn random(seed: u64, nodes: usize, duration: Duration, ops: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = Scenario::quiet(seed, nodes.max(1), duration);
        let window = (duration.as_micros() as u64).saturating_mul(4) / 5;
        for _ in 0..ops {
            let at = Duration::from_micros(rng.gen_range(0..window.max(1)));
            let node = rng.gen_range(0..scenario.nodes);
            let hold = Duration::from_millis(rng.gen_range(50..800));
            let op = match rng.gen_range(0..7u32) {
                0 => ChaosOp::LossBurst {
                    node,
                    loss: rng.gen_range(0.2..0.9),
                    duration: hold,
                },
                1 => ChaosOp::Partition {
                    node,
                    duration: hold,
                },
                2 => ChaosOp::DuplicateStorm {
                    node,
                    duplicate: rng.gen_range(0.2..0.9),
                    duration: hold,
                },
                3 => ChaosOp::Crash {
                    node,
                    down_for: hold,
                },
                4 => ChaosOp::DomainMove {
                    node,
                    domain: rng.gen_range(1..4u32),
                    duration: hold,
                },
                5 => ChaosOp::CoreCrash { down_for: hold },
                _ => ChaosOp::LinkProfile {
                    node,
                    profile: match rng.gen_range(0..4u32) {
                        0 => LinkProfileKind::Ideal,
                        1 => LinkProfileKind::UsbIp,
                        2 => LinkProfileKind::Bluetooth,
                        _ => LinkProfileKind::Zigbee,
                    },
                },
            };
            scenario.ops.push(ScriptedOp { at, op });
        }
        scenario.ops.sort_by_key(|s| s.at);
        scenario
    }

    /// Scripts sorted by firing time (the runner requires this).
    pub fn sorted(mut self) -> Self {
        self.ops.sort_by_key(|s| s.at);
        self
    }
}

/// Reduces a failing scenario to a (locally) minimal one.
///
/// `fails` must return `true` when the scenario still exhibits the
/// failure. The shrinker repeatedly tries dropping each op and halving
/// the tail of the run, keeping any reduction that still fails — the
/// moral equivalent of proptest shrinking, specialised to fault scripts
/// (which our vendored proptest shim cannot shrink structurally).
pub fn shrink_scenario<F>(mut scenario: Scenario, mut fails: F) -> Scenario
where
    F: FnMut(&Scenario) -> bool,
{
    loop {
        let mut reduced = false;
        // Try dropping each op, last first (later ops are likelier to be
        // irrelevant to an early violation).
        let mut i = scenario.ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = scenario.clone();
            candidate.ops.remove(i);
            if fails(&candidate) {
                scenario = candidate;
                reduced = true;
            }
        }
        // Try shortening the run.
        if scenario.duration > Duration::from_secs(1) {
            let mut candidate = scenario.clone();
            candidate.duration = scenario.duration / 2;
            if fails(&candidate) {
                scenario = candidate;
                reduced = true;
            }
        }
        if !reduced {
            return scenario;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = Scenario::random(42, 4, Duration::from_secs(10), 8);
        let b = Scenario::random(42, 4, Duration::from_secs(10), 8);
        assert_eq!(a, b);
        let c = Scenario::random(43, 4, Duration::from_secs(10), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_ops_are_sorted_and_in_window() {
        let s = Scenario::random(7, 3, Duration::from_secs(10), 12);
        assert_eq!(s.ops.len(), 12);
        for pair in s.ops.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for op in &s.ops {
            assert!(op.at < Duration::from_secs(8));
            if let Some(node) = op.op.node() {
                assert!(node < 3);
            }
        }
    }

    #[test]
    fn shrinker_reaches_a_minimal_script() {
        // A scenario "fails" whenever it still contains a Crash op; the
        // shrinker should strip everything else.
        let s = Scenario::random(11, 4, Duration::from_secs(16), 20);
        assert!(s.ops.iter().any(|o| matches!(o.op, ChaosOp::Crash { .. })));
        let minimal = shrink_scenario(s, |c| {
            c.ops.iter().any(|o| matches!(o.op, ChaosOp::Crash { .. }))
        });
        assert_eq!(minimal.ops.len(), 1);
        assert!(matches!(minimal.ops[0].op, ChaosOp::Crash { .. }));
        assert!(minimal.duration <= Duration::from_secs(2));
    }
}
