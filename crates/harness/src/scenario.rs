//! Scenario scripts: seeded, reproducible fault schedules.
//!
//! A [`Scenario`] is a complete description of one chaos run — node
//! count, duration, publish cadence and a list of [`ScriptedOp`]s fired
//! at scripted virtual times. Everything is plain data: printing a
//! scenario and feeding it back reproduces the run bit for bit, which is
//! what makes oracle violations actionable.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canned link profiles a scripted op can switch a node to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkProfileKind {
    /// Zero-latency, lossless.
    Ideal,
    /// The paper prototype's USB/IP access network.
    UsbIp,
    /// Bluetooth personal-area link.
    Bluetooth,
    /// 802.15.4 body-sensor link.
    Zigbee,
}

impl LinkProfileKind {
    /// The transport-level configuration for this profile.
    pub fn config(self) -> smc_transport::LinkConfig {
        match self {
            LinkProfileKind::Ideal => smc_transport::LinkConfig::ideal(),
            LinkProfileKind::UsbIp => smc_transport::LinkConfig::usb_ip_link(),
            LinkProfileKind::Bluetooth => smc_transport::LinkConfig::bluetooth_link(),
            LinkProfileKind::Zigbee => smc_transport::LinkConfig::zigbee_link(),
        }
    }
}

/// The cell-side components a supervisor can kill and restart
/// individually (the whole core is [`ChaosOp::CoreCrash`]'s business).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreComponent {
    /// The discovery service and its channel.
    Discovery,
    /// The bus sink endpoint — the cell's event intake.
    Sink,
}

/// Which piece of live state a [`ChaosOp::CorruptState`] damages. Every
/// target diverges a *view* from durable truth without touching the
/// write-ahead log, so only an anti-entropy reconcile pass heals it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// The sink's membership view silently forgets device `node`: its
    /// events are filtered as if it had been purged.
    MembershipView {
        /// Target device node index.
        node: usize,
    },
    /// A fabricated member id appears in the sink's membership view.
    GhostMember,
    /// The discovery table silently drops device `node` — no `Purged`
    /// event, no counter; the member just vanishes.
    DiscoveryMember {
        /// Target device node index.
        node: usize,
    },
}

/// One fault injected into the simulated world.
///
/// `node` indexes the scenario's device nodes (`0..Scenario::nodes`).
/// Operations with a `duration` are reverted (link restored, partition
/// healed, node restarted) that long after they fire.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosOp {
    /// The node's links drop datagrams with probability `loss`.
    LossBurst {
        /// Target device node index.
        node: usize,
        /// Drop probability in `[0, 1]`.
        loss: f64,
        /// Burst length; the link heals afterwards.
        duration: Duration,
    },
    /// The node is partitioned from the cell (both endpoints).
    Partition {
        /// Target device node index.
        node: usize,
        /// Partition length; heals afterwards.
        duration: Duration,
    },
    /// The node's links deliver duplicates with probability `duplicate`.
    DuplicateStorm {
        /// Target device node index.
        node: usize,
        /// Duplication probability in `[0, 1]`.
        duplicate: f64,
        /// Storm length; the link heals afterwards.
        duration: Duration,
    },
    /// The node crashes (loses all channel state) and restarts with the
    /// same identity after `down_for`.
    Crash {
        /// Target device node index.
        node: usize,
        /// Outage length before the restart.
        down_for: Duration,
    },
    /// The node moves to another broadcast domain (stops hearing the
    /// cell's beacons) and moves back after `duration`.
    DomainMove {
        /// Target device node index.
        node: usize,
        /// The domain wandered into.
        domain: u32,
        /// Time away before returning to the cell's domain.
        duration: Duration,
    },
    /// The node's links permanently switch to a different profile.
    LinkProfile {
        /// Target device node index.
        node: usize,
        /// The new profile.
        profile: LinkProfileKind,
    },
    /// The *core* crashes — discovery and the bus sink lose all
    /// in-memory state — and restarts from its write-ahead log after
    /// `down_for`. The durability layer's whole job is making this
    /// indistinguishable (oracle-wise) from a long network stall.
    CoreCrash {
        /// Outage length before the recovery.
        down_for: Duration,
    },
    /// One core component silently dies. There is **no scripted
    /// restart**: only a supervisor (see `RunOptions::supervision`)
    /// brings it back, which is exactly what the supervision teeth
    /// tests prove — without one, the component stays down forever.
    KillComponent {
        /// Which component dies.
        component: CoreComponent,
        /// A wedged component shrugs off restarts: the fault persists
        /// until the supervisor escalates to a full core reboot.
        wedged: bool,
    },
    /// Live state diverges from durable truth (see [`CorruptTarget`]).
    /// No detector fires — only a periodic anti-entropy reconcile pass
    /// notices and repairs the divergence.
    CorruptState {
        /// What gets corrupted.
        target: CorruptTarget,
    },
    /// Cell `cell`'s *in-process supervisor* dies — the monitor/supervisor
    /// loop stops ticking while the cell's data plane keeps running.
    /// There is no scripted restart: in a single-cell world the loop is
    /// gone for good (the peer-supervision teeth baseline), and in a
    /// multi-cell world only a sibling's remote repair revives it.
    KillSupervisor {
        /// Which cell's supervisor dies (`0` in a single-cell world).
        cell: usize,
    },
    /// Cell `cell` is partitioned from its sibling cells (supervision
    /// traffic severed both ways) and heals after `duration`. Exercises
    /// false-positive adoption: the partitioned cell is alive, so its
    /// resumed lease must refute any claim the silence provoked.
    PartitionCell {
        /// Which cell is cut off.
        cell: usize,
        /// Partition length; heals afterwards.
        duration: Duration,
    },
}

impl ChaosOp {
    /// The device node this op targets, or `None` for ops aimed at the
    /// core itself.
    pub fn node(&self) -> Option<usize> {
        match *self {
            ChaosOp::LossBurst { node, .. }
            | ChaosOp::Partition { node, .. }
            | ChaosOp::DuplicateStorm { node, .. }
            | ChaosOp::Crash { node, .. }
            | ChaosOp::DomainMove { node, .. }
            | ChaosOp::LinkProfile { node, .. } => Some(node),
            ChaosOp::CoreCrash { .. }
            | ChaosOp::KillComponent { .. }
            | ChaosOp::CorruptState { .. }
            | ChaosOp::KillSupervisor { .. }
            | ChaosOp::PartitionCell { .. } => None,
        }
    }
}

/// A [`ChaosOp`] scheduled at a virtual time offset from the run start.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedOp {
    /// When the op fires, relative to the start of the run.
    pub at: Duration,
    /// What happens.
    pub op: ChaosOp,
}

/// A complete, reproducible chaos-run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for the network's loss/jitter/duplication draws (and the one
    /// reported when the oracle flags a violation).
    pub seed: u64,
    /// Number of device nodes (publishers) besides the cell.
    pub nodes: usize,
    /// Virtual length of the run.
    pub duration: Duration,
    /// How often each member device publishes an event.
    pub publish_interval: Duration,
    /// The fault schedule.
    pub ops: Vec<ScriptedOp>,
}

impl Scenario {
    /// A quiet scenario: no faults, `nodes` devices publishing for
    /// `duration`.
    pub fn quiet(seed: u64, nodes: usize, duration: Duration) -> Self {
        Scenario {
            seed,
            nodes,
            duration,
            publish_interval: Duration::from_millis(100),
            ops: Vec::new(),
        }
    }

    /// Generates a randomized fault schedule from `seed`: `ops` faults
    /// drawn uniformly over the op families, spread over the first 80%
    /// of the run (so late faults still resolve inside it).
    pub fn random(seed: u64, nodes: usize, duration: Duration, ops: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = Scenario::quiet(seed, nodes.max(1), duration);
        let window = (duration.as_micros() as u64).saturating_mul(4) / 5;
        for _ in 0..ops {
            let at = Duration::from_micros(rng.gen_range(0..window.max(1)));
            let node = rng.gen_range(0..scenario.nodes);
            let hold = Duration::from_millis(rng.gen_range(50..800));
            let op = match rng.gen_range(0..7u32) {
                0 => ChaosOp::LossBurst {
                    node,
                    loss: rng.gen_range(0.2..0.9),
                    duration: hold,
                },
                1 => ChaosOp::Partition {
                    node,
                    duration: hold,
                },
                2 => ChaosOp::DuplicateStorm {
                    node,
                    duplicate: rng.gen_range(0.2..0.9),
                    duration: hold,
                },
                3 => ChaosOp::Crash {
                    node,
                    down_for: hold,
                },
                4 => ChaosOp::DomainMove {
                    node,
                    domain: rng.gen_range(1..4u32),
                    duration: hold,
                },
                5 => ChaosOp::CoreCrash { down_for: hold },
                _ => ChaosOp::LinkProfile {
                    node,
                    profile: match rng.gen_range(0..4u32) {
                        0 => LinkProfileKind::Ideal,
                        1 => LinkProfileKind::UsbIp,
                        2 => LinkProfileKind::Bluetooth,
                        _ => LinkProfileKind::Zigbee,
                    },
                },
            };
            scenario.ops.push(ScriptedOp { at, op });
        }
        scenario.ops.sort_by_key(|s| s.at);
        scenario
    }

    /// Generates a randomized *supervision* fault schedule from `seed`:
    /// component kills (occasionally wedged) and state corruptions, one
    /// per evenly-sized slot over the first 80% of the run so the
    /// supervisor has room to finish each repair (worst-case — a wedged
    /// kill escalating to a core reboot — takes a few virtual seconds)
    /// before the next fault lands. Deterministic per seed, and on a
    /// separate rng stream from [`Scenario::random`] so existing traces
    /// stay byte-identical.
    pub fn random_supervision(seed: u64, nodes: usize, duration: Duration, ops: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = Scenario::quiet(seed, nodes.max(1), duration);
        let window = (duration.as_micros() as u64).saturating_mul(4) / 5;
        let slot = (window / ops.max(1) as u64).max(1);
        for i in 0..ops {
            let at = Duration::from_micros(i as u64 * slot + rng.gen_range(0..slot / 4 + 1));
            let node = rng.gen_range(0..scenario.nodes);
            let op = match rng.gen_range(0..8u32) {
                0 | 1 => ChaosOp::KillComponent {
                    component: CoreComponent::Discovery,
                    wedged: false,
                },
                2 | 3 => ChaosOp::KillComponent {
                    component: CoreComponent::Sink,
                    wedged: false,
                },
                4 => ChaosOp::KillComponent {
                    component: if rng.gen_range(0..2u32) == 0 {
                        CoreComponent::Discovery
                    } else {
                        CoreComponent::Sink
                    },
                    wedged: true,
                },
                5 => ChaosOp::CorruptState {
                    target: CorruptTarget::MembershipView { node },
                },
                6 => ChaosOp::CorruptState {
                    target: CorruptTarget::GhostMember,
                },
                _ => ChaosOp::CorruptState {
                    target: CorruptTarget::DiscoveryMember { node },
                },
            };
            scenario.ops.push(ScriptedOp { at, op });
        }
        scenario
    }

    /// Generates a randomized *peer-supervision* fault schedule from
    /// `seed`: the supervision families plus supervisor kills, cell
    /// partitions, and the compound fault the tentpole exists for — a
    /// component kill followed 600 ms later by the killing of the very
    /// supervisor repairing it, leaving a sibling cell to adopt and
    /// finish the repair. One fault (or compound pair) per evenly-sized
    /// slot over the first 80% of the run so the worst chain (wedged
    /// kill → orphaned mid-escalation → remote adoption → core reboot)
    /// resolves before the next fault lands. Deterministic per seed, on
    /// its own rng stream.
    pub fn random_peer(seed: u64, nodes: usize, duration: Duration, ops: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut scenario = Scenario::quiet(seed, nodes.max(1), duration);
        let window = (duration.as_micros() as u64).saturating_mul(4) / 5;
        let slot = (window / ops.max(1) as u64).max(1);
        for i in 0..ops {
            let at = Duration::from_micros(i as u64 * slot + rng.gen_range(0..slot / 8 + 1));
            let node = rng.gen_range(0..scenario.nodes);
            let component = if rng.gen_range(0..2u32) == 0 {
                CoreComponent::Discovery
            } else {
                CoreComponent::Sink
            };
            match rng.gen_range(0..8u32) {
                0 | 1 => scenario.ops.push(ScriptedOp {
                    at,
                    op: ChaosOp::KillComponent {
                        component,
                        wedged: false,
                    },
                }),
                2 => scenario.ops.push(ScriptedOp {
                    at,
                    op: ChaosOp::KillComponent {
                        component,
                        wedged: true,
                    },
                }),
                3 | 4 => {
                    // The compound: kill a component, then kill the
                    // supervisor mid-repair. Only a sibling finishes it.
                    scenario.ops.push(ScriptedOp {
                        at,
                        op: ChaosOp::KillComponent {
                            component,
                            wedged: rng.gen_range(0..2u32) == 0,
                        },
                    });
                    scenario.ops.push(ScriptedOp {
                        at: at + Duration::from_millis(600),
                        op: ChaosOp::KillSupervisor { cell: 0 },
                    });
                }
                5 => scenario.ops.push(ScriptedOp {
                    at,
                    op: ChaosOp::KillSupervisor {
                        cell: rng.gen_range(0..2usize),
                    },
                }),
                6 => scenario.ops.push(ScriptedOp {
                    at,
                    op: ChaosOp::PartitionCell {
                        cell: rng.gen_range(0..2usize),
                        duration: Duration::from_millis(rng.gen_range(400..900)),
                    },
                }),
                _ => scenario.ops.push(ScriptedOp {
                    at,
                    op: ChaosOp::CorruptState {
                        target: match rng.gen_range(0..3u32) {
                            0 => CorruptTarget::MembershipView { node },
                            1 => CorruptTarget::GhostMember,
                            _ => CorruptTarget::DiscoveryMember { node },
                        },
                    },
                }),
            }
        }
        scenario.sorted()
    }

    /// Scripts sorted by firing time (the runner requires this).
    pub fn sorted(mut self) -> Self {
        self.ops.sort_by_key(|s| s.at);
        self
    }
}

/// Reduces a failing scenario to a (locally) minimal one.
///
/// `fails` must return `true` when the scenario still exhibits the
/// failure. The shrinker repeatedly tries dropping each op and halving
/// the tail of the run, keeping any reduction that still fails — the
/// moral equivalent of proptest shrinking, specialised to fault scripts
/// (which our vendored proptest shim cannot shrink structurally).
pub fn shrink_scenario<F>(mut scenario: Scenario, mut fails: F) -> Scenario
where
    F: FnMut(&Scenario) -> bool,
{
    loop {
        let mut reduced = false;
        // Try dropping each op, last first (later ops are likelier to be
        // irrelevant to an early violation).
        let mut i = scenario.ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = scenario.clone();
            candidate.ops.remove(i);
            if fails(&candidate) {
                scenario = candidate;
                reduced = true;
            }
        }
        // Try shortening the run.
        if scenario.duration > Duration::from_secs(1) {
            let mut candidate = scenario.clone();
            candidate.duration = scenario.duration / 2;
            if fails(&candidate) {
                scenario = candidate;
                reduced = true;
            }
        }
        if !reduced {
            return scenario;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = Scenario::random(42, 4, Duration::from_secs(10), 8);
        let b = Scenario::random(42, 4, Duration::from_secs(10), 8);
        assert_eq!(a, b);
        let c = Scenario::random(43, 4, Duration::from_secs(10), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_ops_are_sorted_and_in_window() {
        let s = Scenario::random(7, 3, Duration::from_secs(10), 12);
        assert_eq!(s.ops.len(), 12);
        for pair in s.ops.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for op in &s.ops {
            assert!(op.at < Duration::from_secs(8));
            if let Some(node) = op.op.node() {
                assert!(node < 3);
            }
        }
    }

    #[test]
    fn random_supervision_is_reproducible_and_spaced() {
        let a = Scenario::random_supervision(42, 3, Duration::from_secs(30), 6);
        let b = Scenario::random_supervision(42, 3, Duration::from_secs(30), 6);
        assert_eq!(a, b);
        assert_ne!(
            a,
            Scenario::random_supervision(43, 3, Duration::from_secs(30), 6)
        );
        assert_eq!(a.ops.len(), 6);
        // One op per 4-second slot: consecutive faults never land within
        // 3 seconds of each other (slot minus the max jitter).
        for pair in a.ops.windows(2) {
            assert!(pair[1].at - pair[0].at >= Duration::from_secs(3));
        }
        for op in &a.ops {
            assert!(matches!(
                op.op,
                ChaosOp::KillComponent { .. } | ChaosOp::CorruptState { .. }
            ));
        }
    }

    #[test]
    fn random_peer_is_reproducible_and_spaced() {
        let a = Scenario::random_peer(42, 3, Duration::from_secs(30), 3);
        let b = Scenario::random_peer(42, 3, Duration::from_secs(30), 3);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::random_peer(43, 3, Duration::from_secs(30), 3));
        // Slot spacing: ops from different slots land ≥ 5 s apart (slot
        // minus max jitter minus the compound's 600 ms follow-up).
        let slots: Vec<_> = a
            .ops
            .iter()
            .map(|o| o.at.as_micros() as u64 / 8_000_000)
            .collect();
        for pair in slots.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        for op in &a.ops {
            assert!(matches!(
                op.op,
                ChaosOp::KillComponent { .. }
                    | ChaosOp::CorruptState { .. }
                    | ChaosOp::KillSupervisor { .. }
                    | ChaosOp::PartitionCell { .. }
            ));
        }
        // Across seeds, every family (including the compound) shows up.
        let mut saw_kill_supervisor = false;
        let mut saw_partition = false;
        for seed in 0..64 {
            let s = Scenario::random_peer(seed, 3, Duration::from_secs(30), 3);
            saw_kill_supervisor |= s
                .ops
                .iter()
                .any(|o| matches!(o.op, ChaosOp::KillSupervisor { .. }));
            saw_partition |= s
                .ops
                .iter()
                .any(|o| matches!(o.op, ChaosOp::PartitionCell { .. }));
        }
        assert!(saw_kill_supervisor && saw_partition);
    }

    #[test]
    fn shrinker_reaches_a_minimal_script() {
        // A scenario "fails" whenever it still contains a Crash op; the
        // shrinker should strip everything else.
        let s = Scenario::random(11, 4, Duration::from_secs(16), 20);
        assert!(s.ops.iter().any(|o| matches!(o.op, ChaosOp::Crash { .. })));
        let minimal = shrink_scenario(s, |c| {
            c.ops.iter().any(|o| matches!(o.op, ChaosOp::Crash { .. }))
        });
        assert_eq!(minimal.ops.len(), 1);
        assert!(matches!(minimal.ops[0].op, ChaosOp::Crash { .. }));
        assert!(minimal.duration <= Duration::from_secs(2));
    }
}
