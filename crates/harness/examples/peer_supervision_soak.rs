//! Peer-supervision soak: sweep seeded schedules that kill components,
//! kill the supervisors themselves, partition cells, and corrupt state
//! — in the two-cell world where a sibling holds a lease over each
//! supervisor — and prove every run ends with both cells healthy,
//! nothing still adopted, and zero delivery-guarantee violations.
//!
//! ```bash
//! cargo run --release -p smc-harness --example peer_supervision_soak -- [seeds] [secs] [ops]
//! ```
//!
//! Writes `results/BENCH_peer_supervision.json` (relative to the
//! workspace root when run from there). Exits non-zero on any oracle
//! violation or unconverged cell, so the soak doubles as a CI gate. A
//! final single-cell run with a wedged component leaves the escalation
//! flight-recorder dump behind as the post-mortem artifact.

use std::fmt::Write as _;
use std::time::Duration;

use smc_harness::{
    run_peer, run_with_options, ChaosOp, CoreComponent, HealthOptions, RunOptions, Scenario,
    ScriptedOp, SupervisionOptions,
};

struct SeedResult {
    seed: u64,
    adoptions: u64,
    releases: u64,
    claims_lost: u64,
    stepdowns: u64,
    supervisor_revivals: u64,
    remote_commands: u64,
    remote_repairs: u64,
    core_reboots: u64,
    reconciles: u64,
    checkpoints_deferred: u64,
    converged: bool,
    violation: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| -> u64 {
        args.next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(default)
    };
    let seeds = next(24);
    let secs = next(24);
    let ops = next(3) as usize;

    let mut results: Vec<SeedResult> = Vec::new();
    let mut violations = 0usize;
    let mut unconverged = 0usize;

    for seed in 9_500..9_500 + seeds {
        let scenario = Scenario::random_peer(seed, 3, Duration::from_secs(secs), ops);
        let report = run_peer(&scenario);
        let violation = report.oracle.violation().is_some();
        let converged = report.converged();
        if violation {
            violations += 1;
        }
        if !converged {
            unconverged += 1;
        }
        let sum = |f: fn(&smc_harness::CellReport) -> u64| report.cells.iter().map(f).sum::<u64>();
        let result = SeedResult {
            seed,
            adoptions: sum(|c| c.peer.adoptions),
            releases: sum(|c| c.peer.releases),
            claims_lost: sum(|c| c.peer.claims_lost),
            stepdowns: sum(|c| c.peer.stepdowns),
            supervisor_revivals: sum(|c| c.supervisor_revivals),
            remote_commands: sum(|c| c.remote_commands.len() as u64),
            remote_repairs: sum(|c| c.remote_repairs.len() as u64),
            core_reboots: sum(|c| c.core_recoveries),
            reconciles: sum(|c| c.reconciles),
            checkpoints_deferred: sum(|c| c.checkpoints_deferred),
            converged,
            violation,
        };
        eprintln!(
            "seed {seed}: adoptions={} releases={} revivals={} remote_repairs={} reboots={} converged={converged} violation={violation}",
            result.adoptions,
            result.releases,
            result.supervisor_revivals,
            result.remote_repairs,
            result.core_reboots,
        );
        results.push(result);
    }

    let totals = |f: fn(&SeedResult) -> u64| results.iter().map(f).sum::<u64>();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"peer_supervision_soak\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"virtual_secs\": {secs}, \"ops_per_seed\": {ops}, \"nodes_per_cell\": 3, \"cells\": 2}},"
    );
    let _ = writeln!(json, "  \"violations\": {violations},");
    let _ = writeln!(json, "  \"unconverged\": {unconverged},");
    let _ = writeln!(
        json,
        "  \"totals\": {{\"adoptions\": {}, \"releases\": {}, \"claims_lost\": {}, \"stepdowns\": {}, \"supervisor_revivals\": {}, \"remote_commands\": {}, \"remote_repairs\": {}, \"core_reboots\": {}, \"reconciles\": {}, \"checkpoints_deferred\": {}}},",
        totals(|r| r.adoptions),
        totals(|r| r.releases),
        totals(|r| r.claims_lost),
        totals(|r| r.stepdowns),
        totals(|r| r.supervisor_revivals),
        totals(|r| r.remote_commands),
        totals(|r| r.remote_repairs),
        totals(|r| r.core_reboots),
        totals(|r| r.reconciles),
        totals(|r| r.checkpoints_deferred),
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"adoptions\": {}, \"releases\": {}, \"claims_lost\": {}, \"stepdowns\": {}, \"supervisor_revivals\": {}, \"remote_commands\": {}, \"remote_repairs\": {}, \"core_reboots\": {}, \"reconciles\": {}, \"checkpoints_deferred\": {}, \"converged\": {}, \"violation\": {}}}{comma}",
            r.seed,
            r.adoptions,
            r.releases,
            r.claims_lost,
            r.stepdowns,
            r.supervisor_revivals,
            r.remote_commands,
            r.remote_repairs,
            r.core_reboots,
            r.reconciles,
            r.checkpoints_deferred,
            r.converged,
            r.violation,
        );
    }
    json.push_str("  ]\n}\n");

    let results_dir = std::path::Path::new("results");
    let out_dir = if results_dir.is_dir() {
        results_dir
    } else {
        std::path::Path::new(".")
    };

    // A wedged sink exhausts its restart budget and the supervisor
    // escalates — and an escalation dumps the flight recorder, so CI
    // ships the black box of a worst-case repair next to the numbers.
    let dump = out_dir.join("flight_recorder_escalation.txt");
    let mut wedge = Scenario::quiet(9_499, 2, Duration::from_secs(14));
    wedge.ops.push(ScriptedOp {
        at: Duration::from_secs(4),
        op: ChaosOp::KillComponent {
            component: CoreComponent::Sink,
            wedged: true,
        },
    });
    let wedge_report = run_with_options(
        &wedge.sorted(),
        RunOptions {
            health: Some(HealthOptions {
                dump_path: Some(dump.clone()),
                ..HealthOptions::default()
            }),
            supervision: Some(SupervisionOptions::default()),
            ..RunOptions::default()
        },
    );
    let dumped = wedge_report
        .health
        .as_ref()
        .and_then(|h| h.dumped_to.as_ref())
        .is_some();
    eprintln!(
        "escalation flight recorder dump: {} (written: {dumped})",
        dump.display()
    );

    let target = out_dir.join("BENCH_peer_supervision.json");
    std::fs::write(&target, &json).expect("write BENCH_peer_supervision.json");
    eprintln!(
        "wrote {} ({} seeds, {} adoptions, {} revivals, {violations} violations, {unconverged} unconverged)",
        target.display(),
        results.len(),
        totals(|r| r.adoptions),
        totals(|r| r.supervisor_revivals),
    );
    if violations > 0 || unconverged > 0 || !dumped {
        std::process::exit(1);
    }
}
