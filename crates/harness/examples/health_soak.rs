//! Health soak: measure the self-observation stack across a block of
//! seeds. Every seed runs twice — once with an injected retransmit storm
//! (the detector must fire, bounded latency) and once clean (it must
//! not) — and a final core-crash run leaves a flight-recorder dump for
//! the CI artifact.
//!
//! ```bash
//! cargo run --release -p smc-harness --example health_soak -- [seeds] [secs]
//! ```
//!
//! Writes `results/BENCH_health.json` (relative to the workspace root
//! when run from there) with per-detector detection-latency p50/p95 and
//! the false-positive count, and `results/flight_recorder.txt`. Exits
//! non-zero on any missed detection or clean-run false positive, so the
//! soak doubles as a CI gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use smc_harness::{run_with_options, ChaosOp, HealthOptions, RunOptions, Scenario, ScriptedOp};
use smc_health::HealthState;

const STORM_AT_MICROS: u64 = 2_000_000;

fn base(seed: u64, secs: u64) -> Scenario {
    let mut s = Scenario::quiet(seed, 2, Duration::from_secs(secs));
    s.publish_interval = Duration::from_millis(50);
    s
}

fn with_health(dump_path: Option<PathBuf>) -> RunOptions {
    RunOptions {
        health: Some(HealthOptions {
            dump_path,
            ..HealthOptions::default()
        }),
        ..RunOptions::default()
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

struct SeedResult {
    seed: u64,
    detect_micros: Option<u64>,
    quenched: bool,
    clean_transitions: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| -> u64 {
        args.next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(default)
    };
    let seeds = next(16);
    let secs = next(8);

    // Per-detector detection latencies (µs after storm onset), pooled
    // across seeds: the storm stresses device0's channel, so several
    // detectors may legitimately fire (retransmit-storm on the channel,
    // queue-growth on its backlog).
    let mut latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut results: Vec<SeedResult> = Vec::new();
    let mut missed = 0usize;
    let mut false_positives = 0usize;

    for seed in 11_000..11_000 + seeds {
        let mut storm = base(seed, secs);
        storm.ops.push(ScriptedOp {
            at: Duration::from_micros(STORM_AT_MICROS),
            op: ChaosOp::LossBurst {
                node: 0,
                loss: 0.97,
                duration: Duration::from_millis(2500),
            },
        });
        let report = run_with_options(&storm, with_health(None));
        let health = report.health.as_ref().expect("health enabled");
        for t in &health.transitions {
            if t.to == HealthState::Degraded && t.at_micros >= STORM_AT_MICROS {
                latencies
                    .entry(t.detector)
                    .or_default()
                    .push(t.at_micros - STORM_AT_MICROS);
            }
        }
        let detect_micros = health
            .first_transition("channel:device0", HealthState::Degraded)
            .map(|t| t.at_micros - STORM_AT_MICROS);
        let quenched = health
            .quenches
            .iter()
            .any(|&(_, id, enable)| id == report.device_ids[0] && enable);
        if detect_micros.is_none() {
            missed += 1;
        }

        let clean_report = run_with_options(&base(seed, secs), with_health(None));
        let clean = clean_report.health.as_ref().expect("health enabled");
        false_positives += clean.transitions.len();

        eprintln!(
            "seed {seed}: detect={:?}µs quenched={quenched} clean_transitions={}",
            detect_micros,
            clean.transitions.len()
        );
        results.push(SeedResult {
            seed,
            detect_micros,
            quenched,
            clean_transitions: clean.transitions.len(),
        });
    }

    // One crash run leaves the post-mortem artifact behind.
    let results_dir = std::path::Path::new("results");
    let out_dir = if results_dir.is_dir() {
        results_dir.to_path_buf()
    } else {
        PathBuf::from(".")
    };
    let dump = out_dir.join("flight_recorder.txt");
    let mut crash = base(11_000, secs);
    crash.ops.push(ScriptedOp {
        at: Duration::from_micros(STORM_AT_MICROS),
        op: ChaosOp::CoreCrash {
            down_for: Duration::from_secs(1),
        },
    });
    let crash_report = run_with_options(&crash, with_health(Some(dump.clone())));
    let dumped = crash_report
        .health
        .as_ref()
        .and_then(|h| h.dumped_to.as_ref())
        .is_some();
    eprintln!(
        "flight recorder dump: {} (written: {dumped})",
        dump.display()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"health_soak\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"virtual_secs\": {secs}, \"storm_at_micros\": {STORM_AT_MICROS}}},"
    );
    let _ = writeln!(json, "  \"missed_detections\": {missed},");
    let _ = writeln!(json, "  \"false_positives\": {false_positives},");
    json.push_str("  \"detectors\": {\n");
    let n_det = latencies.len();
    for (i, (detector, lat)) in latencies.iter_mut().enumerate() {
        lat.sort_unstable();
        let comma = if i + 1 < n_det { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{detector}\": {{\"fired\": {}, \"detect_p50_micros\": {}, \"detect_p95_micros\": {}}}{comma}",
            lat.len(),
            percentile(lat, 0.50),
            percentile(lat, 0.95),
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let detect = r
            .detect_micros
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_owned());
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"detect_micros\": {detect}, \"quenched\": {}, \"clean_transitions\": {}}}{comma}",
            r.seed, r.quenched, r.clean_transitions,
        );
    }
    json.push_str("  ]\n}\n");

    let target = out_dir.join("BENCH_health.json");
    std::fs::write(&target, &json).expect("write BENCH_health.json");
    eprintln!(
        "wrote {} ({} seeds, {missed} missed, {false_positives} false positives)",
        target.display(),
        results.len()
    );
    if missed > 0 || false_positives > 0 {
        std::process::exit(1);
    }
}
