//! Chaos soak: sweep randomized fault schedules (core crashes included)
//! across a block of seeds and emit a JSON report of delivery volume,
//! retransmission cost, recovery time and the oracle verdict per seed.
//!
//! ```bash
//! cargo run --release -p smc-harness --example chaos_soak -- [seeds] [nodes] [secs] [ops]
//! ```
//!
//! Writes `results/BENCH_chaos.json` (relative to the workspace root
//! when run from there). Exits non-zero if any seed's oracle flags a
//! violation, so the soak doubles as a CI gate.

use std::fmt::Write as _;
use std::time::Duration;

use smc_harness::{run, Scenario};

struct SeedResult {
    seed: u64,
    published: u64,
    delivered: u64,
    retransmits: u64,
    core_recoveries: u64,
    recovery_micros_total: u64,
    verdict: &'static str,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| -> u64 {
        args.next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(default)
    };
    let seeds = next(24);
    let nodes = next(3) as usize;
    let secs = next(10);
    let ops = next(10) as usize;

    let mut results: Vec<SeedResult> = Vec::new();
    let mut last_report = None;
    for seed in 9000..9000 + seeds {
        let scenario = Scenario::random(seed, nodes, Duration::from_secs(secs), ops);
        let report = run(&scenario);
        let verdict = if report.oracle.violation().is_none() {
            "clean"
        } else {
            "VIOLATION"
        };
        eprintln!(
            "seed {seed}: {verdict} published={} delivered={} retransmits={} recoveries={}",
            report.total_published(),
            report.total_delivered(),
            report.retransmits,
            report.core_recoveries,
        );
        results.push(SeedResult {
            seed,
            published: report.total_published(),
            delivered: report.total_delivered(),
            retransmits: report.retransmits,
            core_recoveries: report.core_recoveries,
            recovery_micros_total: report.recovery_micros_total,
            verdict,
        });
        last_report = Some(report);
    }

    // Final metrics dump in exposition format — what a scrape of the last
    // seed's run would have returned.
    if let Some(report) = &last_report {
        eprintln!("# --- final run metrics (exposition format) ---");
        eprint!("{}", report.registry.render_text());
        eprintln!("# --- end metrics ---");
    }

    let violations = results.iter().filter(|r| r.verdict != "clean").count();
    let recoveries: u64 = results.iter().map(|r| r.core_recoveries).sum();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"chaos_soak\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"nodes\": {nodes}, \"virtual_secs\": {secs}, \"ops\": {ops}}},"
    );
    let _ = writeln!(json, "  \"violations\": {violations},");
    let _ = writeln!(json, "  \"core_recoveries\": {recoveries},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"published\": {}, \"delivered\": {}, \"retransmits\": {}, \
             \"core_recoveries\": {}, \"recovery_micros_total\": {}, \"verdict\": \"{}\"}}{comma}",
            r.seed,
            r.published,
            r.delivered,
            r.retransmits,
            r.core_recoveries,
            r.recovery_micros_total,
            r.verdict,
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new("results");
    let target = if path.is_dir() {
        path.join("BENCH_chaos.json")
    } else {
        std::path::PathBuf::from("BENCH_chaos.json")
    };
    std::fs::write(&target, &json).expect("write BENCH_chaos.json");
    eprintln!(
        "wrote {} ({} runs, {violations} violations)",
        target.display(),
        results.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
