//! Replay a seeded chaos scenario from the command line and print the
//! delivery trace — the manual way to reproduce a failure a test or
//! property run reported by seed.
//!
//! ```bash
//! cargo run -p smc-harness --example chaos_demo -- <seed> [nodes] [secs] [ops]
//! ```

use std::time::Duration;

use smc_harness::{run, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |name: &str, default: Option<u64>| -> u64 {
        match args.next() {
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} must be an integer, got {raw:?}");
                std::process::exit(2);
            }),
            None => default.unwrap_or_else(|| {
                eprintln!(
                    "usage: chaos_demo <seed> [nodes] [secs] [ops]\n\
                     replays Scenario::random(seed, nodes, secs, ops) and prints the trace"
                );
                std::process::exit(2);
            }),
        }
    };
    let seed = next("seed", None);
    let nodes = next("nodes", Some(3)) as usize;
    let secs = next("secs", Some(8));
    let ops = next("ops", Some(6)) as usize;

    let scenario = Scenario::random(seed, nodes, Duration::from_secs(secs), ops);
    println!(
        "# scenario (seed {seed}): {} nodes, {secs}s, {} ops",
        scenario.nodes,
        scenario.ops.len()
    );
    for op in &scenario.ops {
        println!("#   t+{:>6}ms {:?}", op.at.as_millis(), op.op);
    }
    let report = run(&scenario);
    println!(
        "# published {} / delivered {} / members ever joined: {}",
        report.total_published(),
        report.total_delivered(),
        report.device_ids.len()
    );
    print!("{}", report.trace_text());
    match report.oracle.violation() {
        None => println!("# oracle: clean"),
        Some(v) => {
            println!("# oracle: VIOLATION\n{v}");
            std::process::exit(1);
        }
    }
}
