//! Supervision soak: sweep seeded kill-and-corrupt schedules and prove
//! the detect → repair loop closes every time — each seed's failure
//! episodes must all re-converge, with zero delivery-guarantee
//! violations, and the per-seed time-to-repair goes on record.
//!
//! ```bash
//! cargo run --release -p smc-harness --example supervision_soak -- [seeds] [secs] [ops]
//! ```
//!
//! Writes `results/BENCH_supervision.json` (relative to the workspace
//! root when run from there). Exits non-zero on any oracle violation or
//! unconverged episode, so the soak doubles as a CI gate.

use std::fmt::Write as _;
use std::time::Duration;

use smc_harness::{
    run_with_options, ChaosOp, HealthOptions, RunOptions, Scenario, ScriptedOp, SupervisionOptions,
};

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

struct SeedResult {
    seed: u64,
    restarts: u64,
    escalations: u64,
    reconcile_repairs: u64,
    policy_restarts: u64,
    core_reboots: u64,
    missed_ack_interrupts: u64,
    ttr_micros: Vec<u64>,
    converged: bool,
    violation: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| -> u64 {
        args.next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(default)
    };
    let seeds = next(24);
    let secs = next(20);
    let ops = next(5) as usize;

    let mut results: Vec<SeedResult> = Vec::new();
    let mut all_ttr: Vec<u64> = Vec::new();
    let mut violations = 0usize;
    let mut unconverged = 0usize;

    for seed in 9_000..9_000 + seeds {
        let scenario = Scenario::random_supervision(seed, 3, Duration::from_secs(secs), ops);
        let report = run_with_options(
            &scenario,
            RunOptions {
                supervision: Some(SupervisionOptions::default()),
                ..RunOptions::default()
            },
        );
        let sup = report.supervision.as_ref().expect("supervision enabled");
        let violation = report.oracle.violation().is_some();
        let converged = sup.converged();
        if violation {
            violations += 1;
        }
        if !converged {
            unconverged += 1;
        }
        all_ttr.extend(&sup.report.ttr_micros);
        eprintln!(
            "seed {seed}: restarts={} escalations={} reconcile_repairs={} mean_ttr={}µs converged={converged} violation={violation}",
            sup.report.restarts,
            sup.report.escalations,
            sup.report.reconcile_repairs,
            sup.report.mean_ttr_micros(),
        );
        results.push(SeedResult {
            seed,
            restarts: sup.report.restarts,
            escalations: sup.report.escalations,
            reconcile_repairs: sup.report.reconcile_repairs,
            policy_restarts: sup.policy_restarts,
            core_reboots: report.core_recoveries,
            missed_ack_interrupts: sup.missed_ack_interrupts,
            ttr_micros: sup.report.ttr_micros.clone(),
            converged,
            violation,
        });
    }

    all_ttr.sort_unstable();
    let mean_ttr = if all_ttr.is_empty() {
        0
    } else {
        all_ttr.iter().sum::<u64>() / all_ttr.len() as u64
    };
    let totals = |f: fn(&SeedResult) -> u64| results.iter().map(f).sum::<u64>();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"supervision_soak\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"virtual_secs\": {secs}, \"ops_per_seed\": {ops}, \"nodes\": 3}},"
    );
    let _ = writeln!(json, "  \"violations\": {violations},");
    let _ = writeln!(json, "  \"unconverged\": {unconverged},");
    let _ = writeln!(
        json,
        "  \"totals\": {{\"restarts\": {}, \"escalations\": {}, \"reconcile_repairs\": {}, \"policy_restarts\": {}, \"core_reboots\": {}, \"missed_ack_interrupts\": {}}},",
        totals(|r| r.restarts),
        totals(|r| r.escalations),
        totals(|r| r.reconcile_repairs),
        totals(|r| r.policy_restarts),
        totals(|r| r.core_reboots),
        totals(|r| r.missed_ack_interrupts),
    );
    let _ = writeln!(
        json,
        "  \"ttr\": {{\"episodes\": {}, \"mean_micros\": {mean_ttr}, \"p50_micros\": {}, \"p95_micros\": {}}},",
        all_ttr.len(),
        percentile(&all_ttr, 0.50),
        percentile(&all_ttr, 0.95),
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let ttrs = r
            .ttr_micros
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"restarts\": {}, \"escalations\": {}, \"reconcile_repairs\": {}, \"policy_restarts\": {}, \"core_reboots\": {}, \"missed_ack_interrupts\": {}, \"ttr_micros\": [{ttrs}], \"converged\": {}, \"violation\": {}}}{comma}",
            r.seed,
            r.restarts,
            r.escalations,
            r.reconcile_repairs,
            r.policy_restarts,
            r.core_reboots,
            r.missed_ack_interrupts,
            r.converged,
            r.violation,
        );
    }
    json.push_str("  ]\n}\n");

    let results_dir = std::path::Path::new("results");
    let out_dir = if results_dir.is_dir() {
        results_dir
    } else {
        std::path::Path::new(".")
    };

    // One supervised kill-and-corrupt run with a core crash on top
    // leaves the post-mortem artifact behind: the flight recorder dumps
    // whenever a run sees a core crash, so CI ships a black box
    // alongside the numbers.
    let dump = out_dir.join("flight_recorder.txt");
    let mut crash = Scenario::random_supervision(9_999, 3, Duration::from_secs(secs), ops);
    crash.ops.push(ScriptedOp {
        at: Duration::from_secs(2),
        op: ChaosOp::CoreCrash {
            down_for: Duration::from_secs(1),
        },
    });
    let crash_report = run_with_options(
        &crash.sorted(),
        RunOptions {
            health: Some(HealthOptions {
                dump_path: Some(dump.clone()),
                ..HealthOptions::default()
            }),
            supervision: Some(SupervisionOptions::default()),
            ..RunOptions::default()
        },
    );
    let dumped = crash_report
        .health
        .as_ref()
        .and_then(|h| h.dumped_to.as_ref())
        .is_some();
    eprintln!(
        "flight recorder dump: {} (written: {dumped})",
        dump.display()
    );

    let target = out_dir.join("BENCH_supervision.json");
    std::fs::write(&target, &json).expect("write BENCH_supervision.json");
    eprintln!(
        "wrote {} ({} seeds, {} episodes, mean TTR {mean_ttr}µs, {violations} violations, {unconverged} unconverged)",
        target.display(),
        results.len(),
        all_ttr.len(),
    );
    // The missed-ack interrupt hook exists to keep detection ahead of
    // the sampling cadence: a soak whose mean time-to-repair drifts to
    // a virtual second or more means the hook stopped waking the
    // monitor and repairs fell back to polling.
    let ttr_ok = all_ttr.is_empty() || mean_ttr < 1_000_000;
    if !ttr_ok {
        eprintln!("FAIL: mean TTR {mean_ttr}µs breached the 1s budget");
    }
    if violations > 0 || unconverged > 0 || !ttr_ok {
        std::process::exit(1);
    }
}
