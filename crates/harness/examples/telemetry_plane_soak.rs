//! Telemetry-plane soak: run seeded supervisor-death-plus-partition
//! schedules twice per seed — once without the telemetry plane, once
//! with it — and prove the plane is an observer, not a participant:
//!
//! * **overhead**: wall-clock with the plane stays within 1.10× of the
//!   run without it;
//! * **monotonicity**: no ward-rolled counter ever moves backwards;
//! * **completeness**: every supervision episode stitches into a full
//!   five-leg journey (lease-lapse → claim → adopt → wire-repair →
//!   remote-restart), and every export folds exactly once.
//!
//! ```bash
//! cargo run --release -p smc-harness --example telemetry_plane_soak -- [seeds] [secs]
//! ```
//!
//! Writes `results/BENCH_telemetry_plane.json` and leaves the first
//! seed's stitched journey behind as `telemetry_journey_sample.txt`
//! (the artifact a post-mortem would start from). Exits non-zero when
//! any gate fails, so the soak doubles as a CI gate.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use smc_harness::{run_peer_with_options, ChaosOp, PeerOptions, Scenario, ScriptedOp};

const JOURNEY: [&str; 5] = [
    "lease-lapse",
    "claim",
    "adopt",
    "wire-repair",
    "remote-restart",
];

struct SeedResult {
    seed: u64,
    baseline_micros: u64,
    plane_micros: u64,
    exports_sent: u64,
    exports_applied: u64,
    duplicates: u64,
    backwards: u64,
    lag_p50_micros: u64,
    lag_p95_micros: u64,
    episodes: u64,
    complete: u64,
    slo_alerts: u64,
    violation: bool,
}

fn scenario_for(seed: u64, secs: u64) -> Scenario {
    let mut scenario = Scenario::quiet(seed, 2, Duration::from_secs(secs));
    scenario.ops.push(ScriptedOp {
        at: Duration::from_secs(1),
        op: ChaosOp::KillSupervisor { cell: 0 },
    });
    scenario.ops.push(ScriptedOp {
        at: Duration::from_millis(1_200),
        op: ChaosOp::PartitionCell {
            cell: 0,
            duration: Duration::from_secs(2),
        },
    });
    scenario.sorted()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: u64| -> u64 {
        args.next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(default)
    };
    let seeds = next(24);
    let secs = next(12);

    let mut results: Vec<SeedResult> = Vec::new();
    let mut violations = 0usize;
    let mut journey_sample = String::new();

    for seed in 11_000..11_000 + seeds {
        let scenario = scenario_for(seed, secs);

        let started = Instant::now();
        let baseline = run_peer_with_options(&scenario, PeerOptions::default());
        let baseline_micros = started.elapsed().as_micros() as u64;

        let started = Instant::now();
        let report = run_peer_with_options(
            &scenario,
            PeerOptions {
                telemetry: Some(Default::default()),
                ..PeerOptions::default()
            },
        );
        let plane_micros = started.elapsed().as_micros() as u64;

        let violation = baseline.oracle.violation().is_some()
            || report.oracle.violation().is_some()
            || !report.converged()
            || !report.all_delivered();
        if violation {
            violations += 1;
        }
        let tel = report.telemetry.as_ref().expect("telemetry plane was on");
        let complete = tel
            .episodes
            .iter()
            .filter(|&&(_, trace)| tel.journey_complete(trace, &JOURNEY))
            .count() as u64;
        if journey_sample.is_empty() {
            if let Some(&(target, trace)) = tel.episodes.first() {
                if let Some(journey) = tel.ward.stitched(trace) {
                    let _ = writeln!(
                        journey_sample,
                        "seed {seed}: supervision episode over cell member {target}\n{journey}"
                    );
                }
            }
        }
        let result = SeedResult {
            seed,
            baseline_micros,
            plane_micros,
            exports_sent: tel.exports_sent,
            exports_applied: tel.exports_applied,
            duplicates: tel.duplicates,
            backwards: tel.backwards,
            lag_p50_micros: tel.lag_p50_micros,
            lag_p95_micros: tel.lag_p95_micros,
            episodes: tel.episodes.len() as u64,
            complete,
            slo_alerts: tel.slo_alerts,
            violation,
        };
        eprintln!(
            "seed {seed}: base={}ms plane={}ms exports={}/{} episodes={} complete={} backwards={} lag p95={}µs",
            result.baseline_micros / 1_000,
            result.plane_micros / 1_000,
            result.exports_applied,
            result.exports_sent,
            result.episodes,
            result.complete,
            result.backwards,
            result.lag_p95_micros,
        );
        results.push(result);
    }

    let totals = |f: fn(&SeedResult) -> u64| results.iter().map(f).sum::<u64>();
    let baseline_total = totals(|r| r.baseline_micros).max(1);
    let plane_total = totals(|r| r.plane_micros);
    // Every seed runs the same schedule shape, so the fastest run of
    // each variant is the least-noise estimate of its true cost —
    // scheduler hiccups only ever inflate wall time, never deflate it.
    let baseline_best = results
        .iter()
        .map(|r| r.baseline_micros)
        .min()
        .unwrap_or(1)
        .max(1);
    let plane_best = results.iter().map(|r| r.plane_micros).min().unwrap_or(0);
    let overhead = plane_best as f64 / baseline_best as f64;
    let episodes_total = totals(|r| r.episodes);
    let complete_total = totals(|r| r.complete);
    let completeness = if episodes_total == 0 {
        0.0
    } else {
        complete_total as f64 / episodes_total as f64
    };
    let backwards_total = totals(|r| r.backwards);
    let unfolded = totals(|r| r.exports_sent) - totals(|r| r.exports_applied);
    let lag_p95_max = results.iter().map(|r| r.lag_p95_micros).max().unwrap_or(0);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"telemetry_plane_soak\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"virtual_secs\": {secs}, \"nodes_per_cell\": 2, \"cells\": 2, \"export_interval_micros\": 400000}},"
    );
    let _ = writeln!(json, "  \"overhead_ratio\": {overhead:.4},");
    let _ = writeln!(
        json,
        "  \"wall_micros\": {{\"baseline_total\": {baseline_total}, \"with_plane_total\": {plane_total}, \"baseline_best\": {baseline_best}, \"with_plane_best\": {plane_best}}},"
    );
    let _ = writeln!(
        json,
        "  \"exports\": {{\"sent\": {}, \"applied\": {}, \"duplicates\": {}, \"unfolded\": {unfolded}}},",
        totals(|r| r.exports_sent),
        totals(|r| r.exports_applied),
        totals(|r| r.duplicates),
    );
    let _ = writeln!(json, "  \"backwards_counters\": {backwards_total},");
    let _ = writeln!(
        json,
        "  \"journeys\": {{\"episodes\": {episodes_total}, \"complete\": {complete_total}, \"completeness\": {completeness:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"lag_micros\": {{\"p50_max\": {}, \"p95_max\": {lag_p95_max}}},",
        results.iter().map(|r| r.lag_p50_micros).max().unwrap_or(0),
    );
    let _ = writeln!(json, "  \"slo_alerts\": {},", totals(|r| r.slo_alerts));
    let _ = writeln!(json, "  \"violations\": {violations},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"baseline_micros\": {}, \"plane_micros\": {}, \"exports_sent\": {}, \"exports_applied\": {}, \"duplicates\": {}, \"backwards\": {}, \"lag_p50_micros\": {}, \"lag_p95_micros\": {}, \"episodes\": {}, \"complete\": {}, \"slo_alerts\": {}, \"violation\": {}}}{comma}",
            r.seed,
            r.baseline_micros,
            r.plane_micros,
            r.exports_sent,
            r.exports_applied,
            r.duplicates,
            r.backwards,
            r.lag_p50_micros,
            r.lag_p95_micros,
            r.episodes,
            r.complete,
            r.slo_alerts,
            r.violation,
        );
    }
    json.push_str("  ]\n}\n");

    let results_dir = std::path::Path::new("results");
    let out_dir = if results_dir.is_dir() {
        results_dir
    } else {
        std::path::Path::new(".")
    };
    let target = out_dir.join("BENCH_telemetry_plane.json");
    std::fs::write(&target, &json).expect("write BENCH_telemetry_plane.json");
    let sample = out_dir.join("telemetry_journey_sample.txt");
    std::fs::write(&sample, &journey_sample).expect("write telemetry_journey_sample.txt");
    eprintln!(
        "wrote {} (overhead {overhead:.3}x, completeness {completeness:.3}, {backwards_total} backwards, {violations} violations)",
        target.display()
    );

    let overhead_ok = overhead <= 1.10;
    let complete_ok = episodes_total > 0 && complete_total == episodes_total;
    let folded_ok = unfolded == 0 && totals(|r| r.duplicates) == 0;
    if !overhead_ok {
        eprintln!("GATE FAILED: overhead {overhead:.3}x > 1.10x");
    }
    if backwards_total > 0 {
        eprintln!("GATE FAILED: {backwards_total} ward counters moved backwards");
    }
    if !complete_ok {
        eprintln!("GATE FAILED: {complete_total}/{episodes_total} journeys complete");
    }
    if !folded_ok {
        eprintln!("GATE FAILED: exports lost or replayed");
    }
    if violations > 0 || !overhead_ok || backwards_total > 0 || !complete_ok || !folded_ok {
        std::process::exit(1);
    }
}
