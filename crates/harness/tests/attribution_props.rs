//! Property tests for the latency-attribution model: queue-wait plus
//! service time must account for *every* microsecond of a journey, on
//! any randomized chaos schedule. If a hop classifies into neither kind
//! (or into both) the books stop balancing, and this test names the
//! seed that caught it.

use std::time::Duration;

use proptest::{proptest, ProptestConfig};
use smc_harness::{run_with_options, RunOptions, Scenario};
use smc_telemetry::StageKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across randomized fault schedules, every complete journey's
    /// wait + service attribution sums exactly to its end-to-end total,
    /// and each leg lands in exactly one stage kind.
    #[test]
    fn wait_plus_service_sums_to_journey_total(
        seed in 0u64..1_000_000,
        nodes in 1usize..4,
        ops in 0usize..6,
    ) {
        let scenario = Scenario::random(seed, nodes, Duration::from_secs(3), ops);
        let report = run_with_options(
            &scenario,
            RunOptions {
                trace: true,
                probes: true,
                ..RunOptions::default()
            },
        );
        let mut journeys = 0u64;
        for &dev in &report.device_ids {
            for seq in 1..=report.oracle.published(dev) {
                let Some(journey) = report.journey(dev, seq) else { continue };
                if journey.is_empty() || journey.truncated {
                    continue;
                }
                journeys += 1;
                let legs = journey.attribution();
                let wait: u64 = legs
                    .iter()
                    .filter(|l| l.kind == StageKind::Wait)
                    .map(|l| l.delta_micros)
                    .sum();
                let service: u64 = legs
                    .iter()
                    .filter(|l| l.kind == StageKind::Service)
                    .map(|l| l.delta_micros)
                    .sum();
                assert_eq!(
                    wait + service,
                    journey.total_micros(),
                    "seed {seed}: journey {} leaks time — wait {wait} + service {service} \
                     != total {} over legs {legs:#?}",
                    journey.trace,
                    journey.total_micros()
                );
                assert_eq!(wait, journey.wait_micros(), "seed {seed}: wait accessor drifted");
                assert_eq!(
                    service,
                    journey.service_micros(),
                    "seed {seed}: service accessor drifted"
                );
            }
        }
        // Quiet schedules still publish on the device cadence, so the
        // property never passes vacuously.
        assert!(journeys > 0, "seed {seed}: no complete journeys to check");
    }
}
