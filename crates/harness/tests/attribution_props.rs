//! Property tests for the latency-attribution model: queue-wait plus
//! service time must account for *every* microsecond of a journey, on
//! any randomized chaos schedule. If a hop classifies into neither kind
//! (or into both) the books stop balancing, and this test names the
//! seed that caught it.

use std::sync::Arc;
use std::time::Duration;

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use smc_core::{BatchPublisher, DeliveryFrame, EventBus, EventSink};
use smc_harness::{run_with_options, RunOptions, Scenario};
use smc_match::EngineKind;
use smc_telemetry::{Hop, StageKind, TraceSink, Tracer};
use smc_types::{Event, Filter, ManualClock, Result, ServiceId, SharedClock, TraceId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across randomized fault schedules, every complete journey's
    /// wait + service attribution sums exactly to its end-to-end total,
    /// and each leg lands in exactly one stage kind.
    #[test]
    fn wait_plus_service_sums_to_journey_total(
        seed in 0u64..1_000_000,
        nodes in 1usize..4,
        ops in 0usize..6,
    ) {
        let scenario = Scenario::random(seed, nodes, Duration::from_secs(3), ops);
        let report = run_with_options(
            &scenario,
            RunOptions {
                trace: true,
                probes: true,
                ..RunOptions::default()
            },
        );
        let mut journeys = 0u64;
        for &dev in &report.device_ids {
            for seq in 1..=report.oracle.published(dev) {
                let Some(journey) = report.journey(dev, seq) else { continue };
                if journey.is_empty() || journey.truncated {
                    continue;
                }
                journeys += 1;
                let legs = journey.attribution();
                let wait: u64 = legs
                    .iter()
                    .filter(|l| l.kind == StageKind::Wait)
                    .map(|l| l.delta_micros)
                    .sum();
                let service: u64 = legs
                    .iter()
                    .filter(|l| l.kind == StageKind::Service)
                    .map(|l| l.delta_micros)
                    .sum();
                assert_eq!(
                    wait + service,
                    journey.total_micros(),
                    "seed {seed}: journey {} leaks time — wait {wait} + service {service} \
                     != total {} over legs {legs:#?}",
                    journey.trace,
                    journey.total_micros()
                );
                assert_eq!(wait, journey.wait_micros(), "seed {seed}: wait accessor drifted");
                assert_eq!(
                    service,
                    journey.service_micros(),
                    "seed {seed}: service accessor drifted"
                );
            }
        }
        // Quiet schedules still publish on the device cadence, so the
        // property never passes vacuously.
        assert!(journeys > 0, "seed {seed}: no complete journeys to check");
    }

    /// Batched publishes keep the books balanced too: the linger an
    /// event spends in the publisher's coalescing buffer lands in the
    /// `batch-queue` stage as *wait* — never inflating a service stage
    /// — and wait + service still sums to the journey total exactly.
    #[test]
    fn batched_publish_attributes_linger_as_wait(
        events in 1usize..24,
        max_batch in 1usize..8,
        gaps in proptest::collection::vec(0u64..200, 24),
    ) {
        struct TracingSink {
            tracer: Tracer,
        }
        impl EventSink for TracingSink {
            fn deliver(&self, event: &Event) -> Result<()> {
                self.tracer.record(
                    TraceId::for_event(event.publisher(), event.seq()),
                    Hop::Delivered,
                );
                Ok(())
            }
            fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
                self.tracer.record(frame.trace(), Hop::Delivered);
                Ok(())
            }
        }

        let ring = Arc::new(TraceSink::with_capacity(1024));
        let manual = Arc::new(ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let tracer = Tracer::new(Arc::clone(&ring), Arc::clone(&clock));
        let bus = Arc::new(EventBus::new(EngineKind::FastForward));
        bus.set_tracer(tracer.clone());
        bus.subscribe(
            ServiceId::from_raw(1),
            Filter::any(),
            Arc::new(TracingSink { tracer }) as Arc<dyn EventSink>,
        )
        .expect("subscribe");

        let publisher = ServiceId::from_raw(0xAB);
        let mut batcher = BatchPublisher::new(Arc::clone(&bus), clock, max_batch, u64::MAX);
        for seq in 1..=events as u64 {
            manual.advance_micros(gaps[(seq as usize - 1) % gaps.len()]);
            batcher
                .push(
                    Event::builder("r")
                        .publisher(publisher)
                        .seq(seq)
                        .build(),
                )
                .expect("push");
        }
        batcher.flush().expect("flush");

        for seq in 1..=events as u64 {
            let journey = ring.journey(TraceId::for_event(publisher, seq));
            prop_assert!(!journey.is_empty(), "event {seq} left no journey");
            let legs = journey.attribution();
            let batch_legs: Vec<_> = legs
                .iter()
                .filter(|l| l.stage == "batch-queue")
                .collect();
            prop_assert_eq!(
                batch_legs.len(),
                1,
                "event {} must cross the batch queue exactly once",
                seq
            );
            prop_assert_eq!(
                batch_legs[0].kind,
                StageKind::Wait,
                "linger must be attributed as wait"
            );
            let wait: u64 = legs
                .iter()
                .filter(|l| l.kind == StageKind::Wait)
                .map(|l| l.delta_micros)
                .sum();
            let service: u64 = legs
                .iter()
                .filter(|l| l.kind == StageKind::Service)
                .map(|l| l.delta_micros)
                .sum();
            prop_assert_eq!(
                wait + service,
                journey.total_micros(),
                "event {} leaks time over legs {:#?}",
                seq,
                legs
            );
        }
    }
}
