//! Core-crash chaos runs: the write-ahead log must carry exactly-once
//! and FIFO across a whole-core restart — and the oracle must be able to
//! prove it's the log doing the work, by catching the violation when the
//! log is replaced with one that retains nothing.

use std::sync::Arc;
use std::time::Duration;

use smc_harness::{
    default_discovery, run, run_with, run_with_backend, ChaosOp, Scenario, ScriptedOp,
};
use smc_transport::ReliableConfig;
use smc_wal::NoopBackend;

/// `window: 1` keeps exactly one message in flight per stream. That
/// makes the crash band sharp (the in-flight frame is the only candidate
/// for delivered-but-unacked) and — crucially — lets an amnesiac
/// receiver's mid-stream adoption accept a device's rejoin request,
/// whose stream is only ever a couple of sequence numbers long. With the
/// default window of 64 an amnesiac core simply wedges every low-seq
/// stream, which is a quieter disaster than the duplicate this test
/// exists to surface.
fn teeth_reliable() -> ReliableConfig {
    ReliableConfig {
        window: 1,
        ..ReliableConfig::default()
    }
}

/// The teeth scenario: two devices publish every 100ms for 45 virtual
/// seconds. A 55% loss burst on both links (34s–35.2s) keeps eating acks
/// until each device is likely holding an in-flight frame the sink has
/// *delivered* but not successfully acknowledged — then the core crashes
/// at 35s holding those cursors and recovers five seconds later, while
/// the devices are still retransmitting. Only the restored cursors stand
/// between the retransmissions and a duplicate delivery.
fn core_crash_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::quiet(seed, 2, Duration::from_secs(45));
    for node in 0..2 {
        s.ops.push(ScriptedOp {
            at: Duration::from_millis(34_000),
            op: ChaosOp::LossBurst {
                node,
                loss: 0.55,
                duration: Duration::from_millis(1_200),
            },
        });
    }
    s.ops.push(ScriptedOp {
        at: Duration::from_millis(35_000),
        op: ChaosOp::CoreCrash {
            down_for: Duration::from_secs(5),
        },
    });
    s.sorted()
}

/// Seed pinned by `scan_for_teeth_seed` below: with a `NoopBackend` this
/// schedule redelivers a pre-crash message after the devices rejoin
/// (the oracle flags it), while the real WAL run is clean.
const TEETH_SEED: u64 = 1;

#[test]
fn core_crash_recovers_exactly_once_from_the_wal() {
    let scenario = core_crash_scenario(TEETH_SEED);
    let report = run_with(&scenario, teeth_reliable(), default_discovery());
    report.assert_clean();
    assert_eq!(report.core_recoveries, 1, "the core restarted once");
    assert!(report.retransmits > 0, "the outage forced retransmissions");
    assert!(report.total_delivered() > 0);
}

#[test]
fn core_crash_runs_are_deterministic() {
    let a = run_with(
        &core_crash_scenario(TEETH_SEED),
        teeth_reliable(),
        default_discovery(),
    );
    let b = run_with(
        &core_crash_scenario(TEETH_SEED),
        teeth_reliable(),
        default_discovery(),
    );
    assert_eq!(
        a.trace_text(),
        b.trace_text(),
        "same seed, same trace, byte for byte"
    );
}

#[test]
fn noop_backend_loses_the_guarantee() {
    // Identical scenario, but the "log" retains nothing: recovery comes
    // back with no cursors and no members, and a retransmitted in-flight
    // frame the old incarnation already delivered is delivered again —
    // the violation the WAL exists to prevent.
    let scenario = core_crash_scenario(TEETH_SEED);
    let report = run_with_backend(
        &scenario,
        teeth_reliable(),
        default_discovery(),
        Arc::new(NoopBackend),
    );
    let violation = report
        .oracle
        .violation()
        .expect("amnesiac recovery must break the oracle");
    assert_eq!(violation.seed, TEETH_SEED);
}

#[test]
fn random_core_crash_family_stays_safe() {
    // Fixed-seed sweep over randomized schedules; the op family includes
    // CoreCrash, so several of these exercise recovery mid-chaos.
    let mut crashes = 0u64;
    for seed in 3000..3010u64 {
        let scenario = Scenario::random(seed, 3, Duration::from_secs(8), 8);
        let report = run(&scenario);
        report.assert_clean();
        crashes += report.core_recoveries;
    }
    assert!(
        crashes > 0,
        "the sweep exercised at least one core recovery"
    );
}

/// One-off helper used to pin `TEETH_SEED`: scans seeds for one where the
/// NoopBackend run violates the oracle *and* the WAL run stays clean.
/// Kept (ignored) so the seed can be re-pinned if timings change.
#[test]
#[ignore = "seed-pinning helper, not a regression test"]
fn scan_for_teeth_seed() {
    for seed in 1..=40u64 {
        let scenario = core_crash_scenario(seed);
        let noop = run_with_backend(
            &scenario,
            teeth_reliable(),
            default_discovery(),
            Arc::new(NoopBackend),
        );
        let wal = run_with(&scenario, teeth_reliable(), default_discovery());
        let wal_clean = wal.oracle.violation().is_none();
        println!(
            "seed {seed}: noop violation={} wal clean={}",
            noop.oracle.violation().is_some(),
            wal_clean
        );
        if noop.oracle.violation().is_some() && wal_clean {
            println!("  -> candidate TEETH_SEED = {seed}");
        }
    }
}
