//! Self-stabilizing supervision teeth: kill and corrupt the cell's
//! components mid-run and prove the detect → repair loop closes — the
//! supervisor restarts dead components from the write-ahead log, wedged
//! components escalate to a full core reboot, anti-entropy reconciles
//! corrupted views against durable truth, and the delivery oracle
//! certifies that none of it ever costs exactly-once or FIFO. The
//! baseline runs (supervision off) prove the faults have teeth: without
//! a supervisor the damage is permanent.

use std::time::Duration;

use smc_harness::{
    run_with_options, ChaosOp, CoreComponent, CorruptTarget, RunOptions, Scenario, ScriptedOp,
    SupervisionOptions,
};

fn kill_at(secs: u64, component: CoreComponent, wedged: bool) -> ScriptedOp {
    ScriptedOp {
        at: Duration::from_secs(secs),
        op: ChaosOp::KillComponent { component, wedged },
    }
}

fn corrupt_at(secs: u64, target: CorruptTarget) -> ScriptedOp {
    ScriptedOp {
        at: Duration::from_secs(secs),
        op: ChaosOp::CorruptState { target },
    }
}

fn supervised() -> RunOptions {
    RunOptions {
        supervision: Some(SupervisionOptions::default()),
        ..RunOptions::default()
    }
}

#[test]
fn killed_sink_stays_down_without_supervision() {
    // The teeth baseline: nobody repairs anything, so a killed sink
    // means every later publish retransmits into a void forever.
    let mut scenario = Scenario::quiet(61, 2, Duration::from_secs(12));
    scenario.ops.push(kill_at(5, CoreComponent::Sink, false));
    let report = run_with_options(&scenario.sorted(), RunOptions::default());
    report.assert_clean();
    assert!(
        !report.all_delivered(),
        "an unsupervised sink kill must strand post-kill publishes"
    );
    assert!(report.supervision.is_none());
}

#[test]
fn killed_sink_is_repaired_with_exactly_once_across_the_outage() {
    // Same scenario, supervision on: the component-down detector trips,
    // the supervisor restarts the sink from the journaled cursors, and
    // the retransmissions that piled up during the outage dedup cleanly
    // — every message delivered exactly once.
    let mut scenario = Scenario::quiet(61, 2, Duration::from_secs(12));
    scenario.ops.push(kill_at(5, CoreComponent::Sink, false));
    let report = run_with_options(&scenario.sorted(), supervised());
    report.assert_clean();
    let sup = report.supervision.as_ref().expect("supervision was on");
    assert!(
        sup.converged(),
        "open episodes: {:?}",
        sup.report.unresolved
    );
    assert!(sup.report.restarts >= 1, "the supervisor issued a restart");
    assert_eq!(sup.report.escalations, 0, "no escalation for a clean kill");
    assert!(
        !sup.report.ttr_micros.is_empty(),
        "the episode closed with a time-to-repair"
    );
    assert!(
        sup.policy_restarts >= 1,
        "the built-in restart obligation saw the failure"
    );
    assert!(
        report.all_delivered(),
        "published {} delivered {}",
        report.total_published(),
        report.total_delivered()
    );
}

#[test]
fn killed_discovery_is_restarted_from_durable_truth() {
    let mut scenario = Scenario::quiet(62, 3, Duration::from_secs(12));
    scenario
        .ops
        .push(kill_at(5, CoreComponent::Discovery, false));
    let report = run_with_options(&scenario.sorted(), supervised());
    report.assert_clean();
    let sup = report.supervision.as_ref().expect("supervision was on");
    assert!(
        sup.converged(),
        "open episodes: {:?}",
        sup.report.unresolved
    );
    assert!(sup.report.restarts >= 1);
    assert!(
        sup.repairs.iter().any(|(_, r)| r.contains("discovery")),
        "repair log names discovery: {:?}",
        sup.repairs
    );
    // The restarted table was rebuilt from the WAL, not re-learned:
    // nobody had to re-join, so each device joined exactly once.
    for &id in &report.device_ids {
        assert_eq!(report.times_joined(id), 1, "{id} never re-joined");
    }
    assert_eq!(report.core_recoveries, 0, "no reboot for a clean kill");
}

#[test]
fn wedged_component_escalates_to_a_core_reboot() {
    // A wedged sink refuses its restarts; after the budget is spent the
    // supervisor walks up the dependency graph and reboots the core —
    // which clears the wedge, because a reboot rebuilds everything.
    let mut scenario = Scenario::quiet(63, 2, Duration::from_secs(14));
    scenario.ops.push(kill_at(4, CoreComponent::Sink, true));
    let report = run_with_options(&scenario.sorted(), supervised());
    report.assert_clean();
    let sup = report.supervision.as_ref().expect("supervision was on");
    assert!(
        sup.converged(),
        "open episodes: {:?}",
        sup.report.unresolved
    );
    assert!(
        sup.report.escalations >= 1,
        "restart exhaustion escalated: {:?}",
        sup.report.log
    );
    assert!(
        report.core_recoveries >= 1,
        "escalation rebooted the core from the WAL"
    );
    assert!(
        sup.repairs.iter().any(|(_, r)| r.contains("wedged")),
        "the refused restarts are on record: {:?}",
        sup.repairs
    );
}

#[test]
fn corrupted_views_are_healed_by_reconcile() {
    // No detector fires for silent state corruption — only the periodic
    // anti-entropy diff against the folded log notices. Drop a live
    // member from the sink's view, plant a ghost in it, and vanish a
    // member from the discovery table; every divergence must be repaired
    // and the repaired member's later publishes delivered.
    let mut scenario = Scenario::quiet(64, 3, Duration::from_secs(10));
    scenario
        .ops
        .push(corrupt_at(4, CorruptTarget::MembershipView { node: 0 }));
    scenario.ops.push(corrupt_at(5, CorruptTarget::GhostMember));
    scenario
        .ops
        .push(corrupt_at(6, CorruptTarget::DiscoveryMember { node: 1 }));
    let report = run_with_options(&scenario.sorted(), supervised());
    report.assert_clean();
    let sup = report.supervision.as_ref().expect("supervision was on");
    assert!(sup.reconciles > 0, "reconcile passes ran on cadence");
    let fixes: Vec<&str> = sup
        .reconcile_fixes
        .iter()
        .map(|(_, f)| f.as_str())
        .collect();
    assert!(
        fixes.iter().any(|f| f.contains("sink view re-admitted")),
        "dropped member re-admitted: {fixes:?}"
    );
    assert!(
        fixes.iter().any(|f| f.contains("sink view dropped ghost")),
        "ghost evicted: {fixes:?}"
    );
    assert!(
        fixes.iter().any(|f| f.contains("discovery re-admitted")),
        "discovery table repaired: {fixes:?}"
    );
    assert_eq!(
        sup.report.reconcile_repairs,
        sup.reconcile_fixes.len() as u64,
        "the supervisor's report books every fix"
    );
    // The corrupted window filtered node 0's traffic (a legal gap); once
    // re-admitted, its stream flows again.
    let victim = report.device_ids[0];
    assert!(
        report.oracle.delivered(victim) > 0,
        "the re-admitted member's publishes are served"
    );
}

#[test]
fn seeded_kill_and_corrupt_sweep_always_reconverges() {
    // The headline guarantee: across a family of randomized
    // kill-and-corrupt schedules, every failure episode is repaired by
    // run end and the oracle never sees a violation.
    let mut repairs = 0u64;
    let mut fixes = 0u64;
    for seed in 9100..9110u64 {
        let scenario = Scenario::random_supervision(seed, 3, Duration::from_secs(20), 5);
        let report = run_with_options(&scenario, supervised());
        report.assert_clean();
        let sup = report.supervision.as_ref().expect("supervision was on");
        assert!(
            sup.converged(),
            "seed {seed} left open episodes: {:?}",
            sup.report.unresolved
        );
        repairs += sup.report.restarts + sup.report.escalations;
        fixes += sup.report.reconcile_repairs;
    }
    assert!(repairs > 0, "the sweep exercised the repair path");
    assert!(fixes > 0, "the sweep exercised the reconcile path");
}

#[test]
fn supervised_runs_are_deterministic() {
    let scenario = Scenario::random_supervision(9104, 3, Duration::from_secs(20), 5);
    let a = run_with_options(&scenario, supervised());
    let b = run_with_options(&scenario, supervised());
    assert_eq!(
        a.trace_text(),
        b.trace_text(),
        "same seed, same repairs, same trace — byte for byte"
    );
}
