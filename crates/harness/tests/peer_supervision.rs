//! Peer-supervision teeth: kill the supervisor itself — the one
//! component the single-cell detect → repair loop can never fix — and
//! prove a sibling cell notices the lapsed lease over the wire, adopts
//! the silent cell, drives repair remotely through the policy layer
//! (including reviving the dead supervisor plane), orders anti-entropy
//! before the ward may compact, and releases adoption once the ward
//! heartbeats again. The baseline run in the single-cell world proves
//! the fault has teeth: without a sibling, a dead supervisor plus a
//! wedged component is a permanent outage.

use std::time::Duration;

use smc_harness::{
    run_peer, run_with_options, ChaosOp, CoreComponent, RunOptions, Scenario, ScriptedOp,
    SupervisionOptions,
};

fn kill_sink_wedged_at(secs: u64) -> ScriptedOp {
    ScriptedOp {
        at: Duration::from_secs(secs),
        op: ChaosOp::KillComponent {
            component: CoreComponent::Sink,
            wedged: true,
        },
    }
}

fn kill_supervisor_at(secs: u64, cell: usize) -> ScriptedOp {
    ScriptedOp {
        at: Duration::from_secs(secs),
        op: ChaosOp::KillSupervisor { cell },
    }
}

#[test]
fn dead_supervisor_strands_the_outage_without_a_sibling() {
    // The teeth baseline, in the single-cell world: the sink wedges,
    // the supervisor starts the repair episode — and then dies. Nobody
    // is left to retry or escalate, so the outage is permanent.
    let mut scenario = Scenario::quiet(71, 2, Duration::from_secs(14));
    scenario.ops.push(kill_sink_wedged_at(4));
    scenario.ops.push(kill_supervisor_at(5, 0));
    let report = run_with_options(
        &scenario.sorted(),
        RunOptions {
            supervision: Some(SupervisionOptions::default()),
            ..RunOptions::default()
        },
    );
    report.assert_clean();
    let sup = report.supervision.as_ref().expect("supervision was on");
    assert!(!sup.supervisor_alive, "the supervisor stayed dead");
    assert!(
        !report.all_delivered(),
        "a dead supervisor plus a wedged sink must strand publishes"
    );
    assert_eq!(
        report.core_recoveries, 0,
        "nobody was left to escalate to a reboot"
    );
}

#[test]
fn sibling_adopts_a_dead_supervisor_mid_outage_and_completes_the_repair() {
    // The headline: same wedged sink, same supervisor death mid-episode
    // — but now a sibling cell holds a lease over the silent cell. It
    // claims, adopts, ships repairs over the journaled supervision
    // channel (the wedged sink's refusals and the supervisor revival
    // both on record), and the outage closes with exactly-once intact.
    let mut scenario = Scenario::quiet(71, 2, Duration::from_secs(16));
    scenario.ops.push(kill_sink_wedged_at(4));
    scenario.ops.push(kill_supervisor_at(5, 0));
    let report = run_peer(&scenario.sorted());
    report.assert_clean();
    let ward = report.cell(1);
    let adopter = report.cell(2);
    assert!(
        adopter.peer.adoptions >= 1,
        "cell 2 adopted its silent sibling: {:?}",
        adopter.peer.log
    );
    assert!(
        !adopter.remote_commands.is_empty(),
        "the adopter shipped repair commands over the wire"
    );
    assert!(
        ward.supervisor_revivals >= 1 && ward.supervisor_alive,
        "the dead supervisor plane was revived remotely"
    );
    assert!(
        ward.remote_repairs
            .iter()
            .any(|(_, r)| r.contains("supervisor: revived")),
        "the revival is a wire-commanded repair: {:?}",
        ward.remote_repairs
    );
    assert!(
        ward.core_recoveries >= 1,
        "the wedged sink ended in a core reboot"
    );
    assert!(
        adopter.peer.releases >= 1 && adopter.adopted_at_end.is_empty(),
        "adoption was released once the ward heartbeated again"
    );
    assert!(
        report.converged(),
        "both cells ended healthy: {:?} / {:?}",
        ward.report.unresolved,
        adopter.report.unresolved
    );
    assert!(
        report.all_delivered(),
        "published {} delivered {}",
        report.total_published(),
        report.total_delivered()
    );
}

#[test]
fn peer_runs_are_deterministic() {
    let mut scenario = Scenario::quiet(72, 2, Duration::from_secs(16));
    scenario.ops.push(kill_sink_wedged_at(4));
    scenario.ops.push(kill_supervisor_at(5, 0));
    let scenario = scenario.sorted();
    let a = run_peer(&scenario);
    let b = run_peer(&scenario);
    assert_eq!(
        a.trace_text(),
        b.trace_text(),
        "same seed, same adoption, same repairs — byte for byte"
    );
}

#[test]
fn outage_after_supervisor_death_is_detected_and_repaired_remotely() {
    // The supervisor dies *before* anything else breaks. The sibling
    // adopts and first revives the supervisor plane; while adopted it
    // also held the reconcile duty — the ward's checkpoints deferred
    // during the window with no local reconciler, then resumed once
    // wire-ordered anti-entropy passes re-armed the gate.
    let mut scenario = Scenario::quiet(73, 2, Duration::from_secs(14));
    scenario.ops.push(kill_supervisor_at(1, 0));
    scenario.ops.push(kill_sink_wedged_at(6));
    let report = run_peer(&scenario.sorted());
    report.assert_clean();
    let ward = report.cell(1);
    let adopter = report.cell(2);
    assert!(adopter.peer.adoptions >= 1);
    assert!(ward.supervisor_revivals >= 1);
    assert!(
        ward.reconciles >= 1,
        "anti-entropy ran on the ward (wire-ordered or post-revival)"
    );
    assert!(
        report.converged() && report.all_delivered(),
        "the late sink wedge was still repaired"
    );
}

#[test]
fn partition_triggers_false_adoption_then_clean_release() {
    // A partition makes a perfectly healthy cell look dead: its leases
    // stop arriving, the sibling claims and adopts. The remote monitor
    // then sees a healthy ward, so no repair is ever commanded — and
    // when the partition heals and leases resume, the adopter releases.
    let mut scenario = Scenario::quiet(74, 2, Duration::from_secs(12));
    scenario.ops.push(ScriptedOp {
        at: Duration::from_secs(3),
        op: ChaosOp::PartitionCell {
            cell: 0,
            duration: Duration::from_secs(2),
        },
    });
    let report = run_peer(&scenario.sorted());
    report.assert_clean();
    let adoptions: u64 = report.cells.iter().map(|c| c.peer.adoptions).sum();
    let releases: u64 = report.cells.iter().map(|c| c.peer.releases).sum();
    assert!(
        adoptions >= 1,
        "the partition looked like a death from outside"
    );
    assert!(releases >= 1, "resumed leases released the false adoption");
    for cell in &report.cells {
        assert!(
            cell.remote_repairs.is_empty(),
            "a healthy ward must never be repaired: {:?}",
            cell.remote_repairs
        );
        assert_eq!(cell.supervisor_revivals, 0);
    }
    assert!(
        report.converged() && report.all_delivered(),
        "a false adoption costs nothing"
    );
}

#[test]
fn unreconciled_cell_defers_checkpoints_until_wire_reconcile_lands() {
    // Kill the supervisor AND partition the cell: nobody can run
    // anti-entropy on it, locally or by wire. The reconcile-before-
    // checkpoint invariant must hold the line — compaction is refused
    // while the last reconcile goes stale — and resume once the
    // partition heals and the adopter's wire-ordered pass lands.
    let mut scenario = Scenario::quiet(75, 2, Duration::from_secs(14));
    scenario.ops.push(kill_supervisor_at(2, 0));
    scenario.ops.push(ScriptedOp {
        at: Duration::from_secs(2),
        op: ChaosOp::PartitionCell {
            cell: 0,
            duration: Duration::from_secs(5),
        },
    });
    let report = run_peer(&scenario.sorted());
    report.assert_clean();
    let ward = report.cell(1);
    assert!(
        ward.checkpoints_deferred >= 1,
        "an unreconciled cell must refuse to compact"
    );
    assert!(
        ward.reconciles >= 1,
        "the wire-ordered reconcile landed after the heal"
    );
    assert!(
        ward.supervisor_revivals >= 1 && report.converged() && report.all_delivered(),
        "the cell was still healed once reachable"
    );
}

#[test]
fn seeded_peer_sweep_always_reconverges() {
    // Compound schedules — component kills, supervisor deaths, cell
    // partitions, corruption — across seeds: every run must end with
    // both cells healthy, nothing still adopted, and a clean oracle.
    let mut adoptions = 0u64;
    let mut revivals = 0u64;
    for seed in 9500..9506u64 {
        let scenario = Scenario::random_peer(seed, 3, Duration::from_secs(24), 3);
        let report = run_peer(&scenario);
        report.assert_clean();
        assert!(
            report.converged(),
            "seed {seed} left a cell unconverged: {:#?}",
            report.cells
        );
        adoptions += report.cells.iter().map(|c| c.peer.adoptions).sum::<u64>();
        revivals += report
            .cells
            .iter()
            .map(|c| c.supervisor_revivals)
            .sum::<u64>();
    }
    assert!(adoptions >= 1, "the sweep exercised adoption");
    assert!(revivals >= 1, "the sweep exercised remote revival");
}
