//! End-to-end chaos-harness tests: the acceptance criteria of the
//! deterministic virtual-time harness.

use std::time::{Duration, Instant};

use smc_harness::{run, run_with, ChaosOp, Scenario, ScriptedOp, ViolationKind};
use smc_transport::ReliableConfig;

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

fn millis(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

/// Same seed, same script → byte-identical traces; different seed →
/// different trace.
#[test]
fn same_seed_gives_byte_identical_traces() {
    let scenario = Scenario::random(0xC0FFEE, 4, secs(8), 10);
    let a = run(&scenario);
    let b = run(&scenario);
    a.assert_clean();
    b.assert_clean();
    assert!(a.total_delivered() > 0, "scenario produced no traffic");
    assert_eq!(
        a.trace_text().into_bytes(),
        b.trace_text().into_bytes(),
        "same seed must replay byte-identically"
    );

    let other = Scenario::random(0xC0FFEE + 1, 4, secs(8), 10);
    let c = run(&other);
    assert_ne!(
        a.trace_text(),
        c.trace_text(),
        "different seed should diverge"
    );
}

/// 30 virtual seconds of chaos complete in under a wall-clock second.
#[test]
fn thirty_virtual_seconds_run_in_under_a_second() {
    let scenario = Scenario::random(2024, 5, secs(30), 12);
    let started = Instant::now();
    let report = run(&scenario);
    let wall = started.elapsed();
    report.assert_clean();
    assert!(report.virtual_micros >= 30_000_000);
    assert!(
        wall < Duration::from_secs(1),
        "30 virtual seconds took {wall:?} of wall time"
    );
}

/// Family 1: loss bursts. Reliable delivery rides out heavy loss — every
/// published message arrives, exactly once, in order.
#[test]
fn loss_burst_family_delivers_everything() {
    let mut scenario = Scenario::quiet(31, 3, secs(10));
    for (i, at) in [800u64, 2600, 4400, 6200].iter().enumerate() {
        scenario.ops.push(ScriptedOp {
            at: millis(*at),
            op: ChaosOp::LossBurst {
                node: i % 3,
                loss: 0.7,
                duration: millis(700),
            },
        });
    }
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.total_published() > 50);
    assert!(
        report.all_delivered(),
        "loss bursts must not lose acknowledged traffic: {}/{} delivered",
        report.total_delivered(),
        report.total_published()
    );
}

/// Family 2: partition / heal. Safety holds through partitions that
/// outlive the lease, and the partitioned member is re-admitted.
#[test]
fn partition_heal_family_stays_safe() {
    let mut scenario = Scenario::quiet(32, 3, secs(12));
    // Long partition: node 0 is purged and must rejoin after the heal.
    scenario.ops.push(ScriptedOp {
        at: millis(2000),
        op: ChaosOp::Partition {
            node: 0,
            duration: millis(3500),
        },
    });
    // Short partition: node 1 stays a member throughout.
    scenario.ops.push(ScriptedOp {
        at: millis(7000),
        op: ChaosOp::Partition {
            node: 1,
            duration: millis(400),
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    let long_gone = report.device_ids[0];
    assert!(
        report.was_purged(long_gone),
        "a 3.5s partition must purge (lease 1s + grace 1s)"
    );
    assert!(
        report.times_joined(long_gone) >= 2,
        "the purged node must be re-admitted after the heal"
    );
    let briefly_gone = report.device_ids[1];
    assert!(
        !report.was_purged(briefly_gone),
        "a 400ms partition must be masked"
    );
}

/// Family 3: crash / restart. A crashed node loses its channel state,
/// restarts with the same identity and a fresh epoch, and rejoins
/// without breaking exactly-once or FIFO at the sink.
#[test]
fn crash_restart_family_stays_safe() {
    let mut scenario = Scenario::quiet(33, 3, secs(12));
    scenario.ops.push(ScriptedOp {
        at: millis(3000),
        op: ChaosOp::Crash {
            node: 0,
            down_for: millis(2500),
        },
    });
    scenario.ops.push(ScriptedOp {
        at: millis(8000),
        op: ChaosOp::Crash {
            node: 2,
            down_for: millis(500),
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    let crashed = report.device_ids[0];
    assert!(
        report.times_joined(crashed) >= 2,
        "the crashed node must rejoin after restarting"
    );
    // The restarted node kept publishing under the same id.
    assert!(report.oracle.delivered(crashed) > 0);
}

/// Family 4: duplicate storms. The network delivers copies; the channel
/// dedups them; the oracle sees exactly-once.
#[test]
fn duplicate_storm_family_delivers_exactly_once() {
    let mut scenario = Scenario::quiet(34, 3, secs(10));
    for at in [1000u64, 3000, 5000, 7000] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at / 3000) as usize % 3,
                duplicate: 0.8,
                duration: millis(900),
            },
        });
    }
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.all_delivered());
}

/// A channel with dedup disabled breaks exactly-once / FIFO under a
/// duplicate storm — and the oracle must catch it and report the seed
/// and a trace.
#[test]
fn broken_channel_config_fails_the_oracle() {
    let mut scenario = Scenario::quiet(35, 2, secs(8));
    for at in [500u64, 1500, 2500, 3500, 4500, 5500] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at as usize / 1500) % 2,
                duplicate: 0.9,
                duration: millis(900),
            },
        });
    }
    let broken = ReliableConfig {
        dedup: false,
        ..ReliableConfig::default()
    };
    let report = run_with(&scenario.sorted(), broken, smc_harness::default_discovery());
    let violation = report
        .oracle
        .violation()
        .expect("dedup=false under a duplicate storm must violate delivery semantics");
    assert!(matches!(
        violation.kind,
        ViolationKind::DuplicateDelivery | ViolationKind::FifoViolation
    ));
    assert_eq!(violation.seed, 35);
    assert!(
        !violation.trace.is_empty(),
        "violation must carry the event trace"
    );
    let rendered = violation.to_string();
    assert!(
        rendered.contains("seed 35"),
        "report must name the seed: {rendered}"
    );
    assert!(
        rendered.contains("deliver"),
        "report must show the trace: {rendered}"
    );
}

/// Domain moves (walking out of beacon range) and link-profile changes
/// keep the safety properties intact.
#[test]
fn domain_move_and_profile_change_stay_safe() {
    let mut scenario = Scenario::quiet(36, 3, secs(10));
    scenario.ops.push(ScriptedOp {
        at: millis(1500),
        op: ChaosOp::DomainMove {
            node: 0,
            domain: 2,
            duration: millis(3000),
        },
    });
    scenario.ops.push(ScriptedOp {
        at: millis(2000),
        op: ChaosOp::LinkProfile {
            node: 1,
            profile: smc_harness::LinkProfileKind::Bluetooth,
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.total_delivered() > 0);
}
