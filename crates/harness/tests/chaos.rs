//! End-to-end chaos-harness tests: the acceptance criteria of the
//! deterministic virtual-time harness.

use std::time::{Duration, Instant};

use smc_harness::{
    run, run_with, run_with_options, ChaosOp, RunOptions, Scenario, ScriptedOp, ViolationKind,
};
use smc_telemetry::Hop;
use smc_transport::ReliableConfig;

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

fn millis(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

/// Same seed, same script → byte-identical traces; different seed →
/// different trace.
#[test]
fn same_seed_gives_byte_identical_traces() {
    let scenario = Scenario::random(0xC0FFEE, 4, secs(8), 10);
    let a = run(&scenario);
    let b = run(&scenario);
    a.assert_clean();
    b.assert_clean();
    assert!(a.total_delivered() > 0, "scenario produced no traffic");
    assert_eq!(
        a.trace_text().into_bytes(),
        b.trace_text().into_bytes(),
        "same seed must replay byte-identically"
    );

    let other = Scenario::random(0xC0FFEE + 1, 4, secs(8), 10);
    let c = run(&other);
    assert_ne!(
        a.trace_text(),
        c.trace_text(),
        "different seed should diverge"
    );
}

/// 30 virtual seconds of chaos complete in under a wall-clock second.
#[test]
fn thirty_virtual_seconds_run_in_under_a_second() {
    let scenario = Scenario::random(2024, 5, secs(30), 12);
    let started = Instant::now();
    let report = run(&scenario);
    let wall = started.elapsed();
    report.assert_clean();
    assert!(report.virtual_micros >= 30_000_000);
    assert!(
        wall < Duration::from_secs(1),
        "30 virtual seconds took {wall:?} of wall time"
    );
}

/// Family 1: loss bursts. Reliable delivery rides out heavy loss — every
/// published message arrives, exactly once, in order.
#[test]
fn loss_burst_family_delivers_everything() {
    let mut scenario = Scenario::quiet(31, 3, secs(10));
    for (i, at) in [800u64, 2600, 4400, 6200].iter().enumerate() {
        scenario.ops.push(ScriptedOp {
            at: millis(*at),
            op: ChaosOp::LossBurst {
                node: i % 3,
                loss: 0.7,
                duration: millis(700),
            },
        });
    }
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.total_published() > 50);
    assert!(
        report.all_delivered(),
        "loss bursts must not lose acknowledged traffic: {}/{} delivered",
        report.total_delivered(),
        report.total_published()
    );
}

/// Family 2: partition / heal. Safety holds through partitions that
/// outlive the lease, and the partitioned member is re-admitted.
#[test]
fn partition_heal_family_stays_safe() {
    let mut scenario = Scenario::quiet(32, 3, secs(12));
    // Long partition: node 0 is purged and must rejoin after the heal.
    scenario.ops.push(ScriptedOp {
        at: millis(2000),
        op: ChaosOp::Partition {
            node: 0,
            duration: millis(3500),
        },
    });
    // Short partition: node 1 stays a member throughout.
    scenario.ops.push(ScriptedOp {
        at: millis(7000),
        op: ChaosOp::Partition {
            node: 1,
            duration: millis(400),
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    let long_gone = report.device_ids[0];
    assert!(
        report.was_purged(long_gone),
        "a 3.5s partition must purge (lease 1s + grace 1s)"
    );
    assert!(
        report.times_joined(long_gone) >= 2,
        "the purged node must be re-admitted after the heal"
    );
    let briefly_gone = report.device_ids[1];
    assert!(
        !report.was_purged(briefly_gone),
        "a 400ms partition must be masked"
    );
}

/// Family 3: crash / restart. A crashed node loses its channel state,
/// restarts with the same identity and a fresh epoch, and rejoins
/// without breaking exactly-once or FIFO at the sink.
#[test]
fn crash_restart_family_stays_safe() {
    let mut scenario = Scenario::quiet(33, 3, secs(12));
    scenario.ops.push(ScriptedOp {
        at: millis(3000),
        op: ChaosOp::Crash {
            node: 0,
            down_for: millis(2500),
        },
    });
    scenario.ops.push(ScriptedOp {
        at: millis(8000),
        op: ChaosOp::Crash {
            node: 2,
            down_for: millis(500),
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    let crashed = report.device_ids[0];
    assert!(
        report.times_joined(crashed) >= 2,
        "the crashed node must rejoin after restarting"
    );
    // The restarted node kept publishing under the same id.
    assert!(report.oracle.delivered(crashed) > 0);
}

/// Family 4: duplicate storms. The network delivers copies; the channel
/// dedups them; the oracle sees exactly-once.
#[test]
fn duplicate_storm_family_delivers_exactly_once() {
    let mut scenario = Scenario::quiet(34, 3, secs(10));
    for at in [1000u64, 3000, 5000, 7000] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at / 3000) as usize % 3,
                duplicate: 0.8,
                duration: millis(900),
            },
        });
    }
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.all_delivered());
}

/// A channel with dedup disabled breaks exactly-once / FIFO under a
/// duplicate storm — and the oracle must catch it and report the seed
/// and a trace.
#[test]
fn broken_channel_config_fails_the_oracle() {
    let mut scenario = Scenario::quiet(35, 2, secs(8));
    for at in [500u64, 1500, 2500, 3500, 4500, 5500] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at as usize / 1500) % 2,
                duplicate: 0.9,
                duration: millis(900),
            },
        });
    }
    let broken = ReliableConfig {
        dedup: false,
        ..ReliableConfig::default()
    };
    let report = run_with(&scenario.sorted(), broken, smc_harness::default_discovery());
    let violation = report
        .oracle
        .violation()
        .expect("dedup=false under a duplicate storm must violate delivery semantics");
    assert!(matches!(
        violation.kind,
        ViolationKind::DuplicateDelivery | ViolationKind::FifoViolation
    ));
    assert_eq!(violation.seed, 35);
    assert!(
        !violation.trace.is_empty(),
        "violation must carry the event trace"
    );
    let rendered = violation.to_string();
    assert!(
        rendered.contains("seed 35"),
        "report must name the seed: {rendered}"
    );
    assert!(
        rendered.contains("deliver"),
        "report must show the trace: {rendered}"
    );
}

/// A clean run traces complete journeys: every delivered message can be
/// replayed hop by hop from publish to delivery, and the run's registry
/// renders the standard exposition series.
#[test]
fn clean_run_traces_complete_journeys() {
    let scenario = Scenario::quiet(40, 2, secs(6));
    let report = run(&scenario);
    report.assert_clean();
    assert!(report.total_delivered() > 0);
    let dev = report.device_ids[0];
    let journey = report
        .journey(dev, 1)
        .expect("tracing is on by default")
        .clone();
    assert!(
        !journey.is_empty(),
        "device 0's first message must have hops"
    );
    let names: Vec<&str> = journey.hops.iter().map(|r| r.hop.name()).collect();
    assert_eq!(names.first(), Some(&"published"));
    assert!(names.contains(&"tx-sent"), "hops: {names:?}");
    assert!(names.contains(&"rx-acked"), "hops: {names:?}");
    assert_eq!(names.last(), Some(&"delivered"), "hops: {names:?}");
    // Timestamps never go backwards along a journey.
    let times: Vec<u64> = journey.hops.iter().map(|r| r.at_micros).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "times: {times:?}");
    // The registry renders parseable exposition text with run counters.
    let text = report.registry.render_text();
    assert!(text.contains("# TYPE smc_harness_published_total counter"));
    assert!(text.contains("smc_trace_hops_appended_total"));
    let parsed = smc_telemetry::parse_text(&text).expect("render_text must parse back");
    let published = parsed
        .iter()
        .find(|s| s.name == "smc_harness_published_total")
        .expect("published counter rendered");
    assert_eq!(published.value, report.total_published() as f64);
}

/// The acceptance criterion for tracing: an injected delivery violation
/// (dedup disabled under a duplicate storm) is reported with the
/// offending event's complete hop journey attached.
#[test]
fn violation_report_carries_offending_journey() {
    let mut scenario = Scenario::quiet(41, 2, secs(8));
    for at in [500u64, 1500, 2500, 3500, 4500, 5500] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at as usize / 1500) % 2,
                duplicate: 0.9,
                duration: millis(900),
            },
        });
    }
    let report = run_with_options(
        &scenario.sorted(),
        RunOptions {
            reliable: ReliableConfig {
                dedup: false,
                ..ReliableConfig::default()
            },
            ..RunOptions::default()
        },
    );
    let violation = report
        .oracle
        .violation()
        .expect("dedup=false under a duplicate storm must violate delivery semantics");
    let (sender, seq) = violation
        .offender
        .expect("delivery violations name the offending message");
    let journey = violation
        .journey
        .as_ref()
        .expect("the harness attaches the offender's journey");
    assert!(
        !journey.is_empty(),
        "offender {sender} #{seq} must have recorded hops"
    );
    let names: Vec<&str> = journey.hops.iter().map(|r| r.hop.name()).collect();
    assert_eq!(
        names.first(),
        Some(&"published"),
        "journey starts at the publish: {names:?}"
    );
    assert!(
        names.iter().filter(|&&n| n == "delivered").count() >= 2,
        "a duplicate delivery shows up as two delivered hops: {names:?}"
    );
    let rendered = violation.to_string();
    assert!(
        rendered.contains("offending event's journey"),
        "report must print the journey: {rendered}"
    );
    assert!(rendered.contains("delivered"), "{rendered}");
}

/// Turning tracing off must not change the run itself: the oracle trace
/// is byte-identical with and without hop recording.
#[test]
fn tracing_does_not_perturb_the_run() {
    let scenario = Scenario::random(42, 3, secs(6), 8);
    let traced = run_with_options(&scenario, RunOptions::default());
    let untraced = run_with_options(
        &scenario,
        RunOptions {
            trace: false,
            ..RunOptions::default()
        },
    );
    assert!(traced.trace_sink.is_some());
    assert!(untraced.trace_sink.is_none());
    assert_eq!(
        traced.trace_text().into_bytes(),
        untraced.trace_text().into_bytes(),
        "hop recording must be invisible to the virtual-time schedule"
    );
}

/// Retransmission rounds show up as hops on the journey of a message
/// published into a loss burst.
#[test]
fn loss_burst_journeys_show_retransmit_hops() {
    let mut scenario = Scenario::quiet(43, 1, secs(6));
    scenario.ops.push(ScriptedOp {
        at: millis(500),
        op: ChaosOp::LossBurst {
            node: 0,
            loss: 0.85,
            duration: millis(2500),
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    let dev = report.device_ids[0];
    let retransmitted = (1..=report.oracle.published(dev)).any(|seq| {
        report
            .journey(dev, seq)
            .is_some_and(|j| j.hops.iter().any(|r| r.hop == Hop::TxRetransmit))
    });
    assert!(
        retransmitted,
        "an 85% loss burst must force at least one traced retransmission round"
    );
}

/// Domain moves (walking out of beacon range) and link-profile changes
/// keep the safety properties intact.
#[test]
fn domain_move_and_profile_change_stay_safe() {
    let mut scenario = Scenario::quiet(36, 3, secs(10));
    scenario.ops.push(ScriptedOp {
        at: millis(1500),
        op: ChaosOp::DomainMove {
            node: 0,
            domain: 2,
            duration: millis(3000),
        },
    });
    scenario.ops.push(ScriptedOp {
        at: millis(2000),
        op: ChaosOp::LinkProfile {
            node: 1,
            profile: smc_harness::LinkProfileKind::Bluetooth,
        },
    });
    let report = run(&scenario.sorted());
    report.assert_clean();
    assert!(report.total_delivered() > 0);
}
