//! Property: the sharded bus is delivery-equivalent to the plain bus.
//!
//! Sharding moves *where* a publish runs — a worker thread picked by
//! publisher id — and batches *how many* events one pipeline pass
//! covers. Neither may be observable in delivery semantics: every
//! subscriber must receive exactly the events it would have received
//! from a single-threaded bus (same matched set, exactly once), and
//! each publisher's events must arrive in publish order. The chaos
//! oracle checks the guarantees incrementally; the reference bus run
//! supplies the matched-set ground truth.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::{proptest, ProptestConfig};

use smc_core::{EventBus, EventSink, ShardConfig, ShardedBus};
use smc_harness::{DeliveryOracle, ViolationKind};
use smc_match::EngineKind;
use smc_types::{Event, Filter, Op, Result, ServiceId};

/// Feeds every delivery to the oracle, stamping a logical tick so the
/// violation trace stays readable.
struct OracleSink {
    oracle: Arc<Mutex<DeliveryOracle>>,
    tick: AtomicU64,
}

impl EventSink for OracleSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        let at = self.tick.fetch_add(1, Ordering::Relaxed);
        self.oracle.lock().expect("oracle lock").record_delivery(
            at,
            event.publisher(),
            event.seq(),
        );
        Ok(())
    }
}

/// Collects `(publisher, seq)` pairs for set comparison.
#[derive(Default)]
struct CollectingSink {
    got: Mutex<Vec<(u64, u64)>>,
}

impl EventSink for CollectingSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        self.got
            .lock()
            .expect("sink lock")
            .push((event.publisher().raw(), event.seq()));
        Ok(())
    }
}

fn sorted(sink: &CollectingSink) -> Vec<(u64, u64)> {
    let mut v = sink.got.lock().expect("sink lock").clone();
    v.sort_unstable();
    v
}

/// The generated workload: per publisher `p`, events `1..=events_each`
/// with a value attribute only some of which pass the selective filter.
fn workload(publishers: usize, events_each: usize, seed: u64) -> Vec<Event> {
    let mut all = Vec::new();
    for seq in 1..=events_each as u64 {
        for p in 0..publishers as u64 {
            all.push(
                Event::builder("r")
                    .attr("v", ((seed + p * 31 + seq * 7) % 10) as i64)
                    .publisher(ServiceId::from_raw(1 + p))
                    .seq(seq)
                    .build(),
            );
        }
    }
    all
}

fn subscribe_pair(bus: &EventBus) -> (Arc<CollectingSink>, Arc<CollectingSink>) {
    let every = Arc::new(CollectingSink::default());
    let some = Arc::new(CollectingSink::default());
    bus.subscribe(
        ServiceId::from_raw(0x100),
        Filter::any(),
        Arc::clone(&every) as Arc<dyn EventSink>,
    )
    .expect("subscribe catch-all");
    bus.subscribe(
        ServiceId::from_raw(0x101),
        Filter::for_type("r").with(("v", Op::Gt, 4i64)),
        Arc::clone(&some) as Arc<dyn EventSink>,
    )
    .expect("subscribe selective");
    (every, some)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once, per-publisher FIFO, and the same matched sets as a
    /// single-threaded bus — for any publisher count, shard count,
    /// batch size and workload.
    #[test]
    fn sharded_bus_is_delivery_equivalent_to_the_plain_bus(
        seed in 0u64..1_000_000,
        publishers in 1usize..5,
        shards in 1usize..5,
        max_batch in 1usize..9,
        events_each in 1usize..40,
    ) {
        let all = workload(publishers, events_each, seed);

        // Ground truth: the same workload through a plain bus.
        let reference = EventBus::new(EngineKind::FastForward);
        let (ref_every, ref_some) = subscribe_pair(&reference);
        for event in &all {
            reference.publish(event.clone()).expect("reference publish");
        }

        // The sharded run, with the oracle riding the catch-all sink.
        let bus = Arc::new(EventBus::new(EngineKind::FastForward));
        let (every, some) = subscribe_pair(&bus);
        let oracle = Arc::new(Mutex::new(DeliveryOracle::new(seed)));
        {
            let mut o = oracle.lock().expect("oracle lock");
            for p in 0..publishers as u64 {
                o.record_joined(0, ServiceId::from_raw(1 + p));
            }
        }
        bus.subscribe(
            ServiceId::from_raw(0x102),
            Filter::any(),
            Arc::new(OracleSink {
                oracle: Arc::clone(&oracle),
                tick: AtomicU64::new(0),
            }) as Arc<dyn EventSink>,
        )
        .expect("subscribe oracle");
        let sharded = ShardedBus::with_config(
            Arc::clone(&bus),
            ShardConfig {
                shards,
                ring_capacity: 32,
                max_batch,
            },
        );
        let mut handles: Vec<_> = (0..publishers as u64)
            .map(|p| sharded.publisher(ServiceId::from_raw(1 + p)))
            .collect();
        for event in &all {
            let p = (event.publisher().raw() - 1) as usize;
            handles[p].publish(event.clone()).expect("sharded publish");
        }
        sharded.flush();

        // The oracle saw no duplicate and no per-publisher reorder.
        let oracle = oracle.lock().expect("oracle lock");
        if let Some(v) = oracle.violation() {
            assert!(
                !matches!(
                    v.kind,
                    ViolationKind::DuplicateDelivery | ViolationKind::FifoViolation
                ),
                "seed {seed}: sharded bus broke a delivery guarantee: {v}"
            );
        }

        // Matched sets are identical to the reference run, per
        // subscriber — the selective filter proving match equivalence,
        // the catch-all proving nothing is lost or invented.
        assert_eq!(
            sorted(&every),
            sorted(&ref_every),
            "seed {seed}: catch-all subscriber diverged"
        );
        assert_eq!(
            sorted(&some),
            sorted(&ref_some),
            "seed {seed}: selective subscriber diverged"
        );

        // And the catch-all really saw everything exactly once.
        let expected: HashSet<(u64, u64)> = all
            .iter()
            .map(|e| (e.publisher().raw(), e.seq()))
            .collect();
        let got = sorted(&every);
        assert_eq!(got.len(), expected.len(), "seed {seed}: delivery count drifted");
    }
}
