//! Teeth for the self-observation stack: an injected retransmit storm
//! must flip the health detector — and the built-in obligation must
//! quench the noisy publisher — within bounded virtual time, while an
//! identical storm-free run stays green end to end.

use std::path::PathBuf;
use std::time::Duration;

use smc_harness::{run_with_options, ChaosOp, HealthOptions, RunOptions, Scenario, ScriptedOp};
use smc_health::HealthState;

const SEED: u64 = 0xBEEF;
/// The storm begins here...
const STORM_AT: Duration = Duration::from_secs(2);
/// ...and detection must land within this much virtual time after onset.
const DETECT_BOUND_MICROS: u64 = 2_000_000;

fn base_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::quiet(seed, 2, Duration::from_secs(8));
    s.publish_interval = Duration::from_millis(50);
    s
}

fn storm_scenario(seed: u64) -> Scenario {
    let mut s = base_scenario(seed);
    s.ops.push(ScriptedOp {
        at: STORM_AT,
        op: ChaosOp::LossBurst {
            node: 0,
            loss: 0.97,
            duration: Duration::from_millis(2500),
        },
    });
    s
}

fn with_health(dump_path: Option<PathBuf>) -> RunOptions {
    RunOptions {
        health: Some(HealthOptions {
            dump_path,
            ..HealthOptions::default()
        }),
        ..RunOptions::default()
    }
}

#[test]
fn retransmit_storm_flips_the_detector_and_quenches_the_publisher() {
    let report = run_with_options(&storm_scenario(SEED), with_health(None));
    let health = report.health.as_ref().expect("health was enabled");

    let degraded = health
        .first_transition("channel:device0", HealthState::Degraded)
        .unwrap_or_else(|| {
            panic!(
                "storm on device0 must degrade channel:device0; transitions: {:?}",
                health.transitions
            )
        });
    let onset = STORM_AT.as_micros() as u64;
    assert!(
        degraded.at_micros >= onset,
        "detector fired before the storm even began (at {} µs)",
        degraded.at_micros
    );
    assert!(
        degraded.at_micros <= onset + DETECT_BOUND_MICROS,
        "detection took {} µs after onset, bound is {} µs",
        degraded.at_micros - onset,
        DETECT_BOUND_MICROS
    );

    // The autonomic loop closed: the obligation quenched the device...
    let device0 = report.device_ids[0];
    let quench = health
        .quenches
        .iter()
        .find(|&&(_, id, enable)| id == device0 && enable)
        .expect("degraded publisher must be quenched");
    assert!(quench.0 >= degraded.at_micros);
    // ...and woke it once the channel recovered after the storm healed.
    assert!(
        health
            .quenches
            .iter()
            .any(|&(at, id, enable)| id == device0 && !enable && at > quench.0),
        "recovered publisher must be woken; quenches: {:?}",
        health.quenches
    );
    // Quenching is damping, not denial of service: the device still got
    // traffic through over the run.
    assert!(report.oracle.delivered(device0) > 0);
}

#[test]
fn identical_clean_run_stays_green() {
    let report = run_with_options(&base_scenario(SEED), with_health(None));
    let health = report.health.as_ref().expect("health was enabled");
    assert!(
        health.stayed_green(),
        "clean run must produce zero transitions; got {:?}",
        health.transitions
    );
    assert!(health.quenches.is_empty());
    report.assert_clean();
}

#[test]
fn health_runs_are_deterministic_per_seed() {
    let a = run_with_options(&storm_scenario(7), with_health(None));
    let b = run_with_options(&storm_scenario(7), with_health(None));
    assert_eq!(a.trace_text(), b.trace_text());
    let (ha, hb) = (a.health.unwrap(), b.health.unwrap());
    assert_eq!(ha.transitions, hb.transitions);
    assert_eq!(ha.quenches, hb.quenches);
}

#[test]
fn flight_recorder_dumps_on_core_crash() {
    let mut scenario = base_scenario(SEED);
    scenario.ops.push(ScriptedOp {
        at: STORM_AT,
        op: ChaosOp::CoreCrash {
            down_for: Duration::from_secs(1),
        },
    });
    let dump = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("flight_recorder_crash.txt");
    let _ = std::fs::remove_file(&dump);
    let report = run_with_options(&scenario, with_health(Some(dump.clone())));
    let health = report.health.as_ref().expect("health was enabled");
    assert_eq!(health.dumped_to.as_deref(), Some(dump.as_path()));
    let text = std::fs::read_to_string(&dump).expect("dump file written");
    assert!(text.contains("core crashed"), "dump must carry the notes");
    assert!(
        text.contains("--- health timeline ---"),
        "dump must carry the timeline"
    );
}
