//! Telemetry-plane teeth: kill a cell's supervisor AND partition the
//! cell, and prove the in-network aggregation keeps telling the truth.
//! The cells export delta-encoded metrics, trace hops and SLO reports
//! as journaled `smc.telemetry` events to an observer; the observer
//! folds them into a ward view whose counters never move backwards and
//! stitches the supervision episode — lease-lapse, claim, adopt,
//! wire-repair on the adopter; remote-restart on the revived cell —
//! into one cross-cell journey under a single synthetic trace id. The
//! partition only delays exports (they queue in the telemetry journal
//! and drain after heal); it never loses or reorders them.

use std::time::Duration;

use smc_harness::{run_peer_with_options, ChaosOp, PeerOptions, Scenario, ScriptedOp};

/// The five legs of a complete remote-revival journey, in virtual-time
/// order. The first four are recorded by the adopter, the last by the
/// revived cell itself — stitching them is the observer's job.
const JOURNEY: [&str; 5] = [
    "lease-lapse",
    "claim",
    "adopt",
    "wire-repair",
    "remote-restart",
];

fn revival_under_partition(seed: u64) -> Scenario {
    let mut scenario = Scenario::quiet(seed, 2, Duration::from_secs(12));
    scenario.ops.push(ScriptedOp {
        at: Duration::from_secs(1),
        op: ChaosOp::KillSupervisor { cell: 0 },
    });
    scenario.ops.push(ScriptedOp {
        at: Duration::from_millis(1_200),
        op: ChaosOp::PartitionCell {
            cell: 0,
            duration: Duration::from_secs(2),
        },
    });
    scenario.sorted()
}

fn telemetry_on() -> PeerOptions {
    PeerOptions {
        telemetry: Some(Default::default()),
        ..PeerOptions::default()
    }
}

#[test]
fn stitched_journey_survives_supervisor_death_and_partition() {
    let report = run_peer_with_options(&revival_under_partition(81), telemetry_on());
    report.assert_clean();
    assert!(
        report.converged() && report.all_delivered(),
        "the telemetry plane must not change the outcome"
    );
    let tel = report.telemetry.as_ref().expect("telemetry plane was on");

    // The episode: cell 2 adopted member 1 and revived its supervisor.
    let (target, trace) = *tel
        .episodes
        .first()
        .expect("the watchers opened a supervision episode");
    assert_eq!(target, 1, "the episode targeted the killed cell");
    assert!(
        tel.journey_complete(trace, &JOURNEY),
        "every leg present in order; stitched:\n{}",
        tel.ward
            .stitched(trace)
            .map(|j| j.to_string())
            .unwrap_or_else(|| "<no journey>".into())
    );

    // The stitched view itself: cross-cell, time-ordered, untruncated.
    let journey = tel.ward.stitched(trace).expect("journey stitched");
    assert!(!journey.truncated);
    assert!(
        journey
            .legs
            .windows(2)
            .all(|w| w[0].at_micros <= w[1].at_micros),
        "hops are in virtual-time order: {journey}"
    );
    let cells_seen: std::collections::HashSet<u64> =
        journey.legs.iter().map(|leg| leg.cell).collect();
    assert!(
        cells_seen.len() >= 2,
        "the journey crosses cells (adopter + revived): {journey}"
    );
    assert!(
        journey
            .legs
            .iter()
            .any(|leg| leg.label == "remote-restart" && leg.cell == 1),
        "the restart hop was recorded by the revived cell: {journey}"
    );

    // The ward fold held its invariants through crash and partition.
    assert_eq!(tel.backwards, 0, "ward counters never move backwards");
    assert_eq!(tel.duplicates, 0, "the journaled channel never replays");
    assert!(
        tel.exports_applied > 0 && tel.exports_applied == tel.exports_sent,
        "every export folded exactly once ({} sent, {} applied)",
        tel.exports_sent,
        tel.exports_applied
    );
}

#[test]
fn aggregation_lag_is_bounded_by_the_partition() {
    let report = run_peer_with_options(&revival_under_partition(81), telemetry_on());
    let tel = report.telemetry.as_ref().expect("telemetry plane was on");
    // Off-partition exports land within one plane step (the telemetry
    // channels deliberately step on a coarse 100ms cadence); only the
    // partitioned cell's queued backlog stretches the tail, and never
    // past the partition itself.
    assert!(
        tel.lag_p50_micros <= 131_072,
        "p50 lag is one plane step, got {}µs",
        tel.lag_p50_micros
    );
    // Quantiles report log2 bucket ceilings: a just-over-2s lag (an
    // export queued at partition start) lands in the (2^21, 2^22]
    // bucket, so the bound is that bucket's upper edge.
    assert!(
        tel.lag_p95_micros <= 4_194_304,
        "p95 lag is bounded by the 2s partition, got {}µs",
        tel.lag_p95_micros
    );
    // Both cells were fresh again by run end: the backlog drained.
    let freshness = tel.ward.freshness(report.virtual_micros);
    assert_eq!(freshness.len(), 2, "both cells exported");
    for f in &freshness {
        assert!(
            f.lag_micros <= 1_000_000,
            "cell {} went stale: {}µs behind at run end",
            f.cell,
            f.lag_micros
        );
    }
}

#[test]
fn ward_rollup_and_slo_series_are_present() {
    let report = run_peer_with_options(&revival_under_partition(81), telemetry_on());
    let tel = report.telemetry.as_ref().expect("telemetry plane was on");
    let samples = tel.ward.registry().gather();
    let has = |name: &str, cell: &str| {
        samples
            .iter()
            .any(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "cell" && v == cell))
    };
    // Per-cell series and the ward rollup, for counters and gauges.
    for cell in ["1", "2", "ward"] {
        assert!(
            has("smc_cell_published_total", cell),
            "published counter folded for cell={cell}"
        );
        assert!(
            has("smc_cell_supervisor_up", cell),
            "supervisor gauge folded for cell={cell}"
        );
    }
    // Both SLOs reported burn over their windows.
    for slo in ["delivery-latency", "supervision-ttr"] {
        assert!(
            samples.iter().any(|s| {
                s.name == "smc_slo_burn_rate_milli"
                    && s.labels.iter().any(|(k, v)| k == "slo" && v == slo)
            }),
            "burn-rate series present for slo={slo}"
        );
    }
    // The rolled-up delivery count matches what the oracle saw.
    let ward_delivered: u64 = samples
        .iter()
        .filter(|s| {
            s.name == "smc_cell_delivered_total"
                && s.labels.iter().any(|(k, v)| k == "cell" && v == "ward")
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(
        ward_delivered,
        report.total_delivered(),
        "the ward view agrees with ground truth"
    );
}

#[test]
fn telemetry_runs_are_deterministic() {
    let a = run_peer_with_options(&revival_under_partition(82), telemetry_on());
    let b = run_peer_with_options(&revival_under_partition(82), telemetry_on());
    assert_eq!(
        a.trace_text(),
        b.trace_text(),
        "same seed, same exports, same alerts — byte for byte"
    );
    let (wa, wb) = (
        a.telemetry.as_ref().expect("plane on").ward.registry(),
        b.telemetry.as_ref().expect("plane on").ward.registry(),
    );
    assert_eq!(
        wa.render_text(),
        wb.render_text(),
        "the folded ward view is deterministic too"
    );
}

#[test]
fn plane_off_stays_byte_identical_to_the_seed_world() {
    // The opt-in guarantee: PeerOptions::default() runs the exact same
    // world as before the telemetry plane existed.
    let scenario = revival_under_partition(83);
    let with_default = smc_harness::run_peer(&scenario);
    let with_explicit_none = run_peer_with_options(&scenario, PeerOptions::default());
    assert!(with_default.telemetry.is_none());
    assert_eq!(with_default.trace_text(), with_explicit_none.trace_text());
}
