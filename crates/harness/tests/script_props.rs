//! Property tests: the delivery oracle must stay clean over *randomized*
//! scenario scripts, and a failing script must shrink to a minimal one.
//!
//! Failures print the seed (via the oracle report) and the shrunken
//! script, so any counterexample can be replayed bit-for-bit with
//! `Scenario::random(seed, ...)` or pasted back as a literal script.

use std::time::Duration;

use proptest::{proptest, ProptestConfig};
use smc_harness::{
    default_discovery, run, run_with, shrink_scenario, ChaosOp, Scenario, ScriptedOp,
};
use smc_transport::ReliableConfig;

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

fn millis(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded random fault schedule keeps the §II-C guarantees. On a
    /// violation the script is shrunk to a (locally) minimal failing one
    /// before panicking, so the report is immediately actionable.
    #[test]
    fn oracle_stays_clean_on_random_scripts(
        seed in 0u64..1_000_000,
        nodes in 1usize..5,
        ops in 0usize..8,
    ) {
        let scenario = Scenario::random(seed, nodes, secs(4), ops);
        let report = run(&scenario);
        if report.oracle.violation().is_some() {
            let minimal =
                shrink_scenario(scenario, |s| run(s).oracle.violation().is_some());
            let shrunk = run(&minimal);
            let violation =
                shrunk.oracle.violation().expect("shrunk scenario must still fail");
            panic!("oracle violation; minimal failing script: {minimal:#?}\n{violation}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replaying a random script with the same seed yields a byte-identical
    /// delivery trace — the property that makes shrinking trustworthy.
    #[test]
    fn random_scripts_replay_identically(seed in 0u64..1_000_000) {
        let scenario = Scenario::random(seed, 3, secs(3), 5);
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(
            a.trace_text(),
            b.trace_text(),
            "seed {seed} did not replay identically"
        );
    }
}

/// The shrinker strips a deliberately-broken run (dedup disabled, so
/// duplicate storms break exactly-once) down to the ops that matter:
/// faults irrelevant to the violation are dropped and the run shortened,
/// while the minimal script still fails and still names the seed.
#[test]
fn shrinker_minimizes_a_failing_script() {
    let mut scenario = Scenario::quiet(77, 2, secs(8));
    for at in [500u64, 1500, 2500, 3500] {
        scenario.ops.push(ScriptedOp {
            at: millis(at),
            op: ChaosOp::DuplicateStorm {
                node: (at as usize / 1500) % 2,
                duplicate: 0.9,
                duration: millis(900),
            },
        });
    }
    // Chaff the shrinker must discard: faults that cannot cause duplicate
    // deliveries on their own.
    scenario.ops.push(ScriptedOp {
        at: millis(6000),
        op: ChaosOp::LossBurst {
            node: 0,
            loss: 0.5,
            duration: millis(300),
        },
    });
    scenario.ops.push(ScriptedOp {
        at: millis(6500),
        op: ChaosOp::Partition {
            node: 1,
            duration: millis(200),
        },
    });
    let scenario = scenario.sorted();

    let broken = ReliableConfig {
        dedup: false,
        ..ReliableConfig::default()
    };
    let fails = |s: &Scenario| {
        run_with(s, broken.clone(), default_discovery())
            .oracle
            .violation()
            .is_some()
    };
    assert!(
        fails(&scenario),
        "the unshrunk scenario must fail to begin with"
    );

    let minimal = shrink_scenario(scenario.clone(), fails);
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert!(
        minimal.ops.len() < scenario.ops.len(),
        "shrinking made no progress: {} ops -> {} ops",
        scenario.ops.len(),
        minimal.ops.len()
    );
    assert!(
        minimal
            .ops
            .iter()
            .all(|o| matches!(o.op, ChaosOp::DuplicateStorm { .. })),
        "only duplicate storms can break exactly-once here, got {:?}",
        minimal.ops
    );
    assert!(
        minimal.duration < scenario.duration,
        "the run should have been shortened"
    );

    let report = run_with(&minimal, broken, default_discovery());
    let violation = report
        .oracle
        .violation()
        .expect("minimal scenario still violates");
    assert_eq!(
        violation.seed, 77,
        "the report must carry the scenario seed"
    );
}
