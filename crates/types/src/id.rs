//! Identifiers for services, cells, subscriptions and events.
//!
//! The prototype in the paper derives a **48-bit service identifier** from
//! the transport's unicast socket: the IPv4 address (32 bits) concatenated
//! with the port number (16 bits). [`ServiceId::from_addr_port`] reproduces
//! that scheme; other constructors exist for simulated transports.

use std::fmt;
use std::net::Ipv4Addr;

/// Mask retaining the low 48 bits of a `u64`.
const ID48_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

/// A 48-bit identifier for a service (sensor, actuator, or core component)
/// within or around a self-managed cell.
///
/// The paper's prototype builds this from the unicast socket address and the
/// OS-chosen port, so that no port is hardwired:
///
/// ```
/// use smc_types::ServiceId;
/// use std::net::Ipv4Addr;
///
/// let id = ServiceId::from_addr_port(Ipv4Addr::new(192, 168, 0, 7), 40123);
/// assert_eq!(id.ipv4(), Ipv4Addr::new(192, 168, 0, 7));
/// assert_eq!(id.port(), 40123);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceId(u64);

impl ServiceId {
    /// The all-zero identifier, used as a placeholder before assignment.
    pub const NIL: ServiceId = ServiceId(0);

    /// Builds an identifier from a raw 48-bit value.
    ///
    /// The upper 16 bits of `raw` are discarded.
    pub const fn from_raw(raw: u64) -> Self {
        ServiceId(raw & ID48_MASK)
    }

    /// Builds an identifier from an IPv4 address and port, exactly as the
    /// paper's UDP prototype does.
    pub fn from_addr_port(addr: Ipv4Addr, port: u16) -> Self {
        let a = u32::from(addr) as u64;
        ServiceId((a << 16) | port as u64)
    }

    /// Returns the raw 48-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the IPv4 address component (upper 32 bits).
    pub fn ipv4(self) -> Ipv4Addr {
        Ipv4Addr::from((self.0 >> 16) as u32)
    }

    /// Returns the port component (lower 16 bits).
    pub const fn port(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Returns `true` if this is the nil placeholder identifier.
    pub const fn is_nil(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:012x}", self.0)
    }
}

impl From<ServiceId> for u64 {
    fn from(id: ServiceId) -> u64 {
        id.0
    }
}

/// Identifier of a self-managed cell.
///
/// Cells may federate in future work; the identifier lets beacons from
/// overlapping cells be told apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CellId(pub u64);

impl CellId {
    /// Builds a cell identifier from a raw value.
    pub const fn from_raw(raw: u64) -> Self {
        CellId(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell-{:x}", self.0)
    }
}

/// Identifier of a subscription registered with the event bus.
///
/// Allocated by the bus; unique within one bus instance for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// Globally unique identifier of a published event: the publisher plus the
/// publisher's sequence number.
///
/// The pair is what makes *exactly-once* delivery checkable: a subscriber
/// proxy suppresses any event whose `EventId` it has already delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId {
    /// The service that published the event.
    pub publisher: ServiceId,
    /// The publisher-local sequence number, starting at 1.
    pub seq: u64,
}

impl EventId {
    /// Creates an event identifier.
    pub const fn new(publisher: ServiceId, seq: u64) -> Self {
        EventId { publisher, seq }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.publisher, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_port_round_trip() {
        let addr = Ipv4Addr::new(10, 1, 2, 3);
        let id = ServiceId::from_addr_port(addr, 55555);
        assert_eq!(id.ipv4(), addr);
        assert_eq!(id.port(), 55555);
    }

    #[test]
    fn raw_masks_to_48_bits() {
        let id = ServiceId::from_raw(u64::MAX);
        assert_eq!(id.raw(), 0x0000_FFFF_FFFF_FFFF);
    }

    #[test]
    fn nil_is_nil() {
        assert!(ServiceId::NIL.is_nil());
        assert!(!ServiceId::from_raw(1).is_nil());
        assert_eq!(ServiceId::default(), ServiceId::NIL);
    }

    #[test]
    fn display_is_twelve_hex_digits() {
        let id = ServiceId::from_raw(0xABC);
        assert_eq!(id.to_string(), "000000000abc");
        assert_eq!(id.to_string().len(), 12);
    }

    #[test]
    fn event_id_orders_by_publisher_then_seq() {
        let a = EventId::new(ServiceId::from_raw(1), 9);
        let b = EventId::new(ServiceId::from_raw(2), 1);
        assert!(a < b);
        let c = EventId::new(ServiceId::from_raw(1), 10);
        assert!(a < c);
    }

    #[test]
    fn ids_display_nonempty() {
        assert!(!CellId(7).to_string().is_empty());
        assert!(!SubscriptionId(7).to_string().is_empty());
        assert!(EventId::default().to_string().contains('#'));
    }

    #[test]
    fn service_id_into_u64() {
        let id = ServiceId::from_raw(42);
        let raw: u64 = id.into();
        assert_eq!(raw, 42);
    }
}
