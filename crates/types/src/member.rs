//! Membership records and the well-known management events.
//!
//! The discovery service announces membership changes by publishing
//! `New Member` and `Purge Member` events on the bus; the proxy bootstrap
//! and the policy service both subscribe to them. This module defines the
//! canonical event types and attribute names so all components agree.

use bytes::{BufMut, BytesMut};
use std::fmt;

use crate::codec::{Decode, Encode, Reader, WriteExt};
use crate::error::CodecError;
use crate::event::Event;
use crate::id::ServiceId;

/// Well-known event type names and attribute keys.
pub mod wellknown {
    /// Event type announcing a newly admitted member.
    pub const NEW_MEMBER: &str = "smc.member.new";
    /// Event type announcing a permanently departed member.
    pub const PURGE_MEMBER: &str = "smc.member.purge";
    /// Attribute: 48-bit member service id (int).
    pub const MEMBER_ID: &str = "member.id";
    /// Attribute: member device type (string).
    pub const DEVICE_TYPE: &str = "member.device_type";
    /// Attribute: member display name (string).
    pub const DISPLAY_NAME: &str = "member.name";
    /// Attribute: comma-separated member roles (string).
    pub const ROLES: &str = "member.roles";
    /// Attribute: human-readable purge reason (string).
    pub const REASON: &str = "reason";
    /// Event type for management commands (e.g. threshold changes).
    pub const COMMAND: &str = "smc.command";
    /// Event type for alarms raised by policies or sensors.
    pub const ALARM: &str = "smc.alarm";
    /// Event type for generic sensor readings.
    pub const SENSOR_READING: &str = "smc.sensor.reading";
    /// Event type for health-state transitions published by the
    /// autonomic health monitor.
    pub const HEALTH: &str = "smc.health";
    /// Attribute: the component whose health changed (string, e.g.
    /// `channel:device0`, `wal`, `membership`).
    pub const HEALTH_COMPONENT: &str = "health.component";
    /// Attribute: the detector that drove the transition (string).
    pub const HEALTH_DETECTOR: &str = "health.detector";
    /// Attribute: previous health state (string: `healthy`, `degraded`,
    /// `failed`).
    pub const HEALTH_FROM: &str = "health.from";
    /// Attribute: new health state (string).
    pub const HEALTH_TO: &str = "health.to";
    /// Attribute: human-readable detector detail (string).
    pub const HEALTH_DETAIL: &str = "health.detail";
    /// Attribute: raw service id of the member behind the component, when
    /// the component maps to one (int) — the hook obligation policies use
    /// to aim a quench at the offending publisher.
    pub const HEALTH_MEMBER: &str = "health.member";
    /// Event type for peer-supervision protocol traffic between cells:
    /// heartbeat-leases, watcher claims, adoptions, releases, and the
    /// remote repair/reconcile commands an adopter issues.
    pub const SUPERVISION: &str = "smc.supervision";
    /// Attribute: the supervision message kind (string: `lease`, `claim`,
    /// `adopt`, `release`, `repair`, `reconcile`).
    pub const SUP_KIND: &str = "supervision.kind";
    /// Attribute: member id of the cell the message is about (int).
    pub const SUP_TARGET: &str = "supervision.target";
    /// Attribute: member id of the cell speaking — the lease holder,
    /// claimant, or adopter (int).
    pub const SUP_SENDER: &str = "supervision.sender";
    /// Attribute: heartbeat-lease time-to-live in microseconds (int).
    pub const SUP_TTL: &str = "supervision.ttl";
    /// Attribute: the component a remote repair command targets (string).
    pub const SUP_COMPONENT: &str = "supervision.component";
    /// Attribute: the repair attempt number (int).
    pub const SUP_ATTEMPT: &str = "supervision.attempt";
    /// Event type for telemetry-plane traffic: delta-encoded metric
    /// snapshots, exported trace hops and SLO burn reports flowing from
    /// every cell to the ward observer over the bus itself.
    pub const TELEMETRY: &str = "smc.telemetry";
    /// Attribute: the telemetry message kind (string: `metric-delta`,
    /// `trace-export`, `slo-report`).
    pub const TEL_KIND: &str = "telemetry.kind";
    /// Attribute: member id of the exporting cell (int).
    pub const TEL_CELL: &str = "telemetry.cell";
    /// Attribute: the cell's export sequence number (int).
    pub const TEL_SEQ: &str = "telemetry.seq";
    /// Attribute: SLO name an `slo-report` speaks about (string).
    pub const TEL_SLO: &str = "telemetry.slo";
    /// Attribute: burn-rate window in microseconds (int).
    pub const TEL_WINDOW: &str = "telemetry.window";
    /// Attribute: burn rate ×1000 (int; 1000 = exactly on budget).
    pub const TEL_BURN: &str = "telemetry.burn";
    /// Attribute: remaining error budget ×1000 (int).
    pub const TEL_BUDGET: &str = "telemetry.budget";
    /// Attribute: raw episode trace id, attached to supervision
    /// `repair` events so the repaired cell can record its hops under
    /// the same journey the adopter is narrating (int).
    pub const TEL_EPISODE: &str = "telemetry.episode";
}

/// Why a member was purged from the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PurgeReason {
    /// The member announced it was leaving.
    Left,
    /// The member's lease expired (silence beyond the grace period).
    LeaseExpired,
    /// An operator or policy evicted the member.
    Evicted,
}

impl fmt::Display for PurgeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PurgeReason::Left => "left",
            PurgeReason::LeaseExpired => "lease-expired",
            PurgeReason::Evicted => "evicted",
        };
        f.write_str(s)
    }
}

/// Static description of a service, supplied when it joins the cell.
///
/// Carried in join requests and `New Member` events; the device type keys
/// proxy bootstrap (which proxy class to create) and policy deployment
/// (which policies to push to the newcomer).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceInfo {
    /// The service's transport-derived identifier.
    pub id: ServiceId,
    /// Device type, e.g. `"sensor.heart-rate"` or `"actuator.insulin-pump"`.
    pub device_type: String,
    /// Human-readable name, e.g. `"chest strap #2"`.
    pub display_name: String,
    /// Management roles the service holds, e.g. `["sensor"]`.
    pub roles: Vec<String>,
}

impl ServiceInfo {
    /// Creates a service description.
    pub fn new(id: ServiceId, device_type: impl Into<String>) -> Self {
        ServiceInfo {
            id,
            device_type: device_type.into(),
            display_name: String::new(),
            roles: Vec::new(),
        }
    }

    /// Sets the display name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.display_name = name.into();
        self
    }

    /// Adds a role (builder style).
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.roles.push(role.into());
        self
    }

    /// Returns `true` if the service holds `role`.
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.iter().any(|r| r == role)
    }
}

impl Encode for ServiceInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        buf.put_str(&self.device_type);
        buf.put_str(&self.display_name);
        buf.put_u16_le(self.roles.len() as u16);
        for role in &self.roles {
            buf.put_str(role);
        }
    }
}

impl Decode for ServiceInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = ServiceId::decode(r)?;
        let device_type = r.str()?;
        let display_name = r.str()?;
        let n = r.collection_len()?;
        let mut roles = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            roles.push(r.str()?);
        }
        Ok(ServiceInfo {
            id,
            device_type,
            display_name,
            roles,
        })
    }
}

/// Builds the `New Member` event the discovery service publishes when it
/// admits `info` into the cell.
pub fn new_member_event(info: &ServiceInfo) -> Event {
    Event::builder(wellknown::NEW_MEMBER)
        .attr(wellknown::MEMBER_ID, info.id.raw() as i64)
        .attr(wellknown::DEVICE_TYPE, info.device_type.clone())
        .attr(wellknown::DISPLAY_NAME, info.display_name.clone())
        .attr(wellknown::ROLES, info.roles.join(","))
        .build()
}

/// Builds the `Purge Member` event announcing that `member` has left for
/// good.
pub fn purge_member_event(member: ServiceId, reason: PurgeReason) -> Event {
    Event::builder(wellknown::PURGE_MEMBER)
        .attr(wellknown::MEMBER_ID, member.raw() as i64)
        .attr(wellknown::REASON, reason.to_string())
        .build()
}

/// Extracts the member id carried by a membership event, if present.
pub fn member_id_of(event: &Event) -> Option<ServiceId> {
    event
        .attr(wellknown::MEMBER_ID)
        .and_then(|v| v.as_int())
        .map(|raw| ServiceId::from_raw(raw as u64))
}

/// Extracts the device type carried by a `New Member` event, if present.
pub fn device_type_of(event: &Event) -> Option<&str> {
    event.attr(wellknown::DEVICE_TYPE).and_then(|v| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    #[test]
    fn service_info_round_trip() {
        let info = ServiceInfo::new(ServiceId::from_raw(5), "sensor.hr")
            .with_name("chest strap")
            .with_role("sensor")
            .with_role("alarm-source");
        let back: ServiceInfo = from_bytes(&to_bytes(&info)).unwrap();
        assert_eq!(back, info);
        assert!(back.has_role("sensor"));
        assert!(!back.has_role("nurse"));
    }

    #[test]
    fn new_member_event_carries_identity() {
        let info = ServiceInfo::new(ServiceId::from_raw(0xBEEF), "sensor.spo2").with_role("sensor");
        let e = new_member_event(&info);
        assert_eq!(e.event_type(), wellknown::NEW_MEMBER);
        assert_eq!(member_id_of(&e), Some(ServiceId::from_raw(0xBEEF)));
        assert_eq!(device_type_of(&e), Some("sensor.spo2"));
        assert_eq!(
            e.attr(wellknown::ROLES).and_then(|v| v.as_str()),
            Some("sensor")
        );
    }

    #[test]
    fn purge_member_event_carries_reason() {
        let e = purge_member_event(ServiceId::from_raw(7), PurgeReason::LeaseExpired);
        assert_eq!(e.event_type(), wellknown::PURGE_MEMBER);
        assert_eq!(member_id_of(&e), Some(ServiceId::from_raw(7)));
        assert_eq!(
            e.attr(wellknown::REASON).and_then(|v| v.as_str()),
            Some("lease-expired")
        );
    }

    #[test]
    fn member_id_of_rejects_foreign_events() {
        let e = Event::new("random");
        assert_eq!(member_id_of(&e), None);
        assert_eq!(device_type_of(&e), None);
    }

    #[test]
    fn purge_reason_display() {
        assert_eq!(PurgeReason::Left.to_string(), "left");
        assert_eq!(PurgeReason::Evicted.to_string(), "evicted");
    }
}
