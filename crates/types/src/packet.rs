//! Application-level packets exchanged between SMC components.
//!
//! These are the messages that travel *inside* the transport layer's
//! reliable frames: publish/ack, subscribe/ack, discovery beacons and the
//! join handshake, heartbeats, quench control and raw device data.

use bytes::{BufMut, BytesMut};

use crate::codec::{Decode, Encode, Reader, WriteExt};
use crate::error::CodecError;
use crate::event::{AttributeSet, Event};
use crate::filter::Filter;
use crate::id::{CellId, EventId, ServiceId, SubscriptionId};
use crate::member::ServiceInfo;
use crate::trace::TraceId;

/// An application-level packet.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Packet {
    /// Publisher (via its proxy) hands an event to the bus.
    Publish {
        /// The published event.
        event: Event,
        /// Causal trace id minted at publish time; [`TraceId::NONE`] on
        /// frames from pre-trace peers (the field is a trailing optional
        /// on the wire).
        trace: TraceId,
    },
    /// Bus confirms it accepted the published event.
    PublishAck(EventId),
    /// Bus pushes a matching event to a subscriber.
    Deliver {
        /// The delivered event.
        event: Event,
        /// Causal trace id carried from the publish;
        /// [`TraceId::NONE`] on frames from pre-trace peers.
        trace: TraceId,
    },
    /// Subscriber confirms it processed a delivered event; the proxy may
    /// now drop it from the outbound queue.
    DeliverAck(EventId),
    /// Register a subscription; `request_id` correlates the ack.
    Subscribe {
        /// Caller-chosen correlation id.
        request_id: u64,
        /// The content filter to register.
        filter: Filter,
    },
    /// Bus acknowledges a subscription and reports its id.
    SubscribeAck {
        /// Echo of the request's correlation id.
        request_id: u64,
        /// The bus-assigned subscription id.
        subscription: SubscriptionId,
    },
    /// Remove a subscription.
    Unsubscribe(SubscriptionId),
    /// Bus acknowledges removal of a subscription.
    UnsubscribeAck(SubscriptionId),
    /// Discovery service presence beacon (broadcast).
    Beacon {
        /// The announcing cell.
        cell: CellId,
        /// Unicast id of the discovery service.
        discovery: ServiceId,
        /// Monotonic beacon sequence number.
        seq: u64,
    },
    /// A device asks to join the cell.
    JoinRequest {
        /// Who is joining.
        info: ServiceInfo,
        /// Application-specific authentication token.
        auth_token: Vec<u8>,
    },
    /// Discovery's verdict on a join request.
    JoinResponse {
        /// Whether the device was admitted.
        accepted: bool,
        /// Reason, when rejected.
        reason: String,
        /// The cell joined.
        cell: CellId,
        /// Membership lease duration in milliseconds; the member must
        /// heartbeat before it elapses.
        lease_millis: u64,
        /// The endpoint of the cell's event bus, which the member talks
        /// to for publish/subscribe.
        bus: ServiceId,
    },
    /// Member liveness heartbeat (lease renewal).
    Heartbeat {
        /// The renewing member.
        member: ServiceId,
        /// Monotonic heartbeat sequence.
        seq: u64,
    },
    /// Discovery confirms a heartbeat.
    HeartbeatAck {
        /// Echo of the heartbeat sequence.
        seq: u64,
    },
    /// A member announces it is leaving the cell.
    Leave {
        /// The departing member.
        member: ServiceId,
        /// Free-form reason.
        reason: String,
    },
    /// Bus tells a publisher proxy to stop (or resume) producing events
    /// because no (or some) subscriptions match — Elvin-style quenching.
    Quench {
        /// `true` = stop publishing, `false` = resume.
        enable: bool,
    },
    /// A management command directed at a member (e.g. change a threshold).
    Command {
        /// The target member.
        target: ServiceId,
        /// Command name.
        name: String,
        /// Command arguments.
        args: AttributeSet,
    },
    /// Target confirms execution of a command.
    CommandAck {
        /// The member that executed the command.
        target: ServiceId,
        /// Echo of the command name.
        name: String,
    },
    /// Opaque device-protocol bytes relayed between a device and its proxy.
    Raw(Vec<u8>),
    /// A publisher registers what it intends to publish, enabling
    /// Elvin-style quenching when nothing subscribed overlaps.
    Advertise {
        /// Caller-chosen correlation id.
        request_id: u64,
        /// Description of the events the publisher produces.
        filter: Filter,
    },
    /// Bus confirms an advertisement and reports the current interest.
    AdvertiseAck {
        /// Echo of the request's correlation id.
        request_id: u64,
        /// `true` if at least one subscription overlaps the advertisement.
        interested: bool,
    },
    /// Policy service pushes a policy bundle to a member. The payload is
    /// an encoded policy set; the policy crate owns the payload format.
    PolicyDeploy {
        /// Encoded policy set.
        payload: Vec<u8>,
    },
    /// The cell reports a protocol-level failure to a member.
    Error {
        /// What the error concerns (e.g. an event id or request id).
        about: String,
        /// Human-readable message.
        message: String,
    },
}

const P_PUBLISH: u8 = 1;
const P_PUBLISH_ACK: u8 = 2;
const P_DELIVER: u8 = 3;
const P_DELIVER_ACK: u8 = 4;
const P_SUBSCRIBE: u8 = 5;
const P_SUBSCRIBE_ACK: u8 = 6;
const P_UNSUBSCRIBE: u8 = 7;
const P_UNSUBSCRIBE_ACK: u8 = 8;
const P_BEACON: u8 = 9;
const P_JOIN_REQUEST: u8 = 10;
const P_JOIN_RESPONSE: u8 = 11;
const P_HEARTBEAT: u8 = 12;
const P_HEARTBEAT_ACK: u8 = 13;
const P_LEAVE: u8 = 14;
const P_QUENCH: u8 = 15;
const P_COMMAND: u8 = 16;
const P_COMMAND_ACK: u8 = 17;
const P_RAW: u8 = 18;
const P_ADVERTISE: u8 = 19;
const P_ADVERTISE_ACK: u8 = 20;
const P_POLICY_DEPLOY: u8 = 21;
const P_ERROR: u8 = 22;

impl Packet {
    /// An untraced `Publish` packet (the trace id, if wanted, can always
    /// be derived later via [`TraceId::for_event`]).
    pub fn publish(event: Event) -> Packet {
        Packet::Publish {
            event,
            trace: TraceId::NONE,
        }
    }

    /// An untraced `Deliver` packet.
    pub fn deliver(event: Event) -> Packet {
        Packet::Deliver {
            event,
            trace: TraceId::NONE,
        }
    }

    /// Short packet-kind name for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Packet::Publish { .. } => "publish",
            Packet::PublishAck(_) => "publish-ack",
            Packet::Deliver { .. } => "deliver",
            Packet::DeliverAck(_) => "deliver-ack",
            Packet::Subscribe { .. } => "subscribe",
            Packet::SubscribeAck { .. } => "subscribe-ack",
            Packet::Unsubscribe(_) => "unsubscribe",
            Packet::UnsubscribeAck(_) => "unsubscribe-ack",
            Packet::Beacon { .. } => "beacon",
            Packet::JoinRequest { .. } => "join-request",
            Packet::JoinResponse { .. } => "join-response",
            Packet::Heartbeat { .. } => "heartbeat",
            Packet::HeartbeatAck { .. } => "heartbeat-ack",
            Packet::Leave { .. } => "leave",
            Packet::Quench { .. } => "quench",
            Packet::Command { .. } => "command",
            Packet::CommandAck { .. } => "command-ack",
            Packet::Raw(_) => "raw",
            Packet::Advertise { .. } => "advertise",
            Packet::AdvertiseAck { .. } => "advertise-ack",
            Packet::PolicyDeploy { .. } => "policy-deploy",
            Packet::Error { .. } => "error",
        }
    }
}

impl Encode for Packet {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Packet::Publish { event, trace } => {
                buf.put_u8(P_PUBLISH);
                event.encode(buf);
                // Trailing optional: omitted entirely when untraced, so
                // the NONE encoding is byte-identical to pre-trace frames.
                if trace.is_some() {
                    buf.put_u64_le(trace.raw());
                }
            }
            Packet::PublishAck(id) => {
                buf.put_u8(P_PUBLISH_ACK);
                id.encode(buf);
            }
            Packet::Deliver { event, trace } => {
                buf.put_u8(P_DELIVER);
                event.encode(buf);
                if trace.is_some() {
                    buf.put_u64_le(trace.raw());
                }
            }
            Packet::DeliverAck(id) => {
                buf.put_u8(P_DELIVER_ACK);
                id.encode(buf);
            }
            Packet::Subscribe { request_id, filter } => {
                buf.put_u8(P_SUBSCRIBE);
                buf.put_u64_le(*request_id);
                filter.encode(buf);
            }
            Packet::SubscribeAck {
                request_id,
                subscription,
            } => {
                buf.put_u8(P_SUBSCRIBE_ACK);
                buf.put_u64_le(*request_id);
                subscription.encode(buf);
            }
            Packet::Unsubscribe(id) => {
                buf.put_u8(P_UNSUBSCRIBE);
                id.encode(buf);
            }
            Packet::UnsubscribeAck(id) => {
                buf.put_u8(P_UNSUBSCRIBE_ACK);
                id.encode(buf);
            }
            Packet::Beacon {
                cell,
                discovery,
                seq,
            } => {
                buf.put_u8(P_BEACON);
                cell.encode(buf);
                discovery.encode(buf);
                buf.put_u64_le(*seq);
            }
            Packet::JoinRequest { info, auth_token } => {
                buf.put_u8(P_JOIN_REQUEST);
                info.encode(buf);
                buf.put_bytes_field(auth_token);
            }
            Packet::JoinResponse {
                accepted,
                reason,
                cell,
                lease_millis,
                bus,
            } => {
                buf.put_u8(P_JOIN_RESPONSE);
                buf.put_bool(*accepted);
                buf.put_str(reason);
                cell.encode(buf);
                buf.put_u64_le(*lease_millis);
                bus.encode(buf);
            }
            Packet::Heartbeat { member, seq } => {
                buf.put_u8(P_HEARTBEAT);
                member.encode(buf);
                buf.put_u64_le(*seq);
            }
            Packet::HeartbeatAck { seq } => {
                buf.put_u8(P_HEARTBEAT_ACK);
                buf.put_u64_le(*seq);
            }
            Packet::Leave { member, reason } => {
                buf.put_u8(P_LEAVE);
                member.encode(buf);
                buf.put_str(reason);
            }
            Packet::Quench { enable } => {
                buf.put_u8(P_QUENCH);
                buf.put_bool(*enable);
            }
            Packet::Command { target, name, args } => {
                buf.put_u8(P_COMMAND);
                target.encode(buf);
                buf.put_str(name);
                args.encode(buf);
            }
            Packet::CommandAck { target, name } => {
                buf.put_u8(P_COMMAND_ACK);
                target.encode(buf);
                buf.put_str(name);
            }
            Packet::Raw(bytes) => {
                buf.put_u8(P_RAW);
                buf.put_bytes_field(bytes);
            }
            Packet::Advertise { request_id, filter } => {
                buf.put_u8(P_ADVERTISE);
                buf.put_u64_le(*request_id);
                filter.encode(buf);
            }
            Packet::AdvertiseAck {
                request_id,
                interested,
            } => {
                buf.put_u8(P_ADVERTISE_ACK);
                buf.put_u64_le(*request_id);
                buf.put_bool(*interested);
            }
            Packet::PolicyDeploy { payload } => {
                buf.put_u8(P_POLICY_DEPLOY);
                buf.put_bytes_field(payload);
            }
            Packet::Error { about, message } => {
                buf.put_u8(P_ERROR);
                buf.put_str(about);
                buf.put_str(message);
            }
        }
    }
}

impl Decode for Packet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.u8()?;
        Ok(match tag {
            P_PUBLISH => Packet::Publish {
                event: Event::decode(r)?,
                trace: decode_trailing_trace(r)?,
            },
            P_PUBLISH_ACK => Packet::PublishAck(EventId::decode(r)?),
            P_DELIVER => Packet::Deliver {
                event: Event::decode(r)?,
                trace: decode_trailing_trace(r)?,
            },
            P_DELIVER_ACK => Packet::DeliverAck(EventId::decode(r)?),
            P_SUBSCRIBE => Packet::Subscribe {
                request_id: r.u64()?,
                filter: Filter::decode(r)?,
            },
            P_SUBSCRIBE_ACK => Packet::SubscribeAck {
                request_id: r.u64()?,
                subscription: SubscriptionId::decode(r)?,
            },
            P_UNSUBSCRIBE => Packet::Unsubscribe(SubscriptionId::decode(r)?),
            P_UNSUBSCRIBE_ACK => Packet::UnsubscribeAck(SubscriptionId::decode(r)?),
            P_BEACON => Packet::Beacon {
                cell: CellId::decode(r)?,
                discovery: ServiceId::decode(r)?,
                seq: r.u64()?,
            },
            P_JOIN_REQUEST => Packet::JoinRequest {
                info: ServiceInfo::decode(r)?,
                auth_token: r.bytes()?,
            },
            P_JOIN_RESPONSE => Packet::JoinResponse {
                accepted: r.bool()?,
                reason: r.str()?,
                cell: CellId::decode(r)?,
                lease_millis: r.u64()?,
                bus: ServiceId::decode(r)?,
            },
            P_HEARTBEAT => Packet::Heartbeat {
                member: ServiceId::decode(r)?,
                seq: r.u64()?,
            },
            P_HEARTBEAT_ACK => Packet::HeartbeatAck { seq: r.u64()? },
            P_LEAVE => Packet::Leave {
                member: ServiceId::decode(r)?,
                reason: r.str()?,
            },
            P_QUENCH => Packet::Quench { enable: r.bool()? },
            P_COMMAND => Packet::Command {
                target: ServiceId::decode(r)?,
                name: r.str()?,
                args: AttributeSet::decode(r)?,
            },
            P_COMMAND_ACK => Packet::CommandAck {
                target: ServiceId::decode(r)?,
                name: r.str()?,
            },
            P_RAW => Packet::Raw(r.bytes()?),
            P_ADVERTISE => Packet::Advertise {
                request_id: r.u64()?,
                filter: Filter::decode(r)?,
            },
            P_ADVERTISE_ACK => Packet::AdvertiseAck {
                request_id: r.u64()?,
                interested: r.bool()?,
            },
            P_POLICY_DEPLOY => Packet::PolicyDeploy {
                payload: r.bytes()?,
            },
            P_ERROR => Packet::Error {
                about: r.str()?,
                message: r.str()?,
            },
            t => {
                return Err(CodecError::BadTag {
                    what: "packet",
                    tag: t,
                })
            }
        })
    }
}

/// Encodes a [`Packet::Deliver`] frame straight from a borrowed event —
/// byte-identical to `to_bytes(&Packet::Deliver { event, trace })` but
/// without cloning the event into a packet first.
///
/// This is the fan-out hot path: the bus encodes one delivery frame per
/// publish and shares it across every remote subscriber, so the per-
/// subscriber cost is a reference-count bump instead of an event clone
/// plus a fresh encode.
pub fn encode_deliver(event: &Event, trace: TraceId) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(P_DELIVER);
    event.encode(&mut buf);
    if trace.is_some() {
        buf.put_u64_le(trace.raw());
    }
    buf.to_vec()
}

/// Appends one [`Packet::Deliver`] frame to `arena`, returning the byte
/// range it occupies — byte-identical per frame to [`encode_deliver`].
///
/// This is the batched fan-out path: the bus encodes a whole publish
/// burst into one arena, wraps it in a single shared buffer, and slices
/// each event's frame back out by range, so a batch costs one buffer
/// allocation instead of one (plus a copy) per event.
pub fn encode_deliver_arena(event: &Event, trace: TraceId, arena: &mut BytesMut) -> (usize, usize) {
    let start = arena.len();
    arena.put_u8(P_DELIVER);
    event.encode(arena);
    if trace.is_some() {
        arena.put_u64_le(trace.raw());
    }
    (start, arena.len())
}

/// Reads the trailing optional trace id: old (pre-trace) frames end at the
/// event, new frames append exactly 8 more bytes.
fn decode_trailing_trace(r: &mut Reader<'_>) -> Result<TraceId, CodecError> {
    if r.remaining() >= 8 {
        Ok(TraceId::from_raw(r.u64()?))
    } else {
        Ok(TraceId::NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use crate::filter::Op;

    fn round_trip(p: Packet) {
        let bytes = to_bytes(&p);
        let back: Packet = from_bytes(&bytes).expect("decode");
        assert_eq!(back, p);
    }

    fn sample_event() -> Event {
        Event::builder("t")
            .attr("a", 1i64)
            .publisher(ServiceId::from_raw(9))
            .seq(4)
            .build()
    }

    /// `encode_deliver` must stay byte-identical to the packet encoder —
    /// remote subscribers decode it as an ordinary `Packet::Deliver`.
    #[test]
    fn encode_deliver_matches_packet_encoding() {
        let event = Event::builder("t.hot")
            .attr("a", 1i64)
            .publisher(ServiceId::from_raw(9))
            .seq(4)
            .payload(vec![7u8; 32])
            .build();
        for trace in [TraceId::NONE, TraceId::for_event(ServiceId::from_raw(9), 4)] {
            let direct = encode_deliver(&event, trace);
            let via_packet = to_bytes(&Packet::Deliver {
                event: event.clone(),
                trace,
            });
            assert_eq!(direct, via_packet);
        }
    }

    /// Each arena-encoded frame must be byte-identical to a standalone
    /// `encode_deliver` — remote subscribers cannot tell a batched
    /// publish from a singular one.
    #[test]
    fn encode_deliver_arena_slices_match_singular_encoding() {
        let events: Vec<Event> = (0..3)
            .map(|i| {
                Event::builder("t.hot")
                    .attr("a", i as i64)
                    .publisher(ServiceId::from_raw(9))
                    .seq(i)
                    .payload(vec![i as u8; 8 + i as usize])
                    .build()
            })
            .collect();
        let mut arena = BytesMut::new();
        let mut ranges = Vec::new();
        for (i, event) in events.iter().enumerate() {
            let trace = if i == 1 {
                TraceId::NONE
            } else {
                TraceId::for_event(event.publisher(), event.seq())
            };
            ranges.push((trace, encode_deliver_arena(event, trace, &mut arena)));
        }
        for (event, (trace, (start, end))) in events.iter().zip(&ranges) {
            assert_eq!(&arena[*start..*end], &encode_deliver(event, *trace)[..]);
        }
        // Frames tile the arena exactly: no gaps, no overlap.
        assert_eq!(ranges[0].1 .0, 0);
        assert_eq!(ranges[0].1 .1, ranges[1].1 .0);
        assert_eq!(ranges[1].1 .1, ranges[2].1 .0);
        assert_eq!(ranges[2].1 .1, arena.len());
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Packet::publish(sample_event()));
        round_trip(Packet::Publish {
            event: sample_event(),
            trace: TraceId::for_event(ServiceId::from_raw(9), 4),
        });
        round_trip(Packet::PublishAck(EventId::new(ServiceId::from_raw(9), 4)));
        round_trip(Packet::deliver(sample_event()));
        round_trip(Packet::Deliver {
            event: sample_event(),
            trace: TraceId::from_raw(0xDEAD_BEEF),
        });
        round_trip(Packet::DeliverAck(EventId::new(ServiceId::from_raw(9), 4)));
        round_trip(Packet::Subscribe {
            request_id: 11,
            filter: Filter::for_type("t").with(("a", Op::Ge, 1i64)),
        });
        round_trip(Packet::SubscribeAck {
            request_id: 11,
            subscription: SubscriptionId(3),
        });
        round_trip(Packet::Unsubscribe(SubscriptionId(3)));
        round_trip(Packet::UnsubscribeAck(SubscriptionId(3)));
        round_trip(Packet::Beacon {
            cell: CellId(1),
            discovery: ServiceId::from_raw(2),
            seq: 77,
        });
        round_trip(Packet::JoinRequest {
            info: ServiceInfo::new(ServiceId::from_raw(5), "sensor.hr").with_role("sensor"),
            auth_token: vec![1, 2, 3],
        });
        round_trip(Packet::JoinResponse {
            accepted: false,
            reason: "bad token".into(),
            cell: CellId(1),
            lease_millis: 30_000,
            bus: ServiceId::from_raw(0xB05),
        });
        round_trip(Packet::Heartbeat {
            member: ServiceId::from_raw(5),
            seq: 8,
        });
        round_trip(Packet::HeartbeatAck { seq: 8 });
        round_trip(Packet::Leave {
            member: ServiceId::from_raw(5),
            reason: "off".into(),
        });
        round_trip(Packet::Quench { enable: true });
        let mut args = AttributeSet::new();
        args.insert("threshold", 120i64);
        round_trip(Packet::Command {
            target: ServiceId::from_raw(5),
            name: "set-threshold".into(),
            args,
        });
        round_trip(Packet::CommandAck {
            target: ServiceId::from_raw(5),
            name: "set-threshold".into(),
        });
        round_trip(Packet::Raw(vec![0u8; 64]));
        round_trip(Packet::Advertise {
            request_id: 4,
            filter: Filter::for_type("smc.sensor.reading"),
        });
        round_trip(Packet::AdvertiseAck {
            request_id: 4,
            interested: true,
        });
        round_trip(Packet::PolicyDeploy {
            payload: vec![1, 2, 3],
        });
        round_trip(Packet::Error {
            about: "evt-9".into(),
            message: "denied".into(),
        });
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            Packet::publish(sample_event()).kind(),
            Packet::Quench { enable: true }.kind(),
            Packet::Raw(vec![]).kind(),
        ];
        assert_eq!(
            kinds.len(),
            kinds.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            from_bytes::<Packet>(&[0xEE]),
            Err(CodecError::BadTag { what: "packet", .. })
        ));
    }

    /// Satellite: `TraceId` rides the packet header and old (trace-less)
    /// frames still decode — the untraced encoding is byte-identical to
    /// the pre-trace wire format.
    #[test]
    fn trace_id_round_trips_and_old_frames_decode() {
        let trace = TraceId::for_event(ServiceId::from_raw(9), 4);
        let traced = to_bytes(&Packet::Publish {
            event: sample_event(),
            trace,
        });
        let untraced = to_bytes(&Packet::publish(sample_event()));
        assert_eq!(traced.len(), untraced.len() + 8, "trace is a trailing u64");

        // New frame: the trace survives the round trip.
        match from_bytes::<Packet>(&traced).expect("decode traced") {
            Packet::Publish { event, trace: t } => {
                assert_eq!(event, sample_event());
                assert_eq!(t, trace);
            }
            other => panic!("unexpected packet {other:?}"),
        }

        // Old frame (exactly the untraced bytes): decodes with NONE.
        match from_bytes::<Packet>(&untraced).expect("decode untraced") {
            Packet::Publish { trace: t, .. } => assert_eq!(t, TraceId::NONE),
            other => panic!("unexpected packet {other:?}"),
        }

        // Deliver behaves identically.
        let d = to_bytes(&Packet::Deliver {
            event: sample_event(),
            trace,
        });
        match from_bytes::<Packet>(&d).expect("decode deliver") {
            Packet::Deliver { trace: t, .. } => assert_eq!(t, trace),
            other => panic!("unexpected packet {other:?}"),
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let p = Packet::JoinRequest {
            info: ServiceInfo::new(ServiceId::from_raw(5), "sensor.hr"),
            auth_token: vec![7; 9],
        };
        let bytes = to_bytes(&p);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Packet>(&bytes[..cut]).is_err());
        }
    }
}
