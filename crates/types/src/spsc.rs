//! A bounded single-producer / single-consumer ring buffer.
//!
//! This is the stage-coupling primitive of the sharded bus: each
//! publisher handle owns the producer side of one ring, the shard worker
//! that drains it owns the consumer side. One producer plus one consumer
//! means every slot is touched by exactly two threads, so the whole
//! queue needs two atomic counters and no locks — a push is one store,
//! a pop is one load-compare-store, and per-publisher FIFO order falls
//! out of the ring being a ring.
//!
//! The producer/consumer split is enforced at compile time: [`ring`]
//! returns a non-cloneable [`SpscSender`] / [`SpscReceiver`] pair whose
//! mutating methods take `&mut self`, so a second producer (or consumer)
//! cannot exist without `unsafe`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The shared ring storage. Not directly constructible — use [`ring`].
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// Next slot the consumer will pop. Monotonic; wraps via `mask`.
    head: AtomicUsize,
    /// Next slot the producer will push. Monotonic; wraps via `mask`.
    tail: AtomicUsize,
}

// SAFETY: the sender/receiver handles guarantee at most one producer and
// one consumer; slots are published producer→consumer via the
// release-store on `tail` (and reclaimed consumer→producer via `head`).
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Number of items currently queued.
    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = &self.slots[i & self.mask];
            // SAFETY: slots in `head..tail` hold initialised values that
            // no handle can touch any more (both are gone: we are in Drop
            // of the last Arc).
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

impl<T> std::fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

/// Creates a bounded SPSC ring holding at most `capacity` items
/// (rounded up to the next power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(SpscRing {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscSender {
            ring: Arc::clone(&inner),
        },
        SpscReceiver { ring: inner },
    )
}

/// The producer side of a ring. Exactly one exists per ring.
#[derive(Debug)]
pub struct SpscSender<T> {
    ring: Arc<SpscRing<T>>,
}

impl<T> SpscSender<T> {
    /// Enqueues `value`, or returns it when the ring is full.
    ///
    /// # Errors
    ///
    /// `Err(value)` if the ring is at capacity — the caller decides
    /// whether to spin, yield or drop (bounded rings are the
    /// backpressure mechanism, not an error condition).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > ring.mask {
            return Err(value);
        }
        let slot = &ring.slots[tail & ring.mask];
        // SAFETY: `tail - head <= mask` means the consumer has fully
        // vacated this slot; we are the only producer.
        unsafe { (*slot.get()).write(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if a push would currently fail.
    pub fn is_full(&self) -> bool {
        self.len() > self.ring.mask
    }

    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Returns `true` if the consumer side has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }
}

/// The consumer side of a ring. Exactly one exists per ring.
#[derive(Debug)]
pub struct SpscReceiver<T> {
    ring: Arc<SpscRing<T>>,
}

impl<T> SpscReceiver<T> {
    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.slots[head & ring.mask];
        // SAFETY: `head < tail` means the producer release-published this
        // slot; we are the only consumer.
        let value = unsafe { (*slot.get()).assume_init_read() };
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Drains up to `max` items into `out`, returning how many were
    /// moved. One acquire-load of `tail` covers the whole drain — this
    /// is the shard worker's natural batching point.
    pub fn pop_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        let take = tail.wrapping_sub(head).min(max);
        for i in 0..take {
            let slot = &ring.slots[(head.wrapping_add(i)) & ring.mask];
            // SAFETY: as in `pop` — all of `head..tail` is published.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        if take > 0 {
            ring.head.store(head.wrapping_add(take), Ordering::Release);
        }
        take
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Returns `true` if the producer side has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_none() {
        let (tx, mut rx) = ring::<u64>(4);
        assert!(rx.pop().is_none());
        assert!(tx.is_empty());
        assert!(rx.is_empty());
        assert_eq!(tx.capacity(), 4);
        assert_eq!(rx.capacity(), 4);
    }

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = ring(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn full_ring_rejects_push_and_returns_the_value() {
        let (mut tx, mut rx) = ring(2);
        tx.push('a').unwrap();
        tx.push('b').unwrap();
        assert!(tx.is_full());
        assert_eq!(tx.push('c'), Err('c'));
        // Draining one slot re-admits exactly one push.
        assert_eq!(rx.pop(), Some('a'));
        tx.push('c').unwrap();
        assert_eq!(tx.push('d'), Err('d'));
    }

    /// The monotonic head/tail counters index via the mask: pushing and
    /// popping many multiples of the capacity must keep order and never
    /// clobber a live slot.
    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = ring(4);
        for round in 0u64..100 {
            for i in 0..3 {
                tx.push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.pop(), Some(round * 10 + i), "round {round}");
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn pop_into_drains_in_order_up_to_max() {
        let (mut tx, mut rx) = ring(8);
        for i in 0..6 {
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.pop_into(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.pop_into(&mut out, 100), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn disconnect_is_observable_from_both_sides() {
        let (tx, rx) = ring::<u8>(2);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        let (tx, rx) = ring::<u8>(2);
        drop(tx);
        assert!(rx.is_disconnected());
    }

    /// Queued items are dropped exactly once when both handles go away.
    #[test]
    fn dropping_the_ring_drops_queued_items() {
        let item = Arc::new(());
        let (mut tx, rx) = ring(4);
        tx.push(Arc::clone(&item)).unwrap();
        tx.push(Arc::clone(&item)).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    /// Cross-thread stress: every pushed value arrives exactly once, in
    /// order, across constant wraparound.
    #[test]
    fn cross_thread_order_and_exactly_once() {
        const N: u64 = 50_000;
        let (mut tx, mut rx) = ring(16);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expect = 0;
        let mut buf = Vec::with_capacity(16);
        while expect < N {
            buf.clear();
            if rx.pop_into(&mut buf, 16) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for &v in &buf {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }
}
