//! Events: the unit of communication on the SMC event bus.

use std::fmt;
use std::sync::Arc;

use crate::id::{EventId, ServiceId};
use crate::value::AttributeValue;

/// An immutable, reference-counted bulk payload.
///
/// Cloning a `Payload` — and therefore cloning an [`Event`] — shares the
/// underlying buffer instead of copying it. This is what makes fan-out to
/// N subscribers allocation-free: every delivered copy of an event points
/// at the same bytes. Use [`Payload::ptr_eq`] to assert sharing in tests.
///
/// ```
/// use smc_types::event::Payload;
///
/// let p = Payload::from(vec![1u8, 2, 3]);
/// let q = p.clone();
/// assert!(p.ptr_eq(&q));
/// assert_eq!(q.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Clone)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The shared empty payload. Cloning it never allocates.
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Payload(Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..]))))
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// The shared buffer itself; cloning the returned `Arc` is refcount-only.
    pub fn as_arc(&self) -> &Arc<[u8]> {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if `self` and `other` share the same buffer (not
    /// merely equal contents).
    pub fn ptr_eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Content equality; shared-buffer clones short-circuit.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Payload {}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({}B)", self.0.len())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            Payload::empty()
        } else {
            Payload(Arc::from(v))
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        if v.is_empty() {
            Payload::empty()
        } else {
            Payload(Arc::from(v))
        }
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Self {
        Payload::from(&v[..])
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Self {
        Payload::from(&v[..])
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(v: Arc<[u8]>) -> Self {
        Payload(v)
    }
}

impl From<Payload> for Arc<[u8]> {
    fn from(p: Payload) -> Self {
        p.0
    }
}

/// An ordered, name-unique set of attributes.
///
/// Attributes are kept sorted by name, which gives a canonical wire encoding
/// and lets lookups binary-search. Inserting an existing name replaces its
/// value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributeSet {
    entries: Vec<(String, AttributeValue)>,
}

impl AttributeSet {
    /// Creates an empty attribute set.
    pub fn new() -> Self {
        AttributeSet::default()
    }

    /// Inserts or replaces the attribute `name`, returning the previous
    /// value if one was present.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) -> Option<AttributeValue> {
        let name = name.into();
        let value = value.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (name, value));
                None
            }
        }
    }

    /// Returns the value of attribute `name`, if present.
    pub fn get(&self, name: &str) -> Option<&AttributeValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Removes attribute `name`, returning its value if it was present.
    pub fn remove(&mut self, name: &str) -> Option<AttributeValue> {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns `true` if attribute `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttributeValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }
}

impl FromIterator<(String, AttributeValue)> for AttributeSet {
    fn from_iter<T: IntoIterator<Item = (String, AttributeValue)>>(iter: T) -> Self {
        let mut set = AttributeSet::new();
        for (n, v) in iter {
            set.insert(n, v);
        }
        set
    }
}

impl Extend<(String, AttributeValue)> for AttributeSet {
    fn extend<T: IntoIterator<Item = (String, AttributeValue)>>(&mut self, iter: T) {
        for (n, v) in iter {
            self.insert(n, v);
        }
    }
}

/// An event as carried over the bus.
///
/// An event has a *type name* (e.g. `"smc.sensor.reading"`), a set of typed
/// attributes, the identity of its publisher, a publisher-local sequence
/// number (assigned by the publisher's proxy and used for per-sender FIFO
/// ordering and exactly-once suppression), a timestamp, and an optional
/// opaque payload for bulk data.
///
/// ```
/// use smc_types::{Event, ServiceId};
///
/// let event = Event::builder("smc.sensor.reading")
///     .attr("sensor", "heart-rate")
///     .attr("bpm", 72i64)
///     .publisher(ServiceId::from_raw(0xA))
///     .build();
/// assert_eq!(event.attributes().get("bpm").and_then(|v| v.as_int()), Some(72));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Event {
    event_type: String,
    attributes: AttributeSet,
    publisher: ServiceId,
    seq: u64,
    timestamp_micros: u64,
    payload: Payload,
}

impl Event {
    /// Starts building an event of type `event_type`.
    pub fn builder(event_type: impl Into<String>) -> EventBuilder {
        EventBuilder {
            event: Event {
                event_type: event_type.into(),
                ..Event::default()
            },
        }
    }

    /// Creates an event with a type name and no attributes.
    pub fn new(event_type: impl Into<String>) -> Self {
        Event::builder(event_type).build()
    }

    /// The event's type name.
    pub fn event_type(&self) -> &str {
        &self.event_type
    }

    /// The event's attributes.
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Mutable access to the attributes.
    pub fn attributes_mut(&mut self) -> &mut AttributeSet {
        &mut self.attributes
    }

    /// The publishing service.
    pub fn publisher(&self) -> ServiceId {
        self.publisher
    }

    /// The publisher-local sequence number (0 until stamped by a proxy).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The globally unique identifier of this event.
    pub fn id(&self) -> EventId {
        EventId::new(self.publisher, self.seq)
    }

    /// The publication timestamp in microseconds.
    pub fn timestamp_micros(&self) -> u64 {
        self.timestamp_micros
    }

    /// The opaque bulk payload (possibly empty).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The shared payload handle. Cloning it (or the whole event) shares
    /// the underlying buffer — see [`Payload`].
    pub fn payload_shared(&self) -> &Payload {
        &self.payload
    }

    /// Stamps publisher identity and sequence number.
    ///
    /// Proxies call this exactly once when accepting an event from a device;
    /// user code normally never needs it.
    pub fn stamp(&mut self, publisher: ServiceId, seq: u64, timestamp_micros: u64) {
        self.publisher = publisher;
        self.seq = seq;
        self.timestamp_micros = timestamp_micros;
    }

    /// Convenience: the value of attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&AttributeValue> {
        self.attributes.get(name)
    }

    /// Total approximate size of the event's variable content in bytes
    /// (type name + attribute names/values + payload). Used by throughput
    /// accounting.
    pub fn content_len(&self) -> usize {
        let attrs: usize = self
            .attributes
            .iter()
            .map(|(n, v)| {
                n.len()
                    + match v {
                        AttributeValue::Str(s) => s.len(),
                        AttributeValue::Bytes(b) => b.len(),
                        _ => 8,
                    }
            })
            .sum();
        self.event_type.len() + attrs + self.payload.len()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}](", self.event_type, self.id())?;
        for (i, (n, v)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, ")")?;
        if !self.payload.is_empty() {
            write!(f, "+{}B", self.payload.len())?;
        }
        Ok(())
    }
}

/// Builder for [`Event`] (see [`Event::builder`]).
#[derive(Debug, Clone, Default)]
pub struct EventBuilder {
    event: Event,
}

impl EventBuilder {
    /// Adds (or replaces) an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<AttributeValue>) -> Self {
        self.event.attributes.insert(name, value);
        self
    }

    /// Sets the publisher identity.
    pub fn publisher(mut self, publisher: ServiceId) -> Self {
        self.event.publisher = publisher;
        self
    }

    /// Sets the sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.event.seq = seq;
        self
    }

    /// Sets the publication timestamp in microseconds.
    pub fn timestamp_micros(mut self, micros: u64) -> Self {
        self.event.timestamp_micros = micros;
        self
    }

    /// Attaches an opaque bulk payload. Accepts `Vec<u8>`, `&[u8]`,
    /// byte arrays, or an already-shared [`Payload`]/`Arc<[u8]>`.
    pub fn payload(mut self, payload: impl Into<Payload>) -> Self {
        self.event.payload = payload.into();
        self
    }

    /// Finishes building the event.
    pub fn build(self) -> Event {
        self.event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_set_insert_get_remove() {
        let mut set = AttributeSet::new();
        assert!(set.is_empty());
        assert_eq!(set.insert("b", 2i64), None);
        assert_eq!(set.insert("a", 1i64), None);
        assert_eq!(set.insert("a", 10i64), Some(AttributeValue::Int(1)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("a"), Some(&AttributeValue::Int(10)));
        assert!(set.contains("b"));
        assert_eq!(set.remove("a"), Some(AttributeValue::Int(10)));
        assert_eq!(set.remove("a"), None);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn attribute_set_iterates_in_name_order() {
        let mut set = AttributeSet::new();
        set.insert("zeta", 1i64);
        set.insert("alpha", 2i64);
        set.insert("mid", 3i64);
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn attribute_set_from_iterator_dedups() {
        let set: AttributeSet = vec![
            ("x".to_string(), AttributeValue::Int(1)),
            ("x".to_string(), AttributeValue::Int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 1);
        assert_eq!(set.get("x"), Some(&AttributeValue::Int(2)));
    }

    #[test]
    fn builder_produces_expected_event() {
        let e = Event::builder("t.x")
            .attr("k", "v")
            .publisher(ServiceId::from_raw(5))
            .seq(9)
            .timestamp_micros(100)
            .payload(vec![1, 2, 3])
            .build();
        assert_eq!(e.event_type(), "t.x");
        assert_eq!(e.attr("k").and_then(|v| v.as_str()), Some("v"));
        assert_eq!(e.publisher(), ServiceId::from_raw(5));
        assert_eq!(e.seq(), 9);
        assert_eq!(e.timestamp_micros(), 100);
        assert_eq!(e.payload(), &[1, 2, 3]);
        assert_eq!(e.id(), EventId::new(ServiceId::from_raw(5), 9));
    }

    #[test]
    fn stamp_overwrites_identity() {
        let mut e = Event::new("t");
        e.stamp(ServiceId::from_raw(7), 3, 42);
        assert_eq!(e.publisher(), ServiceId::from_raw(7));
        assert_eq!(e.seq(), 3);
        assert_eq!(e.timestamp_micros(), 42);
    }

    #[test]
    fn content_len_counts_names_values_payload() {
        let e = Event::builder("ab") // 2
            .attr("cd", "efg") // 2 + 3
            .attr("n", 1i64) // 1 + 8
            .payload(vec![0u8; 10]) // 10
            .build();
        assert_eq!(e.content_len(), 2 + 2 + 3 + 1 + 8 + 10);
    }

    #[test]
    fn cloned_event_shares_payload_buffer() {
        let e = Event::builder("t").payload(vec![9u8; 64]).build();
        let copies: Vec<Event> = (0..8).map(|_| e.clone()).collect();
        for c in &copies {
            assert!(
                c.payload_shared().ptr_eq(e.payload_shared()),
                "clone must share, not copy, the payload buffer"
            );
        }
    }

    #[test]
    fn empty_payloads_share_one_static_buffer() {
        let a = Event::new("a");
        let b = Event::new("b");
        assert!(a.payload_shared().ptr_eq(b.payload_shared()));
        assert!(Payload::empty().ptr_eq(&Payload::from(Vec::new())));
    }

    #[test]
    fn payload_equality_is_by_content() {
        assert_eq!(Payload::from(vec![1, 2]), Payload::from(vec![1, 2]));
        assert_ne!(Payload::from(vec![1, 2]), Payload::from(vec![1, 3]));
    }

    #[test]
    fn display_contains_type_and_attrs() {
        let e = Event::builder("t")
            .attr("a", 1i64)
            .payload(vec![0u8; 4])
            .build();
        let s = e.to_string();
        assert!(s.contains("t["));
        assert!(s.contains("a=1"));
        assert!(s.contains("+4B"));
    }
}
