//! Lock-free copy-on-write snapshots for read-mostly state.
//!
//! [`SnapshotCell`] holds an `Arc<T>` that readers take with a single
//! wait-free protocol (no mutex, no writer starvation of readers) and
//! writers replace atomically. It is the hot-path primitive behind the
//! bus's route table and the tracer handles: `publish` does one
//! [`SnapshotCell::load`] where it used to take three mutexes.
//!
//! The design is a miniature RCU:
//!
//! * readers announce themselves on a counter, load the pointer, bump
//!   the `Arc` strong count, and retire — a handful of uncontended
//!   atomic operations, never a lock;
//! * a writer swaps the pointer first, then waits for the reader count
//!   to drain to zero **once** before dropping its reference to the old
//!   value. Any reader that could have observed the old pointer is, at
//!   that point, guaranteed to have finished taking its reference.
//!
//! All operations use `SeqCst`. The correctness argument needs the
//! single total order: a reader's pointer load that follows the
//! writer's swap in that order must observe the new pointer, so a
//! reader holding the *old* pointer ordered its counter increment
//! before the swap — and the writer's drain therefore waits for it.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// A cell whose current value is an immutable snapshot behind an `Arc`,
/// readable without locks and replaceable atomically.
///
/// ```
/// use std::sync::Arc;
/// use smc_types::SnapshotCell;
///
/// let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
/// assert_eq!(*cell.load(), vec![1, 2, 3]);
/// cell.store(Arc::new(vec![4]));
/// assert_eq!(*cell.load(), vec![4]);
/// ```
pub struct SnapshotCell<T> {
    /// Raw pointer obtained from `Arc::into_raw`; the cell owns one
    /// strong reference to whatever it currently points at.
    current: AtomicPtr<T>,
    /// Readers mid-`load` (between announcing and having taken their
    /// own strong reference).
    readers: AtomicUsize,
    /// Serialises writers; readers never touch it.
    writer: std::sync::Mutex<()>,
    /// Spin iterations writers spent draining readers (contention
    /// probe; only touched when a drain actually spun).
    writer_wait_spins: AtomicU64,
    /// Drains that spun at least once.
    writer_waits: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            writer: std::sync::Mutex::new(()),
            writer_wait_spins: AtomicU64::new(0),
            writer_waits: AtomicU64::new(0),
        }
    }

    /// Drains the reader count after a swap, accounting any contention.
    fn drain_readers(&self) {
        let mut spins = 0u64;
        while self.readers.load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Uncontended drains (the overwhelming majority) cost nothing
        // extra; only a drain that actually spun touches the counters.
        if spins > 0 {
            self.writer_wait_spins.fetch_add(spins, SeqCst);
            self.writer_waits.fetch_add(1, SeqCst);
        }
    }

    /// Total spin iterations writers spent waiting for readers to drain
    /// — a direct contention signal on this cell.
    pub fn writer_wait_spins(&self) -> u64 {
        self.writer_wait_spins.load(SeqCst)
    }

    /// Number of writer drains that observed at least one mid-`load`
    /// reader.
    pub fn writer_waits(&self) -> u64 {
        self.writer_waits.load(SeqCst)
    }

    /// Returns the current snapshot. Lock-free: a few atomic operations,
    /// regardless of writer activity.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the cell's strong
        // reference to it cannot be dropped while `readers > 0` — a
        // writer that swapped it out waits for the reader count to
        // drain before releasing the old value (see `store`).
        unsafe { Arc::increment_strong_count(ptr) };
        self.readers.fetch_sub(1, SeqCst);
        // SAFETY: we hold the strong count we just took.
        unsafe { Arc::from_raw(ptr) }
    }

    /// Replaces the snapshot. Readers that raced the swap keep whichever
    /// value they loaded; subsequent loads see `value`.
    pub fn store(&self, value: Arc<T>) {
        let _serialise = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let old = self.current.swap(Arc::into_raw(value).cast_mut(), SeqCst);
        // Wait for every reader that might have loaded `old` to finish
        // taking its reference. Readers arriving after the swap load the
        // new pointer, so this drains quickly (their critical section is
        // a few instructions).
        self.drain_readers();
        // SAFETY: `old` came from `Arc::into_raw`, the cell's reference
        // to it is no longer reachable, and no reader is mid-take.
        drop(unsafe { Arc::from_raw(old) });
    }

    /// Applies `update` to the current snapshot and stores the result,
    /// atomically with respect to other writers.
    pub fn rcu(&self, update: impl FnOnce(&T) -> T) {
        let _serialise = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Safe to read without the reader protocol: we are the only
        // writer, so the pointer cannot change under us.
        let ptr = self.current.load(SeqCst);
        // SAFETY: the cell holds a strong reference for as long as the
        // pointer is installed, and we block all swaps.
        let next = Arc::new(update(unsafe { &*ptr }));
        let old = self.current.swap(Arc::into_raw(next).cast_mut(), SeqCst);
        self.drain_readers();
        // SAFETY: as in `store`.
        drop(unsafe { Arc::from_raw(old) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SnapshotCell").field(&self.load()).finish()
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(Arc::new(T::default()))
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        let ptr = *self.current.get_mut();
        // SAFETY: dropping the cell's own strong reference; no readers
        // can exist (we have `&mut self`).
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly what `Arc` requires of `T`.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_store_round_trip() {
        let cell = SnapshotCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn rcu_updates_in_place() {
        let cell = SnapshotCell::new(Arc::new(10u64));
        cell.rcu(|v| v + 5);
        assert_eq!(*cell.load(), 15);
    }

    #[test]
    fn old_snapshots_survive_while_held() {
        let cell = SnapshotCell::new(Arc::new("first".to_string()));
        let held = cell.load();
        cell.store(Arc::new("second".to_string()));
        assert_eq!(*held, "first");
        assert_eq!(*cell.load(), "second");
    }

    /// Every snapshot the cell ever held is dropped exactly once — no
    /// leak on swap, no double free on drop.
    #[test]
    fn snapshots_are_reclaimed() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, SeqCst);
            }
        }
        {
            let cell = SnapshotCell::new(Arc::new(Counted::new()));
            for _ in 0..100 {
                cell.store(Arc::new(Counted::new()));
            }
            assert_eq!(LIVE.load(SeqCst), 1, "only the current snapshot lives");
        }
        assert_eq!(LIVE.load(SeqCst), 0, "dropping the cell frees the last");
    }

    /// Uncontended writes leave the contention counters untouched.
    #[test]
    fn uncontended_writes_record_no_waits() {
        let cell = SnapshotCell::new(Arc::new(0u64));
        for i in 0..100 {
            cell.store(Arc::new(i));
        }
        assert_eq!(cell.writer_wait_spins(), 0);
        assert_eq!(cell.writer_waits(), 0);
    }

    /// Concurrent readers and a writer never observe a torn or freed
    /// value. (A correctness smoke test; the memory-ordering argument is
    /// in the module docs.)
    #[test]
    fn concurrent_load_store_stress() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(vec![0u64; 16])));
        let live = Arc::new(AtomicU64::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let live = Arc::clone(&live);
            handles.push(std::thread::spawn(move || {
                let mut last_seen = 0u64;
                for _ in 0..20_000 {
                    let snap = cell.load();
                    // Every snapshot is internally consistent: all
                    // elements carry the same generation number…
                    let first = snap[0];
                    assert!(snap.iter().all(|&v| v == first), "torn snapshot");
                    // …and generations are observed monotonically.
                    assert!(first >= last_seen, "snapshot went backwards");
                    last_seen = first;
                }
                live.fetch_sub(1, SeqCst);
            }));
        }
        // Keep swapping until every reader has done all its loads, so
        // loads genuinely race stores.
        let mut generation = 0u64;
        while live.load(SeqCst) != 0 {
            generation += 1;
            cell.store(Arc::new(vec![generation; 16]));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load()[0], generation);
    }
}
