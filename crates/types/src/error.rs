//! Error types shared by every crate in the workspace.

use std::fmt;

/// The error type returned by fallible operations across the SMC stack.
///
/// Every public `Result` in the workspace uses this type (or a thin wrapper
/// around it), so errors compose across the transport, bus, discovery and
/// policy layers without conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A wire message could not be decoded (truncated, bad tag, bad UTF-8…).
    Codec(CodecError),
    /// An I/O level failure, carrying the `std::io` error kind and message.
    Io(String),
    /// An operation did not complete within its deadline.
    Timeout,
    /// The channel, transport or service has been shut down.
    Closed,
    /// The referenced service is not a member of the cell.
    NotMember,
    /// An authorisation policy denied the operation.
    Denied(String),
    /// A join request was rejected by the discovery authenticator.
    JoinRejected(String),
    /// A queue or table reached its configured capacity.
    CapacityExceeded(String),
    /// The named entity (subscription, policy, proxy…) does not exist.
    NotFound(String),
    /// The named entity already exists.
    AlreadyExists(String),
    /// A request was syntactically valid but semantically unacceptable.
    Invalid(String),
}

/// Detailed reason for a codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// The context in which the tag was read (e.g. `"packet"`).
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the configured sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: usize,
        /// The maximum the decoder accepts.
        limit: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after a complete value was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            CodecError::BadUtf8 => write!(f, "string field contains invalid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(e) => write!(f, "codec error: {e}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Timeout => write!(f, "operation timed out"),
            Error::Closed => write!(f, "endpoint closed"),
            Error::NotMember => write!(f, "service is not a member of the cell"),
            Error::Denied(m) => write!(f, "denied by policy: {m}"),
            Error::JoinRejected(m) => write!(f, "join rejected: {m}"),
            Error::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl std::error::Error for CodecError {}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Codec(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::Timeout;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase), "{s}");
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn codec_error_converts() {
        let c = CodecError::BadUtf8;
        let e: Error = c.clone().into();
        assert_eq!(e, Error::Codec(c));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(ref m) if m.contains("boom")));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn codec_error_display_variants() {
        assert!(CodecError::UnexpectedEnd {
            needed: 4,
            remaining: 1
        }
        .to_string()
        .contains("needed 4"));
        assert!(CodecError::BadTag {
            what: "packet",
            tag: 0xff
        }
        .to_string()
        .contains("0xff"));
        assert!(CodecError::LengthOverflow {
            declared: 10,
            limit: 5
        }
        .to_string()
        .contains("10"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
