//! Write-ahead-log records and the recovery snapshot for the durable SMC
//! core.
//!
//! The core's delivery guarantees (exactly-once, per-sender FIFO,
//! queue-until-acked) are only as strong as the state backing them: the
//! receive cursors that suppress duplicates, the outbound proxy queues
//! holding unacknowledged events, the subscription table, and the
//! membership table. This module defines the byte-array form that state
//! takes on disk — one [`WalRecord`] per state transition, plus a
//! [`CoreSnapshot`] that compacts the log.
//!
//! Records use the same hand-rolled tag + little-endian codec as
//! [`Packet`](crate::Packet); the storage framing (lengths, checksums,
//! segments) lives in the `smc-wal` crate, which treats these encodings
//! as opaque payloads.

use bytes::{BufMut, BytesMut};

use crate::codec::{Decode, Encode, Reader, WriteExt};
use crate::error::CodecError;
use crate::filter::Subscription;
use crate::id::{ServiceId, SubscriptionId};
use crate::member::ServiceInfo;

/// Upper bound on entries in one snapshot collection (cursors, outbound
/// messages, members, subscriptions) — far above anything a body-area
/// cell produces, low enough that a corrupt length prefix cannot force a
/// huge allocation.
pub const MAX_SNAPSHOT_ENTRIES: usize = 1 << 20;

const W_RX_CURSOR: u8 = 1;
const W_OUT_ENQUEUE: u8 = 2;
const W_OUT_ACK: u8 = 3;
const W_OUT_FORGET: u8 = 4;
const W_MEMBER_JOINED: u8 = 5;
const W_MEMBER_PURGED: u8 = 6;
const W_SUBSCRIBED: u8 = 7;
const W_UNSUBSCRIBED: u8 = 8;
const W_RX_DELIVER: u8 = 9;
const W_RX_CONSUMED: u8 = 10;
const W_OUT_REQUEUE: u8 = 11;

/// One durable state transition of the SMC core.
///
/// Channel-level records carry a `chan` discriminator because the core
/// runs more than one [`ReliableChannel`] (the bus/device channel and
/// the discovery channel); each is journalled independently.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A receiver committed to delivering `peer`'s messages from
    /// `expected` onward: everything below `expected` has been handed to
    /// the application and acknowledged, so after a crash it must never
    /// be delivered again (exactly-once) and nothing at or above it may
    /// be skipped (FIFO).
    RxCursor {
        /// Which channel of the core this cursor belongs to.
        chan: u8,
        /// The sending peer.
        peer: ServiceId,
        /// The sender's session epoch the cursor is valid for.
        epoch: u64,
        /// The next sequence number the receiver will deliver.
        expected: u64,
    },
    /// A receiver is delivering message `seq` from `peer` and retains
    /// its payload until the application confirms it was routed
    /// ([`WalRecord::RxConsumed`]). Written *instead of* [`WalRecord::RxCursor`]
    /// on channels whose inbound messages have durable downstream
    /// effects (the bus channel): it advances the cursor exactly like an
    /// `RxCursor { expected: seq + 1 }` *and* keeps the payload, so a
    /// crash between the acknowledgement and the event's routing cannot
    /// lose the message.
    RxDeliver {
        /// Which channel of the core delivered the message.
        chan: u8,
        /// The sending peer.
        peer: ServiceId,
        /// The sender's session epoch.
        epoch: u64,
        /// The delivered sequence number (the cursor advances to
        /// `seq + 1`).
        seq: u64,
        /// The full reassembled message payload.
        payload: Vec<u8>,
    },
    /// The application finished routing inbound message `seq` from
    /// `peer` (every downstream effect is journalled); the retained
    /// [`WalRecord::RxDeliver`] payload is no longer needed.
    RxConsumed {
        /// Which channel of the core the message arrived on.
        chan: u8,
        /// The sending peer.
        peer: ServiceId,
        /// The consumed sequence number.
        seq: u64,
    },
    /// A message was queued for transmission to `peer` and must survive
    /// a crash until acknowledged (the paper's "queued and resent by the
    /// proxy" guarantee).
    OutEnqueue {
        /// Which channel of the core queued the message.
        chan: u8,
        /// The destination peer.
        peer: ServiceId,
        /// The sequence number assigned (or predicted) for the message.
        seq: u64,
        /// The full message payload, reassembled (not per-fragment).
        payload: Vec<u8>,
    },
    /// The peer acknowledged (or the channel abandoned) outbound
    /// message `seq`; it no longer needs to be retained.
    OutAck {
        /// Which channel of the core the ack arrived on.
        chan: u8,
        /// The destination peer.
        peer: ServiceId,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Recovery re-enqueued the outbound message journalled under
    /// `prior_seq` and the reborn channel assigned it `seq`. Written by
    /// the recovery resend path *instead of* a fresh
    /// [`WalRecord::OutEnqueue`]: replay renumbers the already-retained
    /// entry rather than duplicating its payload, so a second crash
    /// cannot queue the same message twice.
    OutRequeue {
        /// Which channel of the core re-enqueued the message.
        chan: u8,
        /// The destination peer.
        peer: ServiceId,
        /// The sequence number the retained entry was journalled under.
        prior_seq: u64,
        /// The sequence number the reborn channel assigned.
        seq: u64,
    },
    /// All outbound state for `peer` was dropped (member purge /
    /// proxy destruction) — queued data is deliberately discarded.
    OutForget {
        /// Which channel of the core forgot the peer.
        chan: u8,
        /// The forgotten peer.
        peer: ServiceId,
    },
    /// The discovery service admitted a member.
    MemberJoined {
        /// The admitted member's full service description.
        info: ServiceInfo,
    },
    /// The discovery service purged a member.
    MemberPurged {
        /// The purged member.
        member: ServiceId,
    },
    /// A subscription was installed on the bus.
    Subscribed {
        /// The full subscription (id, subscriber, filter).
        subscription: Subscription,
    },
    /// A subscription was removed from the bus.
    Unsubscribed {
        /// The removed subscription's id.
        id: SubscriptionId,
    },
}

impl Encode for WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::RxCursor {
                chan,
                peer,
                epoch,
                expected,
            } => {
                buf.put_u8(W_RX_CURSOR);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*expected);
            }
            WalRecord::RxDeliver {
                chan,
                peer,
                epoch,
                seq,
                payload,
            } => {
                buf.put_u8(W_RX_DELIVER);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*seq);
                buf.put_bytes_field(payload);
            }
            WalRecord::RxConsumed { chan, peer, seq } => {
                buf.put_u8(W_RX_CONSUMED);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*seq);
            }
            WalRecord::OutEnqueue {
                chan,
                peer,
                seq,
                payload,
            } => {
                buf.put_u8(W_OUT_ENQUEUE);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*seq);
                buf.put_bytes_field(payload);
            }
            WalRecord::OutRequeue {
                chan,
                peer,
                prior_seq,
                seq,
            } => {
                buf.put_u8(W_OUT_REQUEUE);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*prior_seq);
                buf.put_u64_le(*seq);
            }
            WalRecord::OutAck { chan, peer, seq } => {
                buf.put_u8(W_OUT_ACK);
                buf.put_u8(*chan);
                peer.encode(buf);
                buf.put_u64_le(*seq);
            }
            WalRecord::OutForget { chan, peer } => {
                buf.put_u8(W_OUT_FORGET);
                buf.put_u8(*chan);
                peer.encode(buf);
            }
            WalRecord::MemberJoined { info } => {
                buf.put_u8(W_MEMBER_JOINED);
                info.encode(buf);
            }
            WalRecord::MemberPurged { member } => {
                buf.put_u8(W_MEMBER_PURGED);
                member.encode(buf);
            }
            WalRecord::Subscribed { subscription } => {
                buf.put_u8(W_SUBSCRIBED);
                subscription.encode(buf);
            }
            WalRecord::Unsubscribed { id } => {
                buf.put_u8(W_UNSUBSCRIBED);
                id.encode(buf);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            W_RX_CURSOR => Ok(WalRecord::RxCursor {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                epoch: r.u64()?,
                expected: r.u64()?,
            }),
            W_RX_DELIVER => Ok(WalRecord::RxDeliver {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                epoch: r.u64()?,
                seq: r.u64()?,
                payload: r.bytes()?,
            }),
            W_RX_CONSUMED => Ok(WalRecord::RxConsumed {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                seq: r.u64()?,
            }),
            W_OUT_ENQUEUE => Ok(WalRecord::OutEnqueue {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                seq: r.u64()?,
                payload: r.bytes()?,
            }),
            W_OUT_REQUEUE => Ok(WalRecord::OutRequeue {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                prior_seq: r.u64()?,
                seq: r.u64()?,
            }),
            W_OUT_ACK => Ok(WalRecord::OutAck {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
                seq: r.u64()?,
            }),
            W_OUT_FORGET => Ok(WalRecord::OutForget {
                chan: r.u8()?,
                peer: ServiceId::decode(r)?,
            }),
            W_MEMBER_JOINED => Ok(WalRecord::MemberJoined {
                info: ServiceInfo::decode(r)?,
            }),
            W_MEMBER_PURGED => Ok(WalRecord::MemberPurged {
                member: ServiceId::decode(r)?,
            }),
            W_SUBSCRIBED => Ok(WalRecord::Subscribed {
                subscription: Subscription::decode(r)?,
            }),
            W_UNSUBSCRIBED => Ok(WalRecord::Unsubscribed {
                id: SubscriptionId::decode(r)?,
            }),
            t => Err(CodecError::BadTag {
                what: "wal record",
                tag: t,
            }),
        }
    }
}

/// One receive cursor in a [`CoreSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorEntry {
    /// Which channel of the core the cursor belongs to.
    pub chan: u8,
    /// The sending peer.
    pub peer: ServiceId,
    /// The sender's session epoch the cursor is valid for.
    pub epoch: u64,
    /// The next sequence number the receiver will deliver.
    pub expected: u64,
}

/// Retained outbound messages for one peer as `(seq, payload)` pairs in
/// original send order — the shape [`CoreSnapshot::outbound_for`] returns.
pub type RetainedOutbound = Vec<(u64, Vec<u8>)>;

/// One unacknowledged outbound message in a [`CoreSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundEntry {
    /// Which channel of the core queued the message.
    pub chan: u8,
    /// The destination peer.
    pub peer: ServiceId,
    /// The sequence number the message held at snapshot time; retains
    /// the original send order, not the post-recovery wire sequence.
    pub seq: u64,
    /// The full message payload.
    pub payload: Vec<u8>,
}

/// One inbound message a [`CoreSnapshot`] retains because it was
/// acknowledged to its sender but not yet routed by the application
/// (see [`WalRecord::RxDeliver`] / [`WalRecord::RxConsumed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRx {
    /// Which channel of the core the message arrived on.
    pub chan: u8,
    /// The sending peer.
    pub peer: ServiceId,
    /// The sender's session epoch.
    pub epoch: u64,
    /// The delivered sequence number.
    pub seq: u64,
    /// The full reassembled message payload.
    pub payload: Vec<u8>,
}

impl Encode for PendingRx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.chan);
        self.peer.encode(buf);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.seq);
        buf.put_bytes_field(&self.payload);
    }
}

impl Decode for PendingRx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PendingRx {
            chan: r.u8()?,
            peer: ServiceId::decode(r)?,
            epoch: r.u64()?,
            seq: r.u64()?,
            payload: r.bytes()?,
        })
    }
}

impl Encode for CursorEntry {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.chan);
        self.peer.encode(buf);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.expected);
    }
}

impl Decode for CursorEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CursorEntry {
            chan: r.u8()?,
            peer: ServiceId::decode(r)?,
            epoch: r.u64()?,
            expected: r.u64()?,
        })
    }
}

impl Encode for OutboundEntry {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.chan);
        self.peer.encode(buf);
        buf.put_u64_le(self.seq);
        buf.put_bytes_field(&self.payload);
    }
}

impl Decode for OutboundEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OutboundEntry {
            chan: r.u8()?,
            peer: ServiceId::decode(r)?,
            seq: r.u64()?,
            payload: r.bytes()?,
        })
    }
}

/// The complete durable state of the SMC core at one instant.
///
/// Recovery decodes the latest snapshot and then [`apply`]s every
/// [`WalRecord`] logged after it, in order; the result is the state the
/// rebuilt core resumes from.
///
/// [`apply`]: CoreSnapshot::apply
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreSnapshot {
    /// Receive cursors, one per (channel, peer) with an active session.
    pub cursors: Vec<CursorEntry>,
    /// Queued-or-inflight outbound messages, oldest first per peer.
    pub outbound: Vec<OutboundEntry>,
    /// Inbound messages acknowledged to their senders but not yet routed
    /// by the application, in delivery (log) order.
    pub pending_rx: Vec<PendingRx>,
    /// The admitted membership at snapshot time.
    pub members: Vec<ServiceInfo>,
    /// The installed subscriptions at snapshot time.
    pub subscriptions: Vec<Subscription>,
    /// The next subscription id the bus would allocate.
    pub next_subscription: u64,
}

impl CoreSnapshot {
    fn upsert_cursor(&mut self, chan: u8, peer: ServiceId, epoch: u64, expected: u64) {
        match self
            .cursors
            .iter_mut()
            .find(|c| c.chan == chan && c.peer == peer)
        {
            Some(c) => {
                c.epoch = epoch;
                c.expected = expected;
            }
            None => self.cursors.push(CursorEntry {
                chan,
                peer,
                epoch,
                expected,
            }),
        }
    }

    /// Folds one logged record into the snapshot state.
    ///
    /// Every fold is **idempotent**: a snapshot cut mid-log means the
    /// records preceding it replay *on top of* state that already
    /// contains their effects, so re-applying a record must never
    /// duplicate an entry (enqueues, delivers) or regress a removal.
    pub fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::RxCursor {
                chan,
                peer,
                epoch,
                expected,
            } => {
                self.upsert_cursor(*chan, *peer, *epoch, *expected);
            }
            WalRecord::RxDeliver {
                chan,
                peer,
                epoch,
                seq,
                payload,
            } => {
                self.upsert_cursor(*chan, *peer, *epoch, *seq + 1);
                let duplicate = self.pending_rx.iter().any(|p| {
                    p.chan == *chan && p.peer == *peer && p.epoch == *epoch && p.seq == *seq
                });
                if !duplicate {
                    self.pending_rx.push(PendingRx {
                        chan: *chan,
                        peer: *peer,
                        epoch: *epoch,
                        seq: *seq,
                        payload: payload.clone(),
                    });
                }
            }
            WalRecord::RxConsumed { chan, peer, seq } => {
                if let Some(i) = self
                    .pending_rx
                    .iter()
                    .position(|p| p.chan == *chan && p.peer == *peer && p.seq == *seq)
                {
                    self.pending_rx.remove(i);
                }
            }
            WalRecord::OutEnqueue {
                chan,
                peer,
                seq,
                payload,
            } => {
                let duplicate = self
                    .outbound
                    .iter()
                    .any(|o| o.chan == *chan && o.peer == *peer && o.seq == *seq);
                if !duplicate {
                    self.outbound.push(OutboundEntry {
                        chan: *chan,
                        peer: *peer,
                        seq: *seq,
                        payload: payload.clone(),
                    });
                }
            }
            WalRecord::OutRequeue {
                chan,
                peer,
                prior_seq,
                seq,
            } => {
                // Renumber the retained entry; a miss means a later
                // checkpoint already captured the renumbered queue.
                if let Some(o) = self
                    .outbound
                    .iter_mut()
                    .find(|o| o.chan == *chan && o.peer == *peer && o.seq == *prior_seq)
                {
                    o.seq = *seq;
                }
            }
            WalRecord::OutAck { chan, peer, seq } => {
                self.outbound
                    .retain(|o| !(o.chan == *chan && o.peer == *peer && o.seq == *seq));
            }
            WalRecord::OutForget { chan, peer } => {
                self.outbound
                    .retain(|o| !(o.chan == *chan && o.peer == *peer));
            }
            WalRecord::MemberJoined { info } => {
                match self.members.iter_mut().find(|m| m.id == info.id) {
                    Some(m) => *m = info.clone(),
                    None => self.members.push(info.clone()),
                }
            }
            WalRecord::MemberPurged { member } => {
                self.members.retain(|m| m.id != *member);
            }
            WalRecord::Subscribed { subscription } => {
                self.next_subscription = self.next_subscription.max(subscription.id.0 + 1);
                match self
                    .subscriptions
                    .iter_mut()
                    .find(|s| s.id == subscription.id)
                {
                    Some(s) => *s = subscription.clone(),
                    None => self.subscriptions.push(subscription.clone()),
                }
            }
            WalRecord::Unsubscribed { id } => {
                self.subscriptions.retain(|s| s.id != *id);
            }
        }
    }

    /// Queued-or-inflight outbound messages for one channel, grouped per
    /// peer (peers sorted by id, messages in original send order), each
    /// paired with the sequence number it is retained under — the
    /// `prior_seq` a recovery resend must cite in [`WalRecord::OutRequeue`].
    pub fn outbound_for(&self, chan: u8) -> Vec<(ServiceId, RetainedOutbound)> {
        let mut grouped: Vec<(ServiceId, RetainedOutbound)> = Vec::new();
        let mut entries: Vec<&OutboundEntry> =
            self.outbound.iter().filter(|o| o.chan == chan).collect();
        entries.sort_by_key(|o| (o.peer, o.seq));
        for entry in entries {
            let item = (entry.seq, entry.payload.clone());
            match grouped.last_mut() {
                Some((peer, msgs)) if *peer == entry.peer => msgs.push(item),
                _ => grouped.push((entry.peer, vec![item])),
            }
        }
        grouped
    }

    /// Acknowledged-but-unrouted inbound messages for one channel as
    /// `(peer, epoch, seq, payload)`, in delivery (log) order.
    pub fn pending_rx_for(&self, chan: u8) -> Vec<(ServiceId, u64, u64, Vec<u8>)> {
        self.pending_rx
            .iter()
            .filter(|p| p.chan == chan)
            .map(|p| (p.peer, p.epoch, p.seq, p.payload.clone()))
            .collect()
    }

    /// Receive cursors for one channel as `(peer, epoch, expected)`,
    /// sorted by peer id.
    pub fn cursors_for(&self, chan: u8) -> Vec<(ServiceId, u64, u64)> {
        let mut out: Vec<(ServiceId, u64, u64)> = self
            .cursors
            .iter()
            .filter(|c| c.chan == chan)
            .map(|c| (c.peer, c.epoch, c.expected))
            .collect();
        out.sort_by_key(|&(peer, _, _)| peer);
        out
    }
}

fn put_seq<T: Encode>(buf: &mut BytesMut, items: &[T]) {
    buf.put_u32_le(items.len() as u32);
    for item in items {
        item.encode(buf);
    }
}

fn get_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let len = r.u32()? as usize;
    if len > MAX_SNAPSHOT_ENTRIES {
        return Err(CodecError::LengthOverflow {
            declared: len,
            limit: MAX_SNAPSHOT_ENTRIES,
        });
    }
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl Encode for CoreSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        put_seq(buf, &self.cursors);
        put_seq(buf, &self.outbound);
        put_seq(buf, &self.pending_rx);
        put_seq(buf, &self.members);
        put_seq(buf, &self.subscriptions);
        buf.put_u64_le(self.next_subscription);
    }
}

impl Decode for CoreSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CoreSnapshot {
            cursors: get_seq(r)?,
            outbound: get_seq(r)?,
            pending_rx: get_seq(r)?,
            members: get_seq(r)?,
            subscriptions: get_seq(r)?,
            next_subscription: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use crate::filter::{Filter, Op};

    fn sid(n: u64) -> ServiceId {
        ServiceId::from_raw(n)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RxCursor {
                chan: 0,
                peer: sid(7),
                epoch: 123,
                expected: 42,
            },
            WalRecord::RxDeliver {
                chan: 0,
                peer: sid(7),
                epoch: 123,
                seq: 42,
                payload: vec![9, 9, 9],
            },
            WalRecord::RxConsumed {
                chan: 0,
                peer: sid(7),
                seq: 42,
            },
            WalRecord::OutEnqueue {
                chan: 1,
                peer: sid(8),
                seq: 3,
                payload: vec![1, 2, 3],
            },
            WalRecord::OutRequeue {
                chan: 1,
                peer: sid(8),
                prior_seq: 3,
                seq: 1,
            },
            WalRecord::OutAck {
                chan: 1,
                peer: sid(8),
                seq: 3,
            },
            WalRecord::OutForget {
                chan: 0,
                peer: sid(9),
            },
            WalRecord::MemberJoined {
                info: ServiceInfo::new(sid(7), "sensor.heart-rate").with_role("publisher"),
            },
            WalRecord::MemberPurged { member: sid(7) },
            WalRecord::Subscribed {
                subscription: Subscription::new(
                    SubscriptionId(5),
                    sid(7),
                    Filter::for_type("smc.sensor.reading").with(("bpm", Op::Gt, 100i64)),
                ),
            },
            WalRecord::Unsubscribed {
                id: SubscriptionId(5),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for record in sample_records() {
            let bytes = to_bytes(&record);
            let back: WalRecord = from_bytes(&bytes).expect("decode");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn truncated_records_error_not_panic() {
        for record in sample_records() {
            let bytes = to_bytes(&record);
            for cut in 0..bytes.len() {
                assert!(
                    from_bytes::<WalRecord>(&bytes[..cut]).is_err(),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn bad_record_tag_rejected() {
        assert!(matches!(
            from_bytes::<WalRecord>(&[200]),
            Err(CodecError::BadTag {
                what: "wal record",
                tag: 200
            })
        ));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut snap = CoreSnapshot::default();
        for record in sample_records() {
            snap.apply(&record);
        }
        snap.next_subscription = 77;
        let bytes = to_bytes(&snap);
        let back: CoreSnapshot = from_bytes(&bytes).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn apply_folds_state_transitions() {
        let mut snap = CoreSnapshot::default();
        snap.apply(&WalRecord::RxCursor {
            chan: 0,
            peer: sid(1),
            epoch: 10,
            expected: 5,
        });
        snap.apply(&WalRecord::RxCursor {
            chan: 0,
            peer: sid(1),
            epoch: 10,
            expected: 6,
        });
        assert_eq!(snap.cursors_for(0), vec![(sid(1), 10, 6)]);

        snap.apply(&WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(2),
            seq: 1,
            payload: vec![1],
        });
        snap.apply(&WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(2),
            seq: 2,
            payload: vec![2],
        });
        snap.apply(&WalRecord::OutAck {
            chan: 0,
            peer: sid(2),
            seq: 1,
        });
        assert_eq!(snap.outbound_for(0), vec![(sid(2), vec![(2, vec![2])])]);
        snap.apply(&WalRecord::OutForget {
            chan: 0,
            peer: sid(2),
        });
        assert!(snap.outbound_for(0).is_empty());

        let info = ServiceInfo::new(sid(3), "sensor.spo2");
        snap.apply(&WalRecord::MemberJoined { info: info.clone() });
        snap.apply(&WalRecord::MemberJoined { info: info.clone() });
        assert_eq!(snap.members, vec![info]);
        snap.apply(&WalRecord::MemberPurged { member: sid(3) });
        assert!(snap.members.is_empty());

        let sub = Subscription::new(SubscriptionId(9), sid(3), Filter::any());
        snap.apply(&WalRecord::Subscribed {
            subscription: sub.clone(),
        });
        assert_eq!(snap.next_subscription, 10);
        assert_eq!(snap.subscriptions, vec![sub]);
        snap.apply(&WalRecord::Unsubscribed {
            id: SubscriptionId(9),
        });
        assert!(snap.subscriptions.is_empty());
    }

    #[test]
    fn outbound_for_orders_by_peer_then_seq() {
        let mut snap = CoreSnapshot::default();
        snap.apply(&WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(9),
            seq: 2,
            payload: vec![9, 2],
        });
        snap.apply(&WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(4),
            seq: 7,
            payload: vec![4, 7],
        });
        snap.apply(&WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(9),
            seq: 1,
            payload: vec![9, 1],
        });
        snap.apply(&WalRecord::OutEnqueue {
            chan: 1,
            peer: sid(9),
            seq: 1,
            payload: vec![1],
        });
        assert_eq!(
            snap.outbound_for(0),
            vec![
                (sid(4), vec![(7, vec![4, 7])]),
                (sid(9), vec![(1, vec![9, 1]), (2, vec![9, 2])])
            ]
        );
    }

    #[test]
    fn apply_out_enqueue_is_idempotent() {
        // A snapshot cut between write and segment removal leaves the
        // original enqueue records in the log; replaying them on top of
        // the snapshot must not queue a second copy.
        let enqueue = WalRecord::OutEnqueue {
            chan: 0,
            peer: sid(2),
            seq: 5,
            payload: vec![0xAB],
        };
        let mut snap = CoreSnapshot::default();
        snap.apply(&enqueue);
        snap.apply(&enqueue);
        assert_eq!(snap.outbound_for(0), vec![(sid(2), vec![(5, vec![0xAB])])]);
    }

    #[test]
    fn apply_out_requeue_renumbers_without_duplicating() {
        let mut snap = CoreSnapshot::default();
        // Pre-crash queue journalled under seqs 5 and 6 (1-4 were acked).
        for seq in [5u64, 6] {
            snap.apply(&WalRecord::OutEnqueue {
                chan: 0,
                peer: sid(2),
                seq,
                payload: vec![seq as u8],
            });
        }
        // Recovery resent them; the reborn channel numbered them 1 and 2.
        snap.apply(&WalRecord::OutRequeue {
            chan: 0,
            peer: sid(2),
            prior_seq: 5,
            seq: 1,
        });
        snap.apply(&WalRecord::OutRequeue {
            chan: 0,
            peer: sid(2),
            prior_seq: 6,
            seq: 2,
        });
        assert_eq!(
            snap.outbound_for(0),
            vec![(sid(2), vec![(1, vec![5]), (2, vec![6])])],
            "entries renumbered in place, order preserved, no duplicates"
        );
        // The live acks cite the new numbers and must trim correctly.
        snap.apply(&WalRecord::OutAck {
            chan: 0,
            peer: sid(2),
            seq: 1,
        });
        assert_eq!(snap.outbound_for(0), vec![(sid(2), vec![(2, vec![6])])]);
        // A requeue replayed on top of a post-recovery checkpoint (entry
        // already renumbered and re-captured) is a no-op.
        snap.apply(&WalRecord::OutRequeue {
            chan: 0,
            peer: sid(2),
            prior_seq: 6,
            seq: 2,
        });
        assert_eq!(snap.outbound_for(0), vec![(sid(2), vec![(2, vec![6])])]);
    }

    #[test]
    fn apply_rx_deliver_and_consume_track_pending() {
        let mut snap = CoreSnapshot::default();
        let deliver = WalRecord::RxDeliver {
            chan: 0,
            peer: sid(3),
            epoch: 9,
            seq: 4,
            payload: vec![0xCD],
        };
        snap.apply(&deliver);
        assert_eq!(
            snap.cursors_for(0),
            vec![(sid(3), 9, 5)],
            "a deliver advances the cursor past the delivered seq"
        );
        assert_eq!(snap.pending_rx_for(0), vec![(sid(3), 9, 4, vec![0xCD])]);
        // Replaying it (snapshot raced the log tail) adds nothing.
        snap.apply(&deliver);
        assert_eq!(snap.pending_rx_for(0).len(), 1);
        snap.apply(&WalRecord::RxConsumed {
            chan: 0,
            peer: sid(3),
            seq: 4,
        });
        assert!(snap.pending_rx_for(0).is_empty());
        assert_eq!(
            snap.cursors_for(0),
            vec![(sid(3), 9, 5)],
            "consuming trims the payload, not the cursor"
        );
        // Consuming again (replay) is a no-op.
        snap.apply(&WalRecord::RxConsumed {
            chan: 0,
            peer: sid(3),
            seq: 4,
        });
        assert!(snap.pending_rx_for(0).is_empty());
    }

    #[test]
    fn oversize_snapshot_collection_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            from_bytes::<CoreSnapshot>(&buf),
            Err(CodecError::LengthOverflow { .. })
        ));
    }
}
