//! The peer-supervision wire protocol.
//!
//! Cells watch each other over the event fabric itself, not a side
//! channel: every protocol step is a typed `smc.supervision` event
//! carried on the same journaled reliable channel as application
//! traffic, so exactly-once and per-sender FIFO hold for supervision
//! messages too. The vocabulary is small and soft-state:
//!
//! - **Lease** — a periodic heartbeat each cell's supervisor publishes,
//!   advertising "my supervisor is alive for another `ttl` µs".
//! - **Claim** — a watcher announcing it intends to adopt a sibling
//!   whose lease lapsed; rivals arbitrate by lowest member id.
//! - **Adopt** — the claim winner taking the watcher role.
//! - **Release** — the adopter standing down once the target's lease
//!   resumes (its own supervisor came back).
//! - **Repair** — a restart/escalation decision the adopter drives
//!   remotely; the target's actuator plane executes it through the
//!   policy `ActionSpec` path.
//! - **Reconcile** — an adopter-ordered anti-entropy pass diffing the
//!   target's durable WAL truth against its live views, required
//!   before the unsupervised cell may compact a checkpoint.
//!
//! Messages encode as plain [`Event`]s so they reuse the event codec
//! and can be filtered, journaled, and replayed like any other event.

use crate::event::Event;
use crate::member::wellknown;

/// One step of the peer-supervision protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SupervisionMsg {
    /// Heartbeat: `holder`'s supervisor is alive; the lease lapses
    /// `ttl_micros` (plus the watcher's grace) after the last one seen.
    Lease {
        /// Member id of the cell whose supervisor is heartbeating.
        holder: u64,
        /// Advertised time-to-live of this lease, in microseconds.
        ttl_micros: u64,
    },
    /// `claimant` observed `target`'s lease lapse and bids for the
    /// watcher role. Concurrent claimants resolve by lowest member id.
    Claim {
        /// Member id of the lapsed cell.
        target: u64,
        /// Member id of the bidding watcher.
        claimant: u64,
    },
    /// `adopter` won the claim and now supervises `target` remotely.
    Adopt {
        /// Member id of the adopted cell.
        target: u64,
        /// Member id of the winning watcher.
        adopter: u64,
    },
    /// `adopter` stands down: `target`'s own supervisor is back.
    Release {
        /// Member id of the formerly adopted cell.
        target: u64,
        /// Member id of the watcher standing down.
        adopter: u64,
    },
    /// Remote repair command: restart `component` inside `target`.
    /// Component `"core"` means a full reboot from the WAL and
    /// `"supervisor"` revives the in-process supervisor itself.
    Repair {
        /// Member id of the cell being repaired.
        target: u64,
        /// The component to restart.
        component: String,
        /// Attempt number within the current failure episode.
        attempt: u32,
    },
    /// Remote anti-entropy command: `target` must diff its live views
    /// against durable WAL truth (and repair divergence) now.
    Reconcile {
        /// Member id of the cell being reconciled.
        target: u64,
        /// Member id of the adopter ordering the pass.
        requester: u64,
    },
}

impl SupervisionMsg {
    /// The protocol kind tag carried in [`wellknown::SUP_KIND`].
    pub fn kind(&self) -> &'static str {
        match self {
            SupervisionMsg::Lease { .. } => "lease",
            SupervisionMsg::Claim { .. } => "claim",
            SupervisionMsg::Adopt { .. } => "adopt",
            SupervisionMsg::Release { .. } => "release",
            SupervisionMsg::Repair { .. } => "repair",
            SupervisionMsg::Reconcile { .. } => "reconcile",
        }
    }

    /// Render the message as a typed `smc.supervision` event, ready for
    /// the event codec and the reliable channel.
    pub fn to_event(&self, timestamp_micros: u64) -> Event {
        let builder = Event::builder(wellknown::SUPERVISION)
            .attr(wellknown::SUP_KIND, self.kind())
            .timestamp_micros(timestamp_micros);
        match self {
            SupervisionMsg::Lease { holder, ttl_micros } => builder
                .attr(wellknown::SUP_SENDER, *holder as i64)
                .attr(wellknown::SUP_TTL, *ttl_micros as i64),
            SupervisionMsg::Claim { target, claimant } => builder
                .attr(wellknown::SUP_TARGET, *target as i64)
                .attr(wellknown::SUP_SENDER, *claimant as i64),
            SupervisionMsg::Adopt { target, adopter }
            | SupervisionMsg::Release { target, adopter } => builder
                .attr(wellknown::SUP_TARGET, *target as i64)
                .attr(wellknown::SUP_SENDER, *adopter as i64),
            SupervisionMsg::Repair {
                target,
                component,
                attempt,
            } => builder
                .attr(wellknown::SUP_TARGET, *target as i64)
                .attr(wellknown::SUP_COMPONENT, component.as_str())
                .attr(wellknown::SUP_ATTEMPT, *attempt as i64),
            SupervisionMsg::Reconcile { target, requester } => builder
                .attr(wellknown::SUP_TARGET, *target as i64)
                .attr(wellknown::SUP_SENDER, *requester as i64),
        }
        .build()
    }

    /// Parse a supervision message back out of an event. Returns `None`
    /// for non-supervision events or malformed attribute sets, so a
    /// receiver can drop garbage without failing the channel.
    pub fn from_event(event: &Event) -> Option<Self> {
        if event.event_type() != wellknown::SUPERVISION {
            return None;
        }
        let int = |name: &str| event.attr(name)?.as_int().map(|v| v as u64);
        let kind = event.attr(wellknown::SUP_KIND)?.as_str()?;
        let msg = match kind {
            "lease" => SupervisionMsg::Lease {
                holder: int(wellknown::SUP_SENDER)?,
                ttl_micros: int(wellknown::SUP_TTL)?,
            },
            "claim" => SupervisionMsg::Claim {
                target: int(wellknown::SUP_TARGET)?,
                claimant: int(wellknown::SUP_SENDER)?,
            },
            "adopt" => SupervisionMsg::Adopt {
                target: int(wellknown::SUP_TARGET)?,
                adopter: int(wellknown::SUP_SENDER)?,
            },
            "release" => SupervisionMsg::Release {
                target: int(wellknown::SUP_TARGET)?,
                adopter: int(wellknown::SUP_SENDER)?,
            },
            "repair" => SupervisionMsg::Repair {
                target: int(wellknown::SUP_TARGET)?,
                component: event.attr(wellknown::SUP_COMPONENT)?.as_str()?.to_string(),
                attempt: int(wellknown::SUP_ATTEMPT)? as u32,
            },
            "reconcile" => SupervisionMsg::Reconcile {
                target: int(wellknown::SUP_TARGET)?,
                requester: int(wellknown::SUP_SENDER)?,
            },
            _ => return None,
        };
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn all_messages() -> Vec<SupervisionMsg> {
        vec![
            SupervisionMsg::Lease {
                holder: 1,
                ttl_micros: 500_000,
            },
            SupervisionMsg::Claim {
                target: 1,
                claimant: 2,
            },
            SupervisionMsg::Adopt {
                target: 1,
                adopter: 2,
            },
            SupervisionMsg::Release {
                target: 1,
                adopter: 2,
            },
            SupervisionMsg::Repair {
                target: 1,
                component: "sink".into(),
                attempt: 3,
            },
            SupervisionMsg::Reconcile {
                target: 1,
                requester: 2,
            },
        ]
    }

    #[test]
    fn every_message_round_trips_through_the_event_codec() {
        for msg in all_messages() {
            let event = msg.to_event(42);
            let bytes = to_bytes(&event);
            let back: Event = from_bytes(&bytes).expect("event decodes");
            assert_eq!(back.event_type(), wellknown::SUPERVISION);
            assert_eq!(back.timestamp_micros(), 42);
            let parsed = SupervisionMsg::from_event(&back).expect("message parses");
            assert_eq!(parsed, msg, "round trip for kind {}", msg.kind());
        }
    }

    #[test]
    fn foreign_and_malformed_events_parse_to_none() {
        let foreign = Event::builder("smc.alarm").build();
        assert!(SupervisionMsg::from_event(&foreign).is_none());

        let unknown_kind = Event::builder(wellknown::SUPERVISION)
            .attr(wellknown::SUP_KIND, "gossip")
            .build();
        assert!(SupervisionMsg::from_event(&unknown_kind).is_none());

        let missing_attr = Event::builder(wellknown::SUPERVISION)
            .attr(wellknown::SUP_KIND, "claim")
            .attr(wellknown::SUP_TARGET, 1i64)
            .build();
        assert!(
            SupervisionMsg::from_event(&missing_attr).is_none(),
            "a claim without a claimant is malformed"
        );
    }

    #[test]
    fn kind_tags_are_distinct() {
        let msgs = all_messages();
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a.kind(), b.kind());
            }
        }
    }
}
