//! Textual syntax for content filters.
//!
//! Lets tools, config files and examples write filters the way the
//! paper's prose does, instead of building them in code:
//!
//! ```text
//! smc.sensor.reading : sensor == "heart-rate" && bpm > 120
//! smc.alarm :                         # type restriction only
//! * : spo2 < 90 && exists(patient)    # any type
//! ```
//!
//! Grammar: `TYPE ':' constraint (&& constraint)*` where `TYPE` is an
//! event type name or `*`, and each constraint is
//! `name OP value | exists(name)` with `OP` one of
//! `== != < <= > >= prefix suffix contains`. Values are integers,
//! decimals, `true`/`false`, or double-quoted strings.

use crate::error::{Error, Result};
use crate::filter::{Constraint, Filter, Op};
use crate::value::AttributeValue;

/// Parses the textual filter syntax.
///
/// # Errors
///
/// Returns [`Error::Invalid`] describing the first syntax problem.
///
/// # Example
///
/// ```
/// use smc_types::{parse_filter, Event};
///
/// let filter = parse_filter(r#"smc.sensor.reading : sensor == "hr" && bpm > 120"#)?;
/// let racing = Event::builder("smc.sensor.reading")
///     .attr("sensor", "hr")
///     .attr("bpm", 150i64)
///     .build();
/// assert!(filter.matches(&racing));
/// # Ok::<(), smc_types::Error>(())
/// ```
pub fn parse_filter(input: &str) -> Result<Filter> {
    let input = strip_comment(input).trim();
    let (type_part, constraints_part) = match input.split_once(':') {
        Some((t, c)) => (t.trim(), c.trim()),
        None => (input, ""),
    };
    let mut filter = match type_part {
        "" | "*" => Filter::any(),
        t if t.chars().all(is_type_char) => Filter::for_type(t),
        t => return Err(Error::Invalid(format!("bad event type '{t}'"))),
    };
    if constraints_part.is_empty() {
        return Ok(filter);
    }
    for clause in constraints_part.split("&&") {
        filter.push(parse_constraint(clause.trim())?);
    }
    Ok(filter)
}

fn strip_comment(s: &str) -> &str {
    match s.find('#') {
        Some(i) => &s[..i],
        None => s,
    }
}

fn is_type_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

fn parse_constraint(clause: &str) -> Result<Constraint> {
    if clause.is_empty() {
        return Err(Error::Invalid("empty constraint".into()));
    }
    // exists(name)
    if let Some(rest) = clause.strip_prefix("exists(") {
        let name = rest
            .strip_suffix(')')
            .ok_or_else(|| Error::Invalid(format!("missing ')' in '{clause}'")))?
            .trim();
        if name.is_empty() || !name.chars().all(is_type_char) {
            return Err(Error::Invalid(format!("bad attribute name '{name}'")));
        }
        return Ok(Constraint::new(name, Op::Exists, 0i64));
    }
    // name OP value — try the longest operators first.
    const OPS: [(&str, Op); 9] = [
        ("==", Op::Eq),
        ("!=", Op::Ne),
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("<", Op::Lt),
        (">", Op::Gt),
        (" prefix ", Op::Prefix),
        (" suffix ", Op::Suffix),
        (" contains ", Op::Contains),
    ];
    for (token, op) in OPS {
        if let Some(at) = clause.find(token) {
            let name = clause[..at].trim();
            let value_text = clause[at + token.len()..].trim();
            if name.is_empty() || !name.chars().all(is_type_char) {
                return Err(Error::Invalid(format!("bad attribute name in '{clause}'")));
            }
            let value = parse_value(value_text)?;
            return Ok(Constraint::new(name, op, value));
        }
    }
    Err(Error::Invalid(format!("no operator found in '{clause}'")))
}

fn parse_value(text: &str) -> Result<AttributeValue> {
    if text.is_empty() {
        return Err(Error::Invalid("missing value".into()));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| Error::Invalid(format!("unterminated string {text}")))?;
        return Ok(AttributeValue::Str(inner.to_owned()));
    }
    match text {
        "true" => return Ok(AttributeValue::Bool(true)),
        "false" => return Ok(AttributeValue::Bool(false)),
        _ => {}
    }
    if text.contains('.') {
        if let Ok(d) = text.parse::<f64>() {
            return Ok(AttributeValue::Double(d));
        }
    } else if let Ok(i) = text.parse::<i64>() {
        return Ok(AttributeValue::Int(i));
    }
    Err(Error::Invalid(format!("cannot parse value '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn type_only_forms() {
        assert_eq!(
            parse_filter("smc.alarm").unwrap(),
            Filter::for_type("smc.alarm")
        );
        assert_eq!(
            parse_filter("smc.alarm :").unwrap(),
            Filter::for_type("smc.alarm")
        );
        assert_eq!(parse_filter("*").unwrap(), Filter::any());
        assert_eq!(parse_filter("").unwrap(), Filter::any());
        assert_eq!(parse_filter("  * :  ").unwrap(), Filter::any());
    }

    #[test]
    fn full_filter_matches_as_expected() {
        let f = parse_filter(r#"smc.sensor.reading : sensor == "hr" && bpm > 120"#).unwrap();
        let yes = Event::builder("smc.sensor.reading")
            .attr("sensor", "hr")
            .attr("bpm", 130i64)
            .build();
        let no = Event::builder("smc.sensor.reading")
            .attr("sensor", "hr")
            .attr("bpm", 100i64)
            .build();
        assert!(f.matches(&yes));
        assert!(!f.matches(&no));
    }

    #[test]
    fn every_operator_parses() {
        for (src, op) in [
            ("a == 1", Op::Eq),
            ("a != 1", Op::Ne),
            ("a < 1", Op::Lt),
            ("a <= 1", Op::Le),
            ("a > 1", Op::Gt),
            ("a >= 1", Op::Ge),
            (r#"a prefix "x""#, Op::Prefix),
            (r#"a suffix "x""#, Op::Suffix),
            (r#"a contains "x""#, Op::Contains),
        ] {
            let f = parse_filter(&format!("* : {src}")).unwrap();
            assert_eq!(f.constraints()[0].op, op, "{src}");
        }
        let f = parse_filter("* : exists(bpm)").unwrap();
        assert_eq!(f.constraints()[0].op, Op::Exists);
    }

    #[test]
    fn value_kinds() {
        let f = parse_filter(r#"* : a == 5 && b == 2.5 && c == true && d == "s""#).unwrap();
        let vals: Vec<&AttributeValue> = f.constraints().iter().map(|c| &c.value).collect();
        assert!(vals.contains(&&AttributeValue::Int(5)));
        assert!(vals.contains(&&AttributeValue::Double(2.5)));
        assert!(vals.contains(&&AttributeValue::Bool(true)));
        assert!(vals.contains(&&AttributeValue::Str("s".into())));
        // Negative numbers.
        let f = parse_filter("* : delta > -4").unwrap();
        assert_eq!(f.constraints()[0].value, AttributeValue::Int(-4));
    }

    #[test]
    fn comments_are_stripped() {
        let f = parse_filter("smc.alarm : severity >= 2   # page the nurse").unwrap();
        assert_eq!(f.constraints().len(), 1);
        assert_eq!(parse_filter("# whole line comment").unwrap(), Filter::any());
    }

    #[test]
    fn errors_are_descriptive() {
        for bad in [
            "bad type! : a == 1",
            "* : a ~ 1",
            "* : == 1",
            "* : a == ",
            "* : a == \"unterminated",
            "* : a == not_a_value",
            "* : exists(",
            "* : exists(bad name)",
            "* : && a == 1",
        ] {
            let err = parse_filter(bad);
            assert!(
                matches!(err, Err(Error::Invalid(_))),
                "'{bad}' gave {err:?}"
            );
        }
    }

    #[test]
    fn round_trips_through_display_semantics() {
        // The Display form differs syntactically but selects identically.
        let f = parse_filter(r#"smc.alarm : kind == "fever" && severity >= 2"#).unwrap();
        let e = Event::builder("smc.alarm")
            .attr("kind", "fever")
            .attr("severity", 3i64)
            .build();
        assert!(f.matches(&e));
        assert!(f.to_string().contains("smc.alarm"));
    }
}
