//! A cheaply cloneable byte slice backed by a shared buffer.
//!
//! [`SharedBytes`] is a `(Arc<[u8]>, range)` pair: many values can view
//! disjoint windows of one allocation. The batched publish path encodes a
//! whole burst of delivery frames into a single arena, wraps it in one
//! `Arc`, and hands each subscriber-bound frame out as a range — so the
//! per-event cost of sharing is a reference-count bump, never a copy.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable byte slice that shares ownership of its backing buffer.
///
/// ```
/// use smc_types::SharedBytes;
///
/// let arena = SharedBytes::from(vec![1u8, 2, 3, 4, 5]);
/// let window = arena.slice(1..4);
/// assert_eq!(&window[..], &[2, 3, 4]);
/// assert!(SharedBytes::same_buffer(&arena, &window));
/// ```
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl SharedBytes {
    /// Wraps a whole shared buffer.
    pub fn new(buf: Arc<[u8]>) -> Self {
        let end = buf.len();
        SharedBytes { buf, start: 0, end }
    }

    /// A view of `range` within this slice (indices are relative to this
    /// slice, not the backing buffer). Shares the backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> SharedBytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        SharedBytes {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if both views share one backing allocation —
    /// the zero-copy proof used by payload-sharing tests.
    pub fn same_buffer(a: &SharedBytes, b: &SharedBytes) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf)
    }

    /// The full backing buffer (ignores the view window).
    pub fn backing(&self) -> &Arc<[u8]> {
        &self.buf
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Arc<[u8]>> for SharedBytes {
    fn from(buf: Arc<[u8]>) -> Self {
        SharedBytes::new(buf)
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        SharedBytes::new(Arc::from(v))
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> Self {
        SharedBytes::new(Arc::from(v))
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedBytes({} bytes @ {}..{})",
            self.len(),
            self.start,
            self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_buffer_round_trip() {
        let s = SharedBytes::from(vec![1u8, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn slices_share_the_backing_allocation() {
        let arena = SharedBytes::from((0u8..10).collect::<Vec<_>>());
        let a = arena.slice(0..4);
        let b = arena.slice(4..10);
        assert_eq!(&a[..], &[0, 1, 2, 3]);
        assert_eq!(&b[..], &[4, 5, 6, 7, 8, 9]);
        assert!(SharedBytes::same_buffer(&a, &b));
        // Sub-slicing a slice stays relative to the view, not the buffer.
        let c = b.slice(1..3);
        assert_eq!(&c[..], &[5, 6]);
        assert!(SharedBytes::same_buffer(&arena, &c));
    }

    #[test]
    fn equality_is_by_content() {
        let a = SharedBytes::from(vec![7u8, 8]);
        let b = SharedBytes::from(vec![7u8, 8]);
        assert_eq!(a, b);
        assert!(!SharedBytes::same_buffer(&a, &b));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let s = SharedBytes::from(vec![1u8, 2]);
        let _ = s.slice(0..3);
    }

    #[test]
    fn empty_slice_is_fine() {
        let s = SharedBytes::from(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let t = s.slice(0..0);
        assert!(t.is_empty());
    }
}
