//! Clock abstraction so correctness tests can control time explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A source of monotonically non-decreasing microsecond timestamps.
///
/// Components that time out (discovery leases, retransmission timers) take a
/// `Clock` so tests can advance time manually instead of sleeping.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;

    /// Convenience: current time as a [`Duration`] since the epoch.
    fn now(&self) -> Duration {
        Duration::from_micros(self.now_micros())
    }
}

/// Wall-clock backed [`Clock`] based on [`Instant`], anchored at creation.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
    /// Offset so that different `SystemClock`s in one process roughly agree.
    offset_micros: u64,
}

impl SystemClock {
    /// Creates a clock anchored at the UNIX epoch (modulo precision).
    pub fn new() -> Self {
        let offset = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros() as u64;
        SystemClock {
            origin: Instant::now(),
            offset_micros: offset,
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.offset_micros + self.origin.elapsed().as_micros() as u64
    }
}

/// A manually driven clock for deterministic tests.
///
/// ```
/// use smc_types::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now_micros(), 0);
/// clock.advance_millis(5);
/// assert_eq!(clock.now_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Advances the clock by `millis` milliseconds.
    pub fn advance_millis(&self, millis: u64) {
        self.advance_micros(millis * 1_000);
    }

    /// Sets the clock to an absolute microsecond value.
    ///
    /// # Panics
    ///
    /// Panics if `micros` would move the clock backwards.
    pub fn set_micros(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        assert!(
            prev <= micros,
            "ManualClock must not move backwards ({prev} -> {micros})"
        );
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// A shareable handle to any clock.
pub type SharedClock = Arc<dyn Clock>;

/// Returns a shared wall clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_micros(10);
        c.advance_millis(1);
        assert_eq!(c.now_micros(), 1_010);
        assert_eq!(c.now(), Duration::from_micros(1_010));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = ManualClock::new();
        let d = c.clone();
        c.advance_micros(5);
        assert_eq!(d.now_micros(), 5);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::new();
        c.advance_micros(10);
        c.set_micros(3);
    }

    #[test]
    fn trait_object_usable() {
        let shared: SharedClock = Arc::new(ManualClock::new());
        assert_eq!(shared.now_micros(), 0);
    }
}
