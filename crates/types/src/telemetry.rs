//! The telemetry-plane wire protocol.
//!
//! Since PR 7 the system is multi-cell, but observability was still
//! strictly per-cell: a journey ended at the cell boundary and each
//! cell's registry was only visible on its own status server. This
//! module defines the typed `smc.telemetry` events that carry
//! observability *through the event system itself* (the ACME
//! aggregate-in-network architecture), mirroring how
//! [`SupervisionMsg`](crate::SupervisionMsg) carries the supervision
//! protocol:
//!
//! - **MetricDelta** — a delta-encoded snapshot of one cell's metric
//!   registry. Counters ship as non-negative increments since the last
//!   export (a reset after a crash saturates to "re-count from here"),
//!   so the observer's fold is monotone by construction; gauges ship as
//!   absolute values.
//! - **TraceExport** — hop records exported for cross-cell journey
//!   stitching, each tagged with the exporting cell.
//! - **SloReport** — burn rates of an error budget over a virtual-time
//!   window, computed close to the signal and shipped as data.
//!
//! Messages encode as plain [`Event`]s (scalar fields as attributes,
//! repeated fields in the payload via the wire codec) so they reuse the
//! event codec and can be filtered, journaled, and replayed like any
//! other event.

use bytes::{BufMut, BytesMut};

use crate::codec::{Reader, WriteExt};
use crate::event::Event;
use crate::id::ServiceId;
use crate::member::wellknown;
use crate::trace::TraceId;

/// One exported series: the delta (counters) or absolute value (gauges)
/// of a single labelled metric since the previous export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesDelta {
    /// Metric name (histograms export their `_bucket`/`_sum`/`_count`
    /// expansions as counter series).
    pub name: String,
    /// Label pairs, excluding the `cell` label the observer adds.
    pub labels: Vec<(String, String)>,
    /// `true`: `value` is an increment to fold in. `false`: `value` is
    /// the gauge's current reading.
    pub monotonic: bool,
    /// The increment or reading.
    pub value: u64,
}

/// One hop record exported for cross-cell stitching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopExport {
    /// Raw trace id the hop belongs to.
    pub trace: u64,
    /// Hop label (`"published"`, `"lease-lapse"`, `"remote-restart"`…).
    pub label: String,
    /// Virtual time the hop was recorded at, microseconds.
    pub at_micros: u64,
}

/// One step of the telemetry-plane protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TelemetryMsg {
    /// A delta-encoded metric snapshot from one cell.
    MetricDelta {
        /// Member id of the exporting cell.
        cell: u64,
        /// Per-cell export sequence number (1-based, gaps mean loss —
        /// impossible on the journaled channel, detectable elsewhere).
        export_seq: u64,
        /// The exported series.
        series: Vec<SeriesDelta>,
    },
    /// Hop records exported for journey stitching.
    TraceExport {
        /// Member id of the exporting cell.
        cell: u64,
        /// Per-cell export sequence number (shared with `MetricDelta`).
        export_seq: u64,
        /// The exported hops.
        hops: Vec<HopExport>,
        /// Raw trace ids whose local journeys are known-truncated (the
        /// exporting cell's trace ring wrapped over them).
        truncated: Vec<u64>,
    },
    /// An SLO burn-rate report over one virtual-time window.
    SloReport {
        /// Member id of the reporting cell.
        cell: u64,
        /// SLO name (`"delivery-latency"`, `"supervision-ttr"`…).
        slo: String,
        /// The window the burn rate was computed over, microseconds.
        window_micros: u64,
        /// Burn rate ×1000: 1000 = consuming exactly the budget,
        /// >1000 = on course to exhaust it before the period ends.
        burn_milli: u64,
        /// Remaining error budget ×1000 (0 = exhausted).
        budget_left_milli: u64,
    },
}

impl TelemetryMsg {
    /// The protocol kind tag carried in [`wellknown::TEL_KIND`].
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryMsg::MetricDelta { .. } => "metric-delta",
            TelemetryMsg::TraceExport { .. } => "trace-export",
            TelemetryMsg::SloReport { .. } => "slo-report",
        }
    }

    /// Render the message as a typed `smc.telemetry` event, ready for
    /// the event codec and the reliable channel. `timestamp_micros` is
    /// the export stamp the observer measures aggregation lag against.
    pub fn to_event(&self, timestamp_micros: u64) -> Event {
        let builder = Event::builder(wellknown::TELEMETRY)
            .attr(wellknown::TEL_KIND, self.kind())
            .timestamp_micros(timestamp_micros);
        match self {
            TelemetryMsg::MetricDelta {
                cell,
                export_seq,
                series,
            } => {
                let mut buf = BytesMut::new();
                buf.put_u32_le(series.len() as u32);
                for s in series {
                    buf.put_str(&s.name);
                    buf.put_u16_le(s.labels.len() as u16);
                    for (k, v) in &s.labels {
                        buf.put_str(k);
                        buf.put_str(v);
                    }
                    buf.put_u8(u8::from(s.monotonic));
                    buf.put_u64_le(s.value);
                }
                builder
                    .attr(wellknown::TEL_CELL, *cell as i64)
                    .attr(wellknown::TEL_SEQ, *export_seq as i64)
                    .payload(buf.freeze().to_vec())
            }
            TelemetryMsg::TraceExport {
                cell,
                export_seq,
                hops,
                truncated,
            } => {
                let mut buf = BytesMut::new();
                buf.put_u32_le(hops.len() as u32);
                for h in hops {
                    buf.put_u64_le(h.trace);
                    buf.put_str(&h.label);
                    buf.put_u64_le(h.at_micros);
                }
                buf.put_u32_le(truncated.len() as u32);
                for t in truncated {
                    buf.put_u64_le(*t);
                }
                builder
                    .attr(wellknown::TEL_CELL, *cell as i64)
                    .attr(wellknown::TEL_SEQ, *export_seq as i64)
                    .payload(buf.freeze().to_vec())
            }
            TelemetryMsg::SloReport {
                cell,
                slo,
                window_micros,
                burn_milli,
                budget_left_milli,
            } => builder
                .attr(wellknown::TEL_CELL, *cell as i64)
                .attr(wellknown::TEL_SLO, slo.as_str())
                .attr(wellknown::TEL_WINDOW, *window_micros as i64)
                .attr(wellknown::TEL_BURN, *burn_milli as i64)
                .attr(wellknown::TEL_BUDGET, *budget_left_milli as i64),
        }
        .build()
    }

    /// Parse a telemetry message back out of an event. Returns `None`
    /// for non-telemetry events or malformed attribute sets/payloads,
    /// so a receiver can drop garbage without failing the channel.
    pub fn from_event(event: &Event) -> Option<Self> {
        if event.event_type() != wellknown::TELEMETRY {
            return None;
        }
        let int = |name: &str| event.attr(name)?.as_int().map(|v| v as u64);
        let kind = event.attr(wellknown::TEL_KIND)?.as_str()?;
        let msg = match kind {
            "metric-delta" => {
                let mut r = Reader::new(event.payload());
                let n = r.u32().ok()? as usize;
                let mut series = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = r.str().ok()?;
                    let labels_n = r.u16().ok()? as usize;
                    let mut labels = Vec::with_capacity(labels_n.min(16));
                    for _ in 0..labels_n {
                        labels.push((r.str().ok()?, r.str().ok()?));
                    }
                    let monotonic = r.u8().ok()? != 0;
                    let value = r.u64().ok()?;
                    series.push(SeriesDelta {
                        name,
                        labels,
                        monotonic,
                        value,
                    });
                }
                TelemetryMsg::MetricDelta {
                    cell: int(wellknown::TEL_CELL)?,
                    export_seq: int(wellknown::TEL_SEQ)?,
                    series,
                }
            }
            "trace-export" => {
                let mut r = Reader::new(event.payload());
                let n = r.u32().ok()? as usize;
                let mut hops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let trace = r.u64().ok()?;
                    let label = r.str().ok()?;
                    let at_micros = r.u64().ok()?;
                    hops.push(HopExport {
                        trace,
                        label,
                        at_micros,
                    });
                }
                let t = r.u32().ok()? as usize;
                let mut truncated = Vec::with_capacity(t.min(1024));
                for _ in 0..t {
                    truncated.push(r.u64().ok()?);
                }
                TelemetryMsg::TraceExport {
                    cell: int(wellknown::TEL_CELL)?,
                    export_seq: int(wellknown::TEL_SEQ)?,
                    hops,
                    truncated,
                }
            }
            "slo-report" => TelemetryMsg::SloReport {
                cell: int(wellknown::TEL_CELL)?,
                slo: event.attr(wellknown::TEL_SLO)?.as_str()?.to_string(),
                window_micros: int(wellknown::TEL_WINDOW)?,
                burn_milli: int(wellknown::TEL_BURN)?,
                budget_left_milli: int(wellknown::TEL_BUDGET)?,
            },
            _ => return None,
        };
        Some(msg)
    }
}

/// Namespace offset for episode trace ids (see [`episode_trace`]).
const EPISODE_NS: u64 = 0xEC_0000;

/// The deterministic trace id of a peer-supervision failure episode:
/// the `ordinal`-th (1-based) adoption episode whose target is cell
/// member `target_member`. Both the adopter and the repaired cell can
/// derive it, so the hops each side records — lease-lapse, claim,
/// adopt, wire repair on one side, remote restart on the other — stitch
/// into one causal journey at the observer, queryable on its status
/// server as `/journey?sender=<0xEC0000 + member>&seq=<ordinal>`.
pub fn episode_trace(target_member: u64, ordinal: u64) -> TraceId {
    TraceId::for_event(ServiceId::from_raw(EPISODE_NS + target_member), ordinal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn all_messages() -> Vec<TelemetryMsg> {
        vec![
            TelemetryMsg::MetricDelta {
                cell: 1,
                export_seq: 7,
                series: vec![
                    SeriesDelta {
                        name: "smc_cell_published_total".into(),
                        labels: vec![],
                        monotonic: true,
                        value: 42,
                    },
                    SeriesDelta {
                        name: "smc_cell_members".into(),
                        labels: vec![("shard".into(), "a\"b".into())],
                        monotonic: false,
                        value: 3,
                    },
                ],
            },
            TelemetryMsg::TraceExport {
                cell: 2,
                export_seq: 8,
                hops: vec![
                    HopExport {
                        trace: 0xDEAD,
                        label: "lease-lapse".into(),
                        at_micros: 1_000,
                    },
                    HopExport {
                        trace: 0xDEAD,
                        label: "claim".into(),
                        at_micros: 1_002,
                    },
                ],
                truncated: vec![0xBEEF],
            },
            TelemetryMsg::SloReport {
                cell: 1,
                slo: "delivery-latency".into(),
                window_micros: 5_000_000,
                burn_milli: 1_250,
                budget_left_milli: 730,
            },
        ]
    }

    #[test]
    fn every_message_round_trips_through_the_event_codec() {
        for msg in all_messages() {
            let event = msg.to_event(42);
            let bytes = to_bytes(&event);
            let back: Event = from_bytes(&bytes).expect("event decodes");
            assert_eq!(back.event_type(), wellknown::TELEMETRY);
            assert_eq!(back.timestamp_micros(), 42);
            let parsed = TelemetryMsg::from_event(&back).expect("message parses");
            assert_eq!(parsed, msg, "round trip for kind {}", msg.kind());
        }
    }

    #[test]
    fn empty_collections_round_trip() {
        let msg = TelemetryMsg::MetricDelta {
            cell: 1,
            export_seq: 1,
            series: vec![],
        };
        let back = TelemetryMsg::from_event(&msg.to_event(0)).expect("parses");
        assert_eq!(back, msg);
        let msg = TelemetryMsg::TraceExport {
            cell: 1,
            export_seq: 2,
            hops: vec![],
            truncated: vec![],
        };
        let back = TelemetryMsg::from_event(&msg.to_event(0)).expect("parses");
        assert_eq!(back, msg);
    }

    #[test]
    fn foreign_and_malformed_events_parse_to_none() {
        let foreign = Event::builder("smc.alarm").build();
        assert!(TelemetryMsg::from_event(&foreign).is_none());

        let unknown_kind = Event::builder(wellknown::TELEMETRY)
            .attr(wellknown::TEL_KIND, "gossip")
            .build();
        assert!(TelemetryMsg::from_event(&unknown_kind).is_none());

        let missing_attr = Event::builder(wellknown::TELEMETRY)
            .attr(wellknown::TEL_KIND, "slo-report")
            .attr(wellknown::TEL_CELL, 1i64)
            .build();
        assert!(
            TelemetryMsg::from_event(&missing_attr).is_none(),
            "an slo report without a window is malformed"
        );

        // A metric delta whose payload is torn parses to None, not a
        // panic or a half-read series list.
        let torn = Event::builder(wellknown::TELEMETRY)
            .attr(wellknown::TEL_KIND, "metric-delta")
            .attr(wellknown::TEL_CELL, 1i64)
            .attr(wellknown::TEL_SEQ, 1i64)
            .payload(vec![9, 0, 0, 0, 1])
            .build();
        assert!(TelemetryMsg::from_event(&torn).is_none());
    }

    #[test]
    fn kind_tags_are_distinct() {
        let msgs = all_messages();
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a.kind(), b.kind());
            }
        }
    }

    #[test]
    fn episode_traces_are_distinct_and_deterministic() {
        assert_eq!(episode_trace(1, 1), episode_trace(1, 1));
        assert_ne!(episode_trace(1, 1), episode_trace(2, 1));
        assert_ne!(episode_trace(1, 1), episode_trace(1, 2));
        assert!(episode_trace(1, 1).is_some());
    }
}
