//! Compact causal trace identifiers.
//!
//! A [`TraceId`] names one event's journey through the cell — publish,
//! match, proxy enqueue, transmit, retransmit, ack, delivery — so an
//! observability layer can stitch per-hop records back into a single
//! story. It is minted *deterministically* from the event's identity
//! (`publisher ‖ seq`, the same pair that forms the `EventId`), which
//! means any component that can see the event can derive its trace id
//! without extra plumbing, and two runs of a deterministic harness mint
//! identical ids.
//!
//! On the wire the id rides as a trailing optional `u64` on
//! `Publish`/`Deliver` packets: absent (old frames) decodes as
//! [`TraceId::NONE`], so pre-trace peers interoperate unchanged.

/// A 64-bit causal trace identifier. `0` is reserved for "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The absent trace id (old frames, untraced events).
    pub const NONE: TraceId = TraceId(0);

    /// Builds a trace id from its raw wire value.
    pub const fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw wire value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is a real trace id (not [`TraceId::NONE`]).
    pub const fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Mints the trace id for the event identified by `publisher ‖ seq`.
    ///
    /// Deterministic (a splitmix64-style mix of the two halves) and
    /// never [`TraceId::NONE`], so every stamped event has a derivable,
    /// stable trace id.
    pub const fn for_event(publisher: crate::id::ServiceId, seq: u64) -> TraceId {
        let mut z = publisher
            .raw()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z == 0 {
            // publisher=0 ‖ seq=0 (and only that degenerate identity)
            // mixes to zero; nudge it off the reserved value.
            z = 1;
        }
        TraceId(z)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_some() {
            write!(f, "{:016x}", self.0)
        } else {
            f.write_str("-")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;

    #[test]
    fn deterministic_and_nonzero() {
        let a = TraceId::for_event(ServiceId::from_raw(9), 4);
        let b = TraceId::for_event(ServiceId::from_raw(9), 4);
        assert_eq!(a, b);
        assert!(a.is_some());
        assert!(TraceId::for_event(ServiceId::NIL, 0).is_some());
    }

    #[test]
    fn distinct_events_get_distinct_ids() {
        let a = TraceId::for_event(ServiceId::from_raw(9), 4);
        let b = TraceId::for_event(ServiceId::from_raw(9), 5);
        let c = TraceId::for_event(ServiceId::from_raw(10), 4);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_marks_untraced() {
        assert_eq!(TraceId::NONE.to_string(), "-");
        assert_eq!(
            TraceId::from_raw(0xAB).to_string(),
            format!("{:016x}", 0xAB)
        );
    }
}
