//! Shared vocabulary of the AMUSE self-managed-cell (SMC) reproduction:
//! identifiers, events, content filters, the byte-array wire codec, packet
//! formats and clock abstractions.
//!
//! This crate has no opinions about networking or threading — it only
//! defines *what* the components say to each other, exactly as the paper's
//! transport layer confines itself to `send`/`recv` of byte arrays.
//!
//! # Example
//!
//! ```
//! use smc_types::{codec, Event, Filter, Op, Packet, ServiceId};
//!
//! // A sensor event…
//! let event = Event::builder("smc.sensor.reading")
//!     .attr("sensor", "heart-rate")
//!     .attr("bpm", 131i64)
//!     .publisher(ServiceId::from_raw(0xA))
//!     .seq(1)
//!     .build();
//!
//! // …a filter that matches it…
//! let filter = Filter::for_type("smc.sensor.reading").with(("bpm", Op::Gt, 120i64));
//! assert!(filter.matches(&event));
//!
//! // …and the byte-array form that crosses the transport layer.
//! let wire = codec::to_bytes(&Packet::publish(event));
//! let back: Packet = codec::from_bytes(&wire)?;
//! assert!(matches!(back, Packet::Publish { .. }));
//! # Ok::<(), smc_types::CodecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod codec;
pub mod error;
pub mod event;
pub mod filter;
pub mod filter_text;
pub mod id;
pub mod member;
pub mod packet;
pub mod shared;
pub mod snap;
pub mod spsc;
pub mod supervision;
pub mod telemetry;
pub mod trace;
pub mod value;
pub mod wal;

pub use clock::{system_clock, Clock, ManualClock, SharedClock, SystemClock};
pub use error::{CodecError, Error, Result};
pub use event::{AttributeSet, Event, EventBuilder, Payload};
pub use filter::{Constraint, Filter, Op, Subscription};
pub use filter_text::parse_filter;
pub use id::{CellId, EventId, ServiceId, SubscriptionId};
pub use member::{
    device_type_of, member_id_of, new_member_event, purge_member_event, wellknown, PurgeReason,
    ServiceInfo,
};
pub use packet::{encode_deliver, encode_deliver_arena, Packet};
pub use shared::SharedBytes;
pub use snap::SnapshotCell;
pub use spsc::{SpscReceiver, SpscSender};
pub use supervision::SupervisionMsg;
pub use telemetry::{episode_trace, HopExport, SeriesDelta, TelemetryMsg};
pub use trace::TraceId;
pub use value::AttributeValue;
pub use wal::{CoreSnapshot, CursorEntry, OutboundEntry, PendingRx, RetainedOutbound, WalRecord};
