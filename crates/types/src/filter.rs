//! Content-based filters and subscriptions.
//!
//! A [`Filter`] is a conjunction of [`Constraint`]s over event attributes,
//! optionally restricted to one event type — the same model as Siena's
//! filters, which the original prototype used. Filters support a *covering*
//! check used by engines to collapse redundant subscriptions.

use std::cmp::Ordering;
use std::fmt;

use crate::event::Event;
use crate::id::{ServiceId, SubscriptionId};
use crate::value::AttributeValue;

/// Comparison operator in a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    /// Attribute equals the value.
    Eq = 0,
    /// Attribute differs from the value (but must be present & comparable).
    Ne = 1,
    /// Attribute is strictly less than the value.
    Lt = 2,
    /// Attribute is less than or equal to the value.
    Le = 3,
    /// Attribute is strictly greater than the value.
    Gt = 4,
    /// Attribute is greater than or equal to the value.
    Ge = 5,
    /// String attribute starts with the (string) value.
    Prefix = 6,
    /// String attribute ends with the (string) value.
    Suffix = 7,
    /// String attribute contains the (string) value as a substring.
    Contains = 8,
    /// Attribute exists; the value is ignored.
    Exists = 9,
}

impl Op {
    /// All operators, in tag order.
    pub const ALL: [Op; 10] = [
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Prefix,
        Op::Suffix,
        Op::Contains,
        Op::Exists,
    ];

    /// Decodes an operator from its wire tag.
    pub fn from_tag(tag: u8) -> Option<Op> {
        Op::ALL.get(tag as usize).copied()
    }

    /// The wire tag for this operator.
    pub fn tag(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Prefix => "prefix",
            Op::Suffix => "suffix",
            Op::Contains => "contains",
            Op::Exists => "exists",
        };
        f.write_str(s)
    }
}

/// A single predicate over one named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Attribute name the predicate applies to.
    pub name: String,
    /// Comparison operator.
    pub op: Op,
    /// Comparison value (ignored for [`Op::Exists`]).
    pub value: AttributeValue,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(name: impl Into<String>, op: Op, value: impl Into<AttributeValue>) -> Self {
        Constraint {
            name: name.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the constraint against a concrete attribute value.
    pub fn matches_value(&self, actual: &AttributeValue) -> bool {
        match self.op {
            Op::Exists => true,
            Op::Eq => actual.eq_filter(&self.value),
            Op::Ne => {
                matches!(actual.partial_cmp_filter(&self.value), Some(o) if o != Ordering::Equal)
            }
            Op::Lt => matches!(actual.partial_cmp_filter(&self.value), Some(Ordering::Less)),
            Op::Le => matches!(
                actual.partial_cmp_filter(&self.value),
                Some(Ordering::Less | Ordering::Equal)
            ),
            Op::Gt => matches!(
                actual.partial_cmp_filter(&self.value),
                Some(Ordering::Greater)
            ),
            Op::Ge => matches!(
                actual.partial_cmp_filter(&self.value),
                Some(Ordering::Greater | Ordering::Equal)
            ),
            Op::Prefix => match (actual.as_str(), self.value.as_str()) {
                (Some(a), Some(p)) => a.starts_with(p),
                _ => false,
            },
            Op::Suffix => match (actual.as_str(), self.value.as_str()) {
                (Some(a), Some(s)) => a.ends_with(s),
                _ => false,
            },
            Op::Contains => match (actual.as_str(), self.value.as_str()) {
                (Some(a), Some(s)) => a.contains(s),
                _ => false,
            },
        }
    }

    /// Evaluates the constraint against an event (absent attribute never
    /// matches).
    pub fn matches_event(&self, event: &Event) -> bool {
        match event.attr(&self.name) {
            Some(v) => self.matches_value(v),
            None => false,
        }
    }

    /// Returns `true` if satisfying `self` *implies* satisfying `other`
    /// (both constraints must concern the same attribute).
    ///
    /// The check is sound but deliberately incomplete: it answers `true`
    /// only when implication is certain. Engines use it to detect covering
    /// subscriptions; a `false` answer merely costs a little duplicate work.
    pub fn implies(&self, other: &Constraint) -> bool {
        if self.name != other.name {
            return false;
        }
        // Anything implies an existence test on the same attribute.
        if other.op == Op::Exists {
            return true;
        }
        if self.op == Op::Exists {
            return false;
        }
        let cmp = self.value.partial_cmp_filter(&other.value);
        match (self.op, other.op) {
            (a, b) if a == b && cmp == Some(Ordering::Equal) => true,
            (Op::Eq, _) => {
                // x == v implies x OP w iff v OP w holds.
                Constraint::new(other.name.clone(), other.op, other.value.clone())
                    .matches_value(&self.value)
            }
            (Op::Lt, Op::Lt) | (Op::Lt, Op::Le) | (Op::Le, Op::Le) => {
                matches!(cmp, Some(Ordering::Less | Ordering::Equal))
            }
            (Op::Le, Op::Lt) => matches!(cmp, Some(Ordering::Less)),
            (Op::Gt, Op::Gt) | (Op::Gt, Op::Ge) | (Op::Ge, Op::Ge) => {
                matches!(cmp, Some(Ordering::Greater | Ordering::Equal))
            }
            (Op::Ge, Op::Gt) => matches!(cmp, Some(Ordering::Greater)),
            (Op::Lt, Op::Ne) => matches!(cmp, Some(Ordering::Less | Ordering::Equal)),
            (Op::Gt, Op::Ne) => matches!(cmp, Some(Ordering::Greater | Ordering::Equal)),
            (Op::Ne, Op::Ne) => cmp == Some(Ordering::Equal),
            (Op::Prefix, Op::Prefix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => a.starts_with(b),
                _ => false,
            },
            (Op::Suffix, Op::Suffix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => a.ends_with(b),
                _ => false,
            },
            (Op::Prefix, Op::Contains)
            | (Op::Suffix, Op::Contains)
            | (Op::Contains, Op::Contains) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => a.contains(b),
                _ => false,
            },
            _ => false,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == Op::Exists {
            write!(f, "{} exists", self.name)
        } else {
            write!(f, "{} {} {}", self.name, self.op, self.value)
        }
    }
}

/// A content-based filter: an optional event-type restriction plus a
/// conjunction of constraints.
///
/// ```
/// use smc_types::{Event, Filter, Op};
///
/// let filter = Filter::for_type("smc.sensor.reading")
///     .with(("bpm", Op::Gt, 120i64));
/// let calm = Event::builder("smc.sensor.reading").attr("bpm", 70i64).build();
/// let racing = Event::builder("smc.sensor.reading").attr("bpm", 150i64).build();
/// assert!(!filter.matches(&calm));
/// assert!(filter.matches(&racing));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    event_type: Option<String>,
    constraints: Vec<Constraint>,
}

impl Filter {
    /// A filter matching every event.
    pub fn any() -> Self {
        Filter::default()
    }

    /// A filter matching all events of one type.
    pub fn for_type(event_type: impl Into<String>) -> Self {
        Filter {
            event_type: Some(event_type.into()),
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint (builder style).
    pub fn with(mut self, constraint: impl Into<Constraint>) -> Self {
        self.push(constraint.into());
        self
    }

    /// Adds a constraint in place, keeping constraints sorted by name for a
    /// canonical form.
    pub fn push(&mut self, constraint: Constraint) {
        let at = self
            .constraints
            .partition_point(|c| c.name.as_str() <= constraint.name.as_str());
        self.constraints.insert(at, constraint);
    }

    /// The event-type restriction, if any.
    pub fn event_type(&self) -> Option<&str> {
        self.event_type.as_deref()
    }

    /// Sets or clears the event-type restriction.
    pub fn set_event_type(&mut self, event_type: Option<String>) {
        self.event_type = event_type;
    }

    /// The constraints, sorted by attribute name.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if the filter has no type restriction and no
    /// constraints (i.e. matches everything).
    pub fn is_empty(&self) -> bool {
        self.event_type.is_none() && self.constraints.is_empty()
    }

    /// Evaluates the filter against an event.
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(t) = &self.event_type {
            if t != event.event_type() {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.matches_event(event))
    }

    /// Returns `true` if `self` *covers* `other`: every event matched by
    /// `other` is certainly matched by `self`.
    ///
    /// Sound but incomplete (a `false` result does not prove non-covering).
    pub fn covers(&self, other: &Filter) -> bool {
        match (&self.event_type, &other.event_type) {
            (Some(a), Some(b)) if a != b => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        // Every constraint of self must be implied by some constraint of
        // other (other is the stronger conjunction).
        self.constraints
            .iter()
            .all(|sc| other.constraints.iter().any(|oc| oc.implies(sc)))
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event_type {
            Some(t) => write!(f, "[{t}]")?,
            None => write!(f, "[*]")?,
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, " && ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl<N, V> From<(N, Op, V)> for Constraint
where
    N: Into<String>,
    V: Into<AttributeValue>,
{
    fn from((name, op, value): (N, Op, V)) -> Self {
        Constraint::new(name, op, value)
    }
}

/// A subscription: a filter owned by a subscriber, registered with the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Bus-assigned identifier.
    pub id: SubscriptionId,
    /// The subscribing service.
    pub subscriber: ServiceId,
    /// The content filter.
    pub filter: Filter,
}

impl Subscription {
    /// Creates a subscription record.
    pub fn new(id: SubscriptionId, subscriber: ServiceId, filter: Filter) -> Self {
        Subscription {
            id,
            subscriber,
            filter,
        }
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {}: {}", self.id, self.subscriber, self.filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(bpm: i64) -> Event {
        Event::builder("r")
            .attr("bpm", bpm)
            .attr("sensor", "hr")
            .build()
    }

    #[test]
    fn op_tag_round_trip() {
        for op in Op::ALL {
            assert_eq!(Op::from_tag(op.tag()), Some(op));
        }
        assert_eq!(Op::from_tag(200), None);
    }

    #[test]
    fn relational_constraints() {
        let e = ev(100);
        assert!(Constraint::new("bpm", Op::Eq, 100i64).matches_event(&e));
        assert!(Constraint::new("bpm", Op::Ne, 99i64).matches_event(&e));
        assert!(!Constraint::new("bpm", Op::Ne, 100i64).matches_event(&e));
        assert!(Constraint::new("bpm", Op::Lt, 101i64).matches_event(&e));
        assert!(Constraint::new("bpm", Op::Le, 100i64).matches_event(&e));
        assert!(Constraint::new("bpm", Op::Gt, 99i64).matches_event(&e));
        assert!(Constraint::new("bpm", Op::Ge, 100i64).matches_event(&e));
        assert!(!Constraint::new("bpm", Op::Gt, 100i64).matches_event(&e));
    }

    #[test]
    fn string_constraints() {
        let e = Event::builder("r").attr("name", "heart-rate").build();
        assert!(Constraint::new("name", Op::Prefix, "heart").matches_event(&e));
        assert!(Constraint::new("name", Op::Suffix, "rate").matches_event(&e));
        assert!(Constraint::new("name", Op::Contains, "t-r").matches_event(&e));
        assert!(!Constraint::new("name", Op::Prefix, "rate").matches_event(&e));
        // String ops on non-strings never match.
        let n = ev(5);
        assert!(!Constraint::new("bpm", Op::Prefix, "5").matches_event(&n));
    }

    #[test]
    fn exists_constraint() {
        let e = ev(10);
        assert!(Constraint::new("bpm", Op::Exists, 0i64).matches_event(&e));
        assert!(!Constraint::new("nope", Op::Exists, 0i64).matches_event(&e));
    }

    #[test]
    fn absent_attribute_never_matches() {
        let e = ev(10);
        assert!(!Constraint::new("missing", Op::Eq, 10i64).matches_event(&e));
        assert!(!Constraint::new("missing", Op::Ne, 10i64).matches_event(&e));
    }

    #[test]
    fn mismatched_types_never_match() {
        let e = Event::builder("r").attr("x", "str").build();
        assert!(!Constraint::new("x", Op::Lt, 5i64).matches_event(&e));
        assert!(!Constraint::new("x", Op::Eq, 5i64).matches_event(&e));
    }

    #[test]
    fn cross_numeric_matching() {
        let e = Event::builder("r").attr("t", 36.6f64).build();
        assert!(Constraint::new("t", Op::Gt, 36i64).matches_event(&e));
    }

    #[test]
    fn filter_type_restriction() {
        let f = Filter::for_type("a");
        assert!(f.matches(&Event::new("a")));
        assert!(!f.matches(&Event::new("b")));
        assert!(Filter::any().matches(&Event::new("b")));
    }

    #[test]
    fn filter_conjunction() {
        let f = Filter::any()
            .with(("bpm", Op::Gt, 50i64))
            .with(("bpm", Op::Lt, 150i64));
        assert!(f.matches(&ev(100)));
        assert!(!f.matches(&ev(10)));
        assert!(!f.matches(&ev(200)));
    }

    #[test]
    fn filter_constraints_sorted_by_name() {
        let f = Filter::any()
            .with(("z", Op::Exists, 0i64))
            .with(("a", Op::Exists, 0i64));
        let names: Vec<&str> = f.constraints().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn implies_relational() {
        let c = |op, v: i64| Constraint::new("x", op, v);
        assert!(c(Op::Gt, 10).implies(&c(Op::Gt, 5)));
        assert!(c(Op::Gt, 10).implies(&c(Op::Ge, 10)));
        assert!(!c(Op::Gt, 5).implies(&c(Op::Gt, 10)));
        assert!(c(Op::Lt, 5).implies(&c(Op::Lt, 10)));
        assert!(c(Op::Le, 5).implies(&c(Op::Lt, 6)));
        assert!(!c(Op::Le, 5).implies(&c(Op::Lt, 5)));
        assert!(c(Op::Eq, 7).implies(&c(Op::Gt, 5)));
        assert!(c(Op::Eq, 7).implies(&c(Op::Ne, 8)));
        assert!(!c(Op::Eq, 7).implies(&c(Op::Ne, 7)));
        assert!(c(Op::Gt, 7).implies(&c(Op::Ne, 7)));
        assert!(c(Op::Gt, 8).implies(&c(Op::Ne, 7)));
        assert!(!c(Op::Gt, 6).implies(&c(Op::Ne, 7)));
    }

    #[test]
    fn implies_exists_and_strings() {
        let gt = Constraint::new("x", Op::Gt, 1i64);
        let exists = Constraint::new("x", Op::Exists, 0i64);
        assert!(gt.implies(&exists));
        assert!(!exists.implies(&gt));
        let p_long = Constraint::new("s", Op::Prefix, "heart-");
        let p_short = Constraint::new("s", Op::Prefix, "heart");
        assert!(p_long.implies(&p_short));
        assert!(!p_short.implies(&p_long));
        let cont = Constraint::new("s", Op::Contains, "ear");
        assert!(p_long.implies(&cont));
    }

    #[test]
    fn implies_requires_same_attribute() {
        let a = Constraint::new("x", Op::Gt, 10i64);
        let b = Constraint::new("y", Op::Gt, 5i64);
        assert!(!a.implies(&b));
    }

    #[test]
    fn covering_basic() {
        let wide = Filter::for_type("r").with(("bpm", Op::Gt, 50i64));
        let narrow = Filter::for_type("r").with(("bpm", Op::Gt, 100i64));
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(Filter::any().covers(&narrow));
        assert!(!narrow.covers(&Filter::any()));
        // Different event types never cover.
        let other = Filter::for_type("q").with(("bpm", Op::Gt, 100i64));
        assert!(!wide.covers(&other));
    }

    #[test]
    fn covering_conjunction() {
        let wide = Filter::any().with(("a", Op::Gt, 0i64));
        let narrow = Filter::any()
            .with(("a", Op::Gt, 5i64))
            .with(("b", Op::Eq, 1i64));
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
    }

    #[test]
    fn display_forms() {
        let f = Filter::for_type("r").with(("bpm", Op::Gt, 10i64));
        assert_eq!(f.to_string(), "[r] bpm > 10");
        assert_eq!(Filter::any().to_string(), "[*]");
        let s = Subscription::new(SubscriptionId(3), ServiceId::from_raw(1), Filter::any());
        assert!(s.to_string().contains("sub-3"));
    }

    #[test]
    fn filter_is_empty() {
        assert!(Filter::any().is_empty());
        assert!(!Filter::for_type("t").is_empty());
        assert!(!Filter::any().with(("a", Op::Exists, 0i64)).is_empty());
    }
}
