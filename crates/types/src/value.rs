//! Attribute values carried by events and compared by filters.

use std::cmp::Ordering;
use std::fmt;

/// A single attribute value in an event or a filter constraint.
///
/// The set of variants mirrors what Siena's notification model offered the
/// original prototype (booleans, integers, doubles, strings and opaque byte
/// sequences), which is sufficient for the body-area-network sensor events
/// the paper targets.
///
/// ```
/// use smc_types::AttributeValue;
///
/// let v = AttributeValue::from(72i64);
/// assert_eq!(v.as_int(), Some(72));
/// assert!(v.is_numeric());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeValue {
    /// A boolean flag.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// A 64-bit IEEE-754 floating point number.
    Double(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte sequence.
    Bytes(Vec<u8>),
}

impl AttributeValue {
    /// Returns the boolean, if this is a [`AttributeValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            AttributeValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the integer, if this is an [`AttributeValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            AttributeValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the double, if this is an [`AttributeValue::Double`].
    pub fn as_double(&self) -> Option<f64> {
        match *self {
            AttributeValue::Double(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is numeric (`Int` or `Double`).
    pub fn as_numeric(&self) -> Option<f64> {
        match *self {
            AttributeValue::Int(i) => Some(i as f64),
            AttributeValue::Double(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the string slice, if this is an [`AttributeValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttributeValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice, if this is an [`AttributeValue::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            AttributeValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns `true` for `Int` and `Double` values.
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttributeValue::Int(_) | AttributeValue::Double(_))
    }

    /// A short name of the variant, used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttributeValue::Bool(_) => "bool",
            AttributeValue::Int(_) => "int",
            AttributeValue::Double(_) => "double",
            AttributeValue::Str(_) => "string",
            AttributeValue::Bytes(_) => "bytes",
        }
    }

    /// Compares two values for filtering purposes.
    ///
    /// Numeric values compare across `Int`/`Double`; all other comparisons
    /// require identical variants. `None` means the two values are not
    /// comparable (a filter constraint over incomparable values simply does
    /// not match, it never errors).
    pub fn partial_cmp_filter(&self, other: &AttributeValue) -> Option<Ordering> {
        use AttributeValue::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                // Unwrap is fine: is_numeric guarantees as_numeric is Some.
                a.as_numeric()
                    .unwrap()
                    .partial_cmp(&b.as_numeric().unwrap())
            }
            _ => None,
        }
    }

    /// Equality for filtering purposes: numeric values compare across
    /// variants (`Int(5)` equals `Double(5.0)`).
    pub fn eq_filter(&self, other: &AttributeValue) -> bool {
        self.partial_cmp_filter(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Bool(b) => write!(f, "{b}"),
            AttributeValue::Int(i) => write!(f, "{i}"),
            AttributeValue::Double(d) => write!(f, "{d}"),
            AttributeValue::Str(s) => write!(f, "{s:?}"),
            AttributeValue::Bytes(b) => write!(f, "0x{}", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

impl From<bool> for AttributeValue {
    fn from(b: bool) -> Self {
        AttributeValue::Bool(b)
    }
}

impl From<i64> for AttributeValue {
    fn from(i: i64) -> Self {
        AttributeValue::Int(i)
    }
}

impl From<i32> for AttributeValue {
    fn from(i: i32) -> Self {
        AttributeValue::Int(i64::from(i))
    }
}

impl From<u32> for AttributeValue {
    fn from(i: u32) -> Self {
        AttributeValue::Int(i64::from(i))
    }
}

impl From<f64> for AttributeValue {
    fn from(d: f64) -> Self {
        AttributeValue::Double(d)
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Str(s.to_owned())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Str(s)
    }
}

impl From<Vec<u8>> for AttributeValue {
    fn from(b: Vec<u8>) -> Self {
        AttributeValue::Bytes(b)
    }
}

impl From<&[u8]> for AttributeValue {
    fn from(b: &[u8]) -> Self {
        AttributeValue::Bytes(b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(AttributeValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttributeValue::Int(7).as_int(), Some(7));
        assert_eq!(AttributeValue::Double(1.5).as_double(), Some(1.5));
        assert_eq!(AttributeValue::from("hi").as_str(), Some("hi"));
        assert_eq!(AttributeValue::from(vec![1u8]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(AttributeValue::Bool(true).as_int(), None);
        assert_eq!(AttributeValue::Int(1).as_str(), None);
    }

    #[test]
    fn numeric_cross_variant_comparison() {
        let i = AttributeValue::Int(5);
        let d = AttributeValue::Double(5.0);
        assert!(i.eq_filter(&d));
        assert_eq!(
            i.partial_cmp_filter(&AttributeValue::Double(5.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttributeValue::Double(9.0).partial_cmp_filter(&AttributeValue::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        let s = AttributeValue::from("x");
        let i = AttributeValue::Int(1);
        assert_eq!(s.partial_cmp_filter(&i), None);
        assert!(!s.eq_filter(&i));
        assert_eq!(
            AttributeValue::Bool(true).partial_cmp_filter(&AttributeValue::Int(1)),
            None
        );
    }

    #[test]
    fn nan_compares_as_none() {
        let nan = AttributeValue::Double(f64::NAN);
        assert_eq!(nan.partial_cmp_filter(&AttributeValue::Double(1.0)), None);
        assert!(!nan.eq_filter(&nan));
    }

    #[test]
    fn string_ordering() {
        let a = AttributeValue::from("abc");
        let b = AttributeValue::from("abd");
        assert_eq!(a.partial_cmp_filter(&b), Some(Ordering::Less));
    }

    #[test]
    fn bytes_ordering() {
        let a = AttributeValue::from(vec![1u8, 2]);
        let b = AttributeValue::from(vec![1u8, 3]);
        assert_eq!(a.partial_cmp_filter(&b), Some(Ordering::Less));
    }

    #[test]
    fn type_names() {
        assert_eq!(AttributeValue::Bool(true).type_name(), "bool");
        assert_eq!(AttributeValue::Int(1).type_name(), "int");
        assert_eq!(AttributeValue::Double(1.0).type_name(), "double");
        assert_eq!(AttributeValue::from("s").type_name(), "string");
        assert_eq!(AttributeValue::from(vec![0u8]).type_name(), "bytes");
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttributeValue::Int(42).to_string(), "42");
        assert_eq!(AttributeValue::from("a").to_string(), "\"a\"");
        assert_eq!(
            AttributeValue::from(vec![0xabu8, 0x01]).to_string(),
            "0xab01"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(AttributeValue::from(3i32), AttributeValue::Int(3));
        assert_eq!(AttributeValue::from(3u32), AttributeValue::Int(3));
        assert_eq!(
            AttributeValue::from(String::from("x")),
            AttributeValue::Str("x".into())
        );
        assert_eq!(
            AttributeValue::from(&b"ab"[..]),
            AttributeValue::Bytes(vec![97, 98])
        );
    }
}
