//! Hand-rolled binary wire format.
//!
//! The paper deliberately passes **byte arrays** through its transport layer
//! instead of relying on Java serialisation, so that SMC services can be
//! written in any language. This module is the Rust equivalent: a small,
//! explicit, length-prefixed little-endian encoding with no reflection and
//! no schema compiler.
//!
//! All multi-byte integers are little-endian. Strings are UTF-8 with a
//! `u16` length prefix; byte arrays carry a `u32` length prefix. Decoders
//! enforce sanity limits so a corrupt length prefix cannot trigger huge
//! allocations.

use bytes::{BufMut, BytesMut};

use crate::error::CodecError;
use crate::event::{AttributeSet, Event};
use crate::filter::{Constraint, Filter, Op, Subscription};
use crate::id::{CellId, EventId, ServiceId, SubscriptionId};
use crate::value::AttributeValue;

/// Maximum length accepted for a string field.
pub const MAX_STR_LEN: usize = u16::MAX as usize;
/// Maximum length accepted for a byte-array field (16 MiB).
pub const MAX_BYTES_LEN: usize = 16 * 1024 * 1024;
/// Maximum number of attributes or constraints in one collection.
pub const MAX_COLLECTION_LEN: usize = 4096;

/// Types that can be written to the wire.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Types that can be read back from the wire.
pub trait Decode: Sized {
    /// Decodes one value from the reader, consuming exactly its bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the input is truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.to_vec()
}

/// Decodes a value from a byte slice, requiring the slice to be consumed
/// exactly.
///
/// # Errors
///
/// Returns a [`CodecError`] if the input is truncated, malformed, or has
/// trailing bytes.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().expect("take returned 8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean encoded as one byte (0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag {
                what: "bool",
                tag: t,
            }),
        }
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a `u32`-length-prefixed byte array.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_BYTES_LEN {
            return Err(CodecError::LengthOverflow {
                declared: len,
                limit: MAX_BYTES_LEN,
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a collection length prefix, enforcing [`MAX_COLLECTION_LEN`].
    pub fn collection_len(&mut self) -> Result<usize, CodecError> {
        let len = self.u16()? as usize;
        if len > MAX_COLLECTION_LEN {
            return Err(CodecError::LengthOverflow {
                declared: len,
                limit: MAX_COLLECTION_LEN,
            });
        }
        Ok(len)
    }
}

/// Writer-side helpers mirroring [`Reader`].
pub trait WriteExt {
    /// Writes a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds [`MAX_STR_LEN`]; encoders construct
    /// such strings only from validated inputs.
    fn put_str(&mut self, s: &str);
    /// Writes a `u32`-length-prefixed byte array.
    fn put_bytes_field(&mut self, b: &[u8]);
    /// Writes a boolean as one byte.
    fn put_bool(&mut self, b: bool);
}

impl WriteExt for BytesMut {
    fn put_str(&mut self, s: &str) {
        assert!(
            s.len() <= MAX_STR_LEN,
            "string field exceeds {MAX_STR_LEN} bytes"
        );
        self.put_u16_le(s.len() as u16);
        self.put_slice(s.as_bytes());
    }

    fn put_bytes_field(&mut self, b: &[u8]) {
        assert!(
            b.len() <= MAX_BYTES_LEN,
            "byte field exceeds {MAX_BYTES_LEN} bytes"
        );
        self.put_u32_le(b.len() as u32);
        self.put_slice(b);
    }

    fn put_bool(&mut self, b: bool) {
        self.put_u8(u8::from(b));
    }
}

// --- identifiers -----------------------------------------------------------

impl Encode for ServiceId {
    fn encode(&self, buf: &mut BytesMut) {
        // 48-bit id encoded in 6 bytes, little-endian.
        let raw = self.raw();
        buf.put_slice(&raw.to_le_bytes()[..6]);
    }
}

impl Decode for ServiceId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.take(6)?;
        let mut raw = [0u8; 8];
        raw[..6].copy_from_slice(b);
        Ok(ServiceId::from_raw(u64::from_le_bytes(raw)))
    }
}

impl Encode for CellId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.raw());
    }
}

impl Decode for CellId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CellId::from_raw(r.u64()?))
    }
}

impl Encode for SubscriptionId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.0);
    }
}

impl Decode for SubscriptionId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SubscriptionId(r.u64()?))
    }
}

impl Encode for EventId {
    fn encode(&self, buf: &mut BytesMut) {
        self.publisher.encode(buf);
        buf.put_u64_le(self.seq);
    }
}

impl Decode for EventId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EventId {
            publisher: ServiceId::decode(r)?,
            seq: r.u64()?,
        })
    }
}

// --- values ----------------------------------------------------------------

const VAL_BOOL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_BYTES: u8 = 4;

impl Encode for AttributeValue {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            AttributeValue::Bool(b) => {
                buf.put_u8(VAL_BOOL);
                buf.put_bool(*b);
            }
            AttributeValue::Int(i) => {
                buf.put_u8(VAL_INT);
                buf.put_u64_le(*i as u64);
            }
            AttributeValue::Double(d) => {
                buf.put_u8(VAL_DOUBLE);
                buf.put_u64_le(d.to_bits());
            }
            AttributeValue::Str(s) => {
                buf.put_u8(VAL_STR);
                buf.put_str(s);
            }
            AttributeValue::Bytes(b) => {
                buf.put_u8(VAL_BYTES);
                buf.put_bytes_field(b);
            }
        }
    }
}

impl Decode for AttributeValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            VAL_BOOL => Ok(AttributeValue::Bool(r.bool()?)),
            VAL_INT => Ok(AttributeValue::Int(r.i64()?)),
            VAL_DOUBLE => Ok(AttributeValue::Double(r.f64()?)),
            VAL_STR => Ok(AttributeValue::Str(r.str()?)),
            VAL_BYTES => Ok(AttributeValue::Bytes(r.bytes()?)),
            t => Err(CodecError::BadTag {
                what: "attribute value",
                tag: t,
            }),
        }
    }
}

impl Encode for AttributeSet {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.len() as u16);
        for (name, value) in self.iter() {
            buf.put_str(name);
            value.encode(buf);
        }
    }
}

impl Decode for AttributeSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.collection_len()?;
        let mut set = AttributeSet::new();
        for _ in 0..len {
            let name = r.str()?;
            let value = AttributeValue::decode(r)?;
            set.insert(name, value);
        }
        Ok(set)
    }
}

// --- events ----------------------------------------------------------------

impl Encode for Event {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_str(self.event_type());
        self.publisher().encode(buf);
        buf.put_u64_le(self.seq());
        buf.put_u64_le(self.timestamp_micros());
        self.attributes().encode(buf);
        buf.put_bytes_field(self.payload());
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let event_type = r.str()?;
        let publisher = ServiceId::decode(r)?;
        let seq = r.u64()?;
        let timestamp = r.u64()?;
        let attributes = AttributeSet::decode(r)?;
        let payload = r.bytes()?;
        let mut builder = Event::builder(event_type)
            .publisher(publisher)
            .seq(seq)
            .timestamp_micros(timestamp)
            .payload(payload);
        for (name, value) in attributes.iter() {
            builder = builder.attr(name, value.clone());
        }
        Ok(builder.build())
    }
}

// --- filters ----------------------------------------------------------------

impl Encode for Constraint {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_str(&self.name);
        buf.put_u8(self.op.tag());
        self.value.encode(buf);
    }
}

impl Decode for Constraint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = r.str()?;
        let tag = r.u8()?;
        let op = Op::from_tag(tag).ok_or(CodecError::BadTag {
            what: "operator",
            tag,
        })?;
        let value = AttributeValue::decode(r)?;
        Ok(Constraint { name, op, value })
    }
}

impl Encode for Filter {
    fn encode(&self, buf: &mut BytesMut) {
        match self.event_type() {
            Some(t) => {
                buf.put_bool(true);
                buf.put_str(t);
            }
            None => buf.put_bool(false),
        }
        buf.put_u16_le(self.constraints().len() as u16);
        for c in self.constraints() {
            c.encode(buf);
        }
    }
}

impl Decode for Filter {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut filter = if r.bool()? {
            Filter::for_type(r.str()?)
        } else {
            Filter::any()
        };
        let len = r.collection_len()?;
        for _ in 0..len {
            filter.push(Constraint::decode(r)?);
        }
        Ok(filter)
    }
}

impl Encode for Subscription {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.subscriber.encode(buf);
        self.filter.encode(buf);
    }
}

impl Decode for Subscription {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Subscription {
            id: SubscriptionId::decode(r)?,
            subscriber: ServiceId::decode(r)?,
            filter: Filter::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn service_id_six_bytes() {
        let id = ServiceId::from_raw(0x1234_5678_9ABC);
        assert_eq!(to_bytes(&id).len(), 6);
        round_trip(&id);
    }

    #[test]
    fn ids_round_trip() {
        round_trip(&CellId(42));
        round_trip(&SubscriptionId(7));
        round_trip(&EventId::new(ServiceId::from_raw(9), 123));
    }

    #[test]
    fn values_round_trip() {
        round_trip(&AttributeValue::Bool(true));
        round_trip(&AttributeValue::Int(-42));
        round_trip(&AttributeValue::Double(3.5));
        round_trip(&AttributeValue::Str("héllo".into()));
        round_trip(&AttributeValue::Bytes(vec![0, 1, 255]));
    }

    #[test]
    fn event_round_trip() {
        let e = Event::builder("smc.sensor.reading")
            .attr("bpm", 72i64)
            .attr("sensor", "hr")
            .attr("ok", true)
            .attr("t", 36.6f64)
            .publisher(ServiceId::from_raw(0xAB))
            .seq(17)
            .timestamp_micros(1_000_000)
            .payload(vec![9u8; 100])
            .build();
        round_trip(&e);
    }

    #[test]
    fn filter_round_trip() {
        let f =
            Filter::for_type("r")
                .with(("bpm", Op::Gt, 100i64))
                .with(("sensor", Op::Prefix, "hr"));
        round_trip(&f);
        round_trip(&Filter::any());
    }

    #[test]
    fn subscription_round_trip() {
        round_trip(&Subscription::new(
            SubscriptionId(1),
            ServiceId::from_raw(2),
            Filter::for_type("x").with(("a", Op::Exists, 0i64)),
        ));
    }

    #[test]
    fn truncated_input_errors() {
        let e = Event::new("t");
        let bytes = to_bytes(&e);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Event>(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&AttributeValue::Bool(true));
        bytes.push(0);
        assert_eq!(
            from_bytes::<AttributeValue>(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            from_bytes::<AttributeValue>(&[99]),
            Err(CodecError::BadTag {
                what: "attribute value",
                tag: 99
            })
        ));
        // bool with tag 2
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.bool(),
            Err(CodecError::BadTag {
                what: "bool",
                tag: 2
            })
        ));
    }

    #[test]
    fn bad_utf8_rejected() {
        // VAL_STR, len 1, invalid byte.
        let bytes = [VAL_STR, 1, 0, 0xFF];
        assert_eq!(
            from_bytes::<AttributeValue>(&bytes),
            Err(CodecError::BadUtf8)
        );
    }

    #[test]
    fn oversize_byte_len_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(VAL_BYTES);
        buf.put_u32_le(u32::MAX);
        let err = from_bytes::<AttributeValue>(&buf);
        assert!(matches!(err, Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn oversize_collection_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(u16::MAX); // attribute count
        let err = AttributeSet::decode(&mut Reader::new(&buf));
        assert!(matches!(err, Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn nan_payload_round_trips_bitwise() {
        let v = AttributeValue::Double(f64::NAN);
        let bytes = to_bytes(&v);
        let back: AttributeValue = from_bytes(&bytes).unwrap();
        match back {
            AttributeValue::Double(d) => assert!(d.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn reader_primitives() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u16_le(2);
        buf.put_u32_le(3);
        buf.put_u64_le(4);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 4);
        assert!(r.is_empty());
        assert!(r.u8().is_err());
    }
}
