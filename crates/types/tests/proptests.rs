//! Property-based tests for the wire codec and the filter algebra.

use proptest::prelude::*;
use smc_types::codec::{from_bytes, to_bytes};
use smc_types::{
    AttributeValue, CellId, Constraint, Event, Filter, Op, Packet, ServiceId, ServiceInfo,
    SubscriptionId,
};

fn arb_value() -> impl Strategy<Value = AttributeValue> {
    prop_oneof![
        any::<bool>().prop_map(AttributeValue::Bool),
        any::<i64>().prop_map(AttributeValue::Int),
        // Finite doubles only: NaN breaks PartialEq-based round-trip checks
        // (bitwise round-tripping of NaN is covered by a unit test).
        (-1.0e12f64..1.0e12).prop_map(AttributeValue::Double),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(AttributeValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(AttributeValue::Bytes),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.]{0,12}"
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_value()), 0..6),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(ty, attrs, raw_pub, seq, payload)| {
            let mut b = Event::builder(ty)
                .publisher(ServiceId::from_raw(raw_pub))
                .seq(seq)
                .payload(payload);
            for (n, v) in attrs {
                b = b.attr(n, v);
            }
            b.build()
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Prefix),
        Just(Op::Suffix),
        Just(Op::Contains),
        Just(Op::Exists),
    ]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    (
        proptest::option::of(arb_name()),
        proptest::collection::vec((arb_name(), arb_op(), arb_value()), 0..5),
    )
        .prop_map(|(ty, cs)| {
            let mut f = match ty {
                Some(t) => Filter::for_type(t),
                None => Filter::any(),
            };
            for (n, op, v) in cs {
                f.push(Constraint::new(n, op, v));
            }
            f
        })
}

/// Filters over a tiny attribute alphabet so that covering pairs and
/// matching events actually occur.
fn arb_small_filter() -> impl Strategy<Value = Filter> {
    let name = prop_oneof![Just("a".to_string()), Just("b".to_string())];
    let op = prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Exists)
    ];
    let value = (-4i64..4).prop_map(AttributeValue::Int);
    (
        proptest::option::of(prop_oneof![Just("t".to_string()), Just("u".to_string())]),
        proptest::collection::vec((name, op, value), 0..4),
    )
        .prop_map(|(ty, cs)| {
            let mut f = match ty {
                Some(t) => Filter::for_type(t),
                None => Filter::any(),
            };
            for (n, op, v) in cs {
                f.push(Constraint::new(n, op, v));
            }
            f
        })
}

fn arb_small_event() -> impl Strategy<Value = Event> {
    (
        prop_oneof![Just("t"), Just("u")],
        proptest::option::of(-4i64..4),
        proptest::option::of(-4i64..4),
    )
        .prop_map(|(ty, a, b)| {
            let mut e = Event::builder(ty);
            if let Some(a) = a {
                e = e.attr("a", a);
            }
            if let Some(b) = b {
                e = e.attr("b", b);
            }
            e.build()
        })
}

proptest! {
    #[test]
    fn value_codec_round_trip(v in arb_value()) {
        let bytes = to_bytes(&v);
        let back: AttributeValue = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn event_codec_round_trip(e in arb_event()) {
        let bytes = to_bytes(&e);
        let back: Event = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn filter_codec_round_trip(f in arb_filter()) {
        let bytes = to_bytes(&f);
        let back: Filter = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn packet_codec_round_trip(e in arb_event(), f in arb_filter(), raw in any::<u64>()) {
        let packets = vec![
            Packet::publish(e.clone()),
            Packet::deliver(e.clone()),
            Packet::Publish {
                event: e.clone(),
                trace: smc_types::TraceId::from_raw(raw | 1),
            },
            Packet::DeliverAck(e.id()),
            Packet::Subscribe { request_id: raw, filter: f },
            Packet::SubscribeAck { request_id: raw, subscription: SubscriptionId(raw) },
            Packet::Beacon { cell: CellId(raw), discovery: ServiceId::from_raw(raw), seq: 1 },
            Packet::JoinRequest {
                info: ServiceInfo::new(ServiceId::from_raw(raw), "sensor.x").with_role("r"),
                auth_token: e.payload().to_vec(),
            },
        ];
        for p in packets {
            let bytes = to_bytes(&p);
            let back: Packet = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, p);
        }
    }

    #[test]
    fn decoding_random_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must not panic; error is fine.
        let _ = from_bytes::<Packet>(&bytes);
        let _ = from_bytes::<Event>(&bytes);
        let _ = from_bytes::<Filter>(&bytes);
    }

    /// Soundness of the covering relation: if `wide` covers `narrow`, then
    /// every event matched by `narrow` is matched by `wide`.
    #[test]
    fn covering_is_sound(wide in arb_small_filter(), narrow in arb_small_filter(), e in arb_small_event()) {
        if wide.covers(&narrow) && narrow.matches(&e) {
            prop_assert!(wide.matches(&e), "wide={wide} narrow={narrow} event={e}");
        }
    }

    /// Covering is reflexive.
    #[test]
    fn covering_is_reflexive(f in arb_small_filter()) {
        prop_assert!(f.covers(&f), "filter should cover itself: {f}");
    }

    /// Constraint implication is sound: if `a implies b`, every value that
    /// satisfies `a` satisfies `b`.
    #[test]
    fn implication_is_sound(
        op_a in prop_oneof![Just(Op::Eq), Just(Op::Ne), Just(Op::Lt), Just(Op::Le), Just(Op::Gt), Just(Op::Ge), Just(Op::Exists)],
        op_b in prop_oneof![Just(Op::Eq), Just(Op::Ne), Just(Op::Lt), Just(Op::Le), Just(Op::Gt), Just(Op::Ge), Just(Op::Exists)],
        va in -5i64..5,
        vb in -5i64..5,
        x in -8i64..8,
    ) {
        let a = Constraint::new("k", op_a, va);
        let b = Constraint::new("k", op_b, vb);
        if a.implies(&b) {
            let val = AttributeValue::Int(x);
            if a.matches_value(&val) {
                prop_assert!(b.matches_value(&val), "a={a} b={b} x={x}");
            }
        }
    }
}
