//! Multi-threaded stress for [`SnapshotCell`], the lock-free primitive
//! under the bus's route table: concurrent readers race a writer's swap
//! loop and must never observe a torn, stale-after-read, or freed
//! snapshot. The unit tests cover the protocol's happy path; these runs
//! put genuine parallelism behind the module's memory-ordering argument.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use smc_types::SnapshotCell;

/// A snapshot payload that knows whether it has been freed. Readers
/// check the canary *after* cloning out of the cell: if the RCU drain
/// ever released a snapshot while a reader was still taking its
/// reference, the reader's copy would see `freed == true`.
struct Canary {
    generation: u64,
    cells: Vec<u64>,
    freed: Arc<AtomicBool>,
}

impl Canary {
    fn new(generation: u64, width: usize) -> Canary {
        Canary {
            generation,
            cells: vec![generation; width],
            freed: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl Drop for Canary {
    fn drop(&mut self) {
        self.freed.store(true, SeqCst);
    }
}

#[test]
fn readers_never_observe_torn_or_freed_snapshots() {
    const READERS: usize = 4;
    const LOADS: u64 = 30_000;

    let cell = Arc::new(SnapshotCell::new(Arc::new(Canary::new(0, 32))));
    let reading = Arc::new(AtomicU64::new(READERS as u64));
    let mut handles = Vec::new();
    for _ in 0..READERS {
        let cell = Arc::clone(&cell);
        let reading = Arc::clone(&reading);
        handles.push(std::thread::spawn(move || {
            let mut last_seen = 0u64;
            for _ in 0..LOADS {
                let snap = cell.load();
                // Holding a strong reference: the writer's drain must
                // not have freed this value, now or while we hold it.
                let freed = Arc::clone(&snap.freed);
                assert!(!freed.load(SeqCst), "reader holds a freed snapshot");
                // Internally consistent: every element carries the
                // snapshot's own generation (no torn write)...
                assert!(
                    snap.cells.iter().all(|&v| v == snap.generation),
                    "torn snapshot at generation {}",
                    snap.generation
                );
                // ...and generations never run backwards across loads.
                assert!(
                    snap.generation >= last_seen,
                    "snapshot went backwards: {} after {last_seen}",
                    snap.generation
                );
                last_seen = snap.generation;
                drop(snap);
                // After *our* reference is gone the writer may free it;
                // before that, never. (The canary outlives the payload.)
                let _ = freed.load(SeqCst);
            }
            reading.fetch_sub(1, SeqCst);
        }));
    }

    // The writer swaps flat out until every reader has finished, so
    // loads genuinely race swaps and drains for the whole test.
    let mut generation = 0u64;
    while reading.load(SeqCst) != 0 {
        generation += 1;
        cell.store(Arc::new(Canary::new(generation, 32)));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.load().generation, generation);
}

#[test]
fn held_snapshots_outlive_any_number_of_swaps() {
    // A reader that parks on an old snapshot keeps it alive and intact
    // while the writer churns thousands of generations past it.
    let cell = Arc::new(SnapshotCell::new(Arc::new(Canary::new(0, 8))));
    let held = cell.load();
    let writer = {
        let cell = Arc::clone(&cell);
        std::thread::spawn(move || {
            for generation in 1..=5_000u64 {
                cell.store(Arc::new(Canary::new(generation, 8)));
            }
        })
    };
    writer.join().unwrap();
    assert!(!held.freed.load(SeqCst), "held snapshot was freed");
    assert_eq!(held.generation, 0);
    assert!(held.cells.iter().all(|&v| v == 0));
    assert_eq!(cell.load().generation, 5_000);
}

#[test]
fn concurrent_rcu_writers_lose_no_updates() {
    // `rcu` serialises writers; N threads each applying M increments
    // must land exactly N·M on the final snapshot, with readers racing
    // the whole time.
    const WRITERS: usize = 4;
    const INCREMENTS: u64 = 2_000;

    let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let cell = Arc::clone(&cell);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !done.load(SeqCst) {
                let v = *cell.load();
                assert!(v >= last, "count went backwards: {v} after {last}");
                last = v;
            }
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    cell.rcu(|v| v + 1);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, SeqCst);
    reader.join().unwrap();
    assert_eq!(*cell.load(), WRITERS as u64 * INCREMENTS);
}
