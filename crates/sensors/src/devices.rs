//! Byte-level device protocols and their cell-side proxy codecs.
//!
//! "Testing of the proxy architecture has consisted of building test
//! sensors … allowing the proxies to translate/acknowledge data as
//! required." Each sensor family here defines a tiny binary frame format
//! (what the real strap/clip/cuff firmware would emit) and a matching
//! [`DeviceCodec`] the cell installs to translate frames into typed
//! events and commands back into frames.

use smc_core::DeviceCodec;
use smc_core::ProxyFactory;
use smc_types::{wellknown, Error, Event, Filter, Result};

/// Frame tags of the supported device families.
pub mod frame_tags {
    /// Heart-rate strap uplink.
    pub const HEART_RATE: u8 = 0x10;
    /// SpO2 clip uplink.
    pub const SPO2: u8 = 0x20;
    /// Blood-pressure cuff uplink.
    pub const BLOOD_PRESSURE: u8 = 0x30;
    /// Temperature patch uplink.
    pub const TEMPERATURE: u8 = 0x40;
    /// Downlink threshold-set command.
    pub const SET_THRESHOLD: u8 = 0xC1;
}

/// Device-type strings used by the standard codecs.
pub mod device_types {
    /// Heart-rate chest strap.
    pub const HEART_RATE: &str = "sensor.heart-rate";
    /// Pulse-oximeter clip.
    pub const SPO2: &str = "sensor.spo2";
    /// Blood-pressure cuff.
    pub const BLOOD_PRESSURE: &str = "sensor.blood-pressure";
    /// Skin temperature patch.
    pub const TEMPERATURE: &str = "sensor.temperature";
    /// Insulin pump actuator.
    pub const INSULIN_PUMP: &str = "actuator.insulin-pump";
    /// Defibrillator actuator.
    pub const DEFIBRILLATOR: &str = "actuator.defibrillator";
    /// Bedside/nurse monitor station.
    pub const MONITOR: &str = "monitor.station";
}

// --- frame encoders (device firmware side) ----------------------------------

/// Encodes a heart-rate frame: `[0x10, bpm_lo, bpm_hi]`.
pub fn heart_rate_frame(bpm: f64) -> Vec<u8> {
    let v = bpm.round().clamp(0.0, u16::MAX as f64) as u16;
    let b = v.to_le_bytes();
    vec![frame_tags::HEART_RATE, b[0], b[1]]
}

/// Encodes an SpO2 frame: `[0x20, spo2_pct, pulse_lo, pulse_hi]`.
pub fn spo2_frame(spo2: f64, pulse: f64) -> Vec<u8> {
    let p = (pulse.round().clamp(0.0, u16::MAX as f64) as u16).to_le_bytes();
    vec![
        frame_tags::SPO2,
        spo2.round().clamp(0.0, 100.0) as u8,
        p[0],
        p[1],
    ]
}

/// Encodes a blood-pressure frame: `[0x30, sys_lo, sys_hi, dia_lo, dia_hi]`.
pub fn blood_pressure_frame(systolic: f64, diastolic: f64) -> Vec<u8> {
    let s = (systolic.round().clamp(0.0, u16::MAX as f64) as u16).to_le_bytes();
    let d = (diastolic.round().clamp(0.0, u16::MAX as f64) as u16).to_le_bytes();
    vec![frame_tags::BLOOD_PRESSURE, s[0], s[1], d[0], d[1]]
}

/// Encodes a temperature frame in tenths of °C: `[0x40, t_lo, t_hi]`.
pub fn temperature_frame(celsius: f64) -> Vec<u8> {
    let tenths = ((celsius * 10.0).round().clamp(0.0, u16::MAX as f64)) as u16;
    let b = tenths.to_le_bytes();
    vec![frame_tags::TEMPERATURE, b[0], b[1]]
}

/// Decodes a downlink threshold command frame produced by the codecs:
/// `[0xC1, which, value_lo, value_hi]` → `(which, value)`.
pub fn decode_threshold_frame(frame: &[u8]) -> Option<(u8, u16)> {
    match frame {
        [t, which, lo, hi] if *t == frame_tags::SET_THRESHOLD => {
            Some((*which, u16::from_le_bytes([*lo, *hi])))
        }
        _ => None,
    }
}

// --- proxy codecs (cell side) ------------------------------------------------

fn reading(sensor: &str) -> smc_types::EventBuilder {
    Event::builder(wellknown::SENSOR_READING).attr("sensor", sensor)
}

fn threshold_downlink(event: &Event) -> Result<Option<Vec<u8>>> {
    if event.event_type() != wellknown::COMMAND {
        return Ok(None);
    }
    let which = event.attr("which").and_then(|v| v.as_int()).unwrap_or(0) as u8;
    let value = event.attr("value").and_then(|v| v.as_int()).unwrap_or(0) as u16;
    let b = value.to_le_bytes();
    Ok(Some(vec![frame_tags::SET_THRESHOLD, which, b[0], b[1]]))
}

macro_rules! sensor_codec {
    ($(#[$doc:meta])* $name:ident, $tag:expr, $decode:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name;

        impl DeviceCodec for $name {
            fn decode_uplink(&self, raw: &[u8]) -> Result<Vec<Event>> {
                let decode: fn(&[u8]) -> Option<Event> = $decode;
                match raw.first() {
                    Some(&t) if t == $tag => decode(raw)
                        .map(|e| vec![e])
                        .ok_or_else(|| Error::Invalid("malformed sensor frame".into())),
                    _ => Err(Error::Invalid("unexpected frame tag".into())),
                }
            }

            fn encode_downlink(&self, event: &Event) -> Result<Option<Vec<u8>>> {
                threshold_downlink(event)
            }

            fn initial_subscriptions(&self) -> Vec<Filter> {
                // Dumb sensors listen for management commands only.
                vec![Filter::for_type(wellknown::COMMAND)]
            }

            fn forwards_acks(&self) -> bool {
                // Periodic samplers do not wait for acks (§III-B).
                false
            }
        }
    };
}

sensor_codec!(
    /// Translates heart-rate strap frames.
    HeartRateCodec, frame_tags::HEART_RATE,
    |raw| match raw {
        [_, lo, hi] => Some(
            reading("heart-rate")
                .attr("bpm", u16::from_le_bytes([*lo, *hi]) as i64)
                .build(),
        ),
        _ => None,
    }
);

sensor_codec!(
    /// Translates pulse-oximeter frames.
    Spo2Codec, frame_tags::SPO2,
    |raw| match raw {
        [_, spo2, lo, hi] => Some(
            reading("spo2")
                .attr("spo2", *spo2 as i64)
                .attr("pulse", u16::from_le_bytes([*lo, *hi]) as i64)
                .build(),
        ),
        _ => None,
    }
);

sensor_codec!(
    /// Translates blood-pressure cuff frames.
    BloodPressureCodec, frame_tags::BLOOD_PRESSURE,
    |raw| match raw {
        [_, sl, sh, dl, dh] => Some(
            reading("blood-pressure")
                .attr("systolic", u16::from_le_bytes([*sl, *sh]) as i64)
                .attr("diastolic", u16::from_le_bytes([*dl, *dh]) as i64)
                .build(),
        ),
        _ => None,
    }
);

sensor_codec!(
    /// Translates temperature patch frames (tenths of °C).
    TemperatureCodec, frame_tags::TEMPERATURE,
    |raw| match raw {
        [_, lo, hi] => Some(
            reading("temperature")
                .attr("celsius", u16::from_le_bytes([*lo, *hi]) as f64 / 10.0)
                .build(),
        ),
        _ => None,
    }
);

/// Registers all standard e-health codecs with a cell's proxy factory.
///
/// Devices of unknown types still work — they get passthrough proxies —
/// but the four dumb sensor families gain translating proxies, which is
/// exactly the paper's "complex proxies for simple sensors".
pub fn register_standard_codecs(factory: &ProxyFactory) {
    factory.register(device_types::HEART_RATE, |_| Box::new(HeartRateCodec));
    factory.register(device_types::SPO2, |_| Box::new(Spo2Codec));
    factory.register(device_types::BLOOD_PRESSURE, |_| {
        Box::new(BloodPressureCodec)
    });
    factory.register(device_types::TEMPERATURE, |_| Box::new(TemperatureCodec));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heart_rate_frame_round_trip() {
        let frame = heart_rate_frame(131.4);
        let events = HeartRateCodec.decode_uplink(&frame).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.event_type(), wellknown::SENSOR_READING);
        assert_eq!(e.attr("sensor").unwrap().as_str(), Some("heart-rate"));
        assert_eq!(e.attr("bpm").unwrap().as_int(), Some(131));
    }

    #[test]
    fn spo2_frame_round_trip() {
        let frame = spo2_frame(88.6, 112.0);
        let e = &Spo2Codec.decode_uplink(&frame).unwrap()[0];
        assert_eq!(e.attr("spo2").unwrap().as_int(), Some(89));
        assert_eq!(e.attr("pulse").unwrap().as_int(), Some(112));
    }

    #[test]
    fn blood_pressure_frame_round_trip() {
        let frame = blood_pressure_frame(121.0, 79.0);
        let e = &BloodPressureCodec.decode_uplink(&frame).unwrap()[0];
        assert_eq!(e.attr("systolic").unwrap().as_int(), Some(121));
        assert_eq!(e.attr("diastolic").unwrap().as_int(), Some(79));
    }

    #[test]
    fn temperature_frame_round_trip() {
        let frame = temperature_frame(37.27);
        let e = &TemperatureCodec.decode_uplink(&frame).unwrap()[0];
        assert_eq!(e.attr("celsius").unwrap().as_double(), Some(37.3));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(HeartRateCodec
            .decode_uplink(&[frame_tags::HEART_RATE])
            .is_err());
        assert!(HeartRateCodec.decode_uplink(&[0x99, 1, 2]).is_err());
        assert!(Spo2Codec.decode_uplink(&[frame_tags::SPO2, 1]).is_err());
        assert!(TemperatureCodec.decode_uplink(&[]).is_err());
    }

    #[test]
    fn threshold_command_downlink() {
        let cmd = Event::builder(wellknown::COMMAND)
            .attr("which", 1i64)
            .attr("value", 120i64)
            .build();
        let frame = HeartRateCodec.encode_downlink(&cmd).unwrap().unwrap();
        assert_eq!(decode_threshold_frame(&frame), Some((1, 120)));
        // Non-command events are not translated to raw frames.
        assert_eq!(
            HeartRateCodec
                .encode_downlink(&Event::new("smc.alarm"))
                .unwrap(),
            None
        );
        assert_eq!(decode_threshold_frame(&[1, 2]), None);
    }

    #[test]
    fn codecs_subscribe_to_commands_and_skip_acks() {
        let c = Spo2Codec;
        let subs = c.initial_subscriptions();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].event_type(), Some(wellknown::COMMAND));
        assert!(!c.forwards_acks());
    }

    #[test]
    fn factory_registration_covers_sensor_families() {
        let factory = ProxyFactory::new();
        register_standard_codecs(&factory);
        assert_eq!(factory.len(), 4);
        let info =
            smc_types::ServiceInfo::new(smc_types::ServiceId::from_raw(1), device_types::SPO2);
        let codec = factory.codec_for(&info);
        let frame = spo2_frame(97.0, 70.0);
        assert_eq!(codec.decode_uplink(&frame).unwrap().len(), 1);
    }

    #[test]
    fn frame_values_clamp() {
        assert_eq!(heart_rate_frame(-5.0), vec![frame_tags::HEART_RATE, 0, 0]);
        assert_eq!(spo2_frame(150.0, 0.0)[1], 100);
    }
}
