//! Bulk ECG streaming, deliberately **not** via the event bus.
//!
//! The paper: "we do not consider that all communication within an SMC is
//! routed via the event bus. We assume there may be … monitored data,
//! such as from a heart ECG monitor that could be sent to a remote
//! station for viewing and analysis." This module streams raw waveform
//! blocks over the bare transport (unreliable, loss-tolerated), with
//! sequence numbers so the viewer can account for gaps.

use std::sync::Arc;
use std::time::Duration;

use smc_transport::{Incoming, ReliableChannel};
use smc_types::{Error, Result, ServiceId};

use crate::traces::EcgTrace;

/// Magic byte prefixing ECG stream datagrams.
const ECG_MAGIC: u8 = 0xEC;

/// One block of ECG samples as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgBlock {
    /// Block sequence number (gaps = lost blocks).
    pub seq: u64,
    /// Samples in millivolts, quantised to `i16` hundredths on the wire.
    pub samples: Vec<f64>,
}

/// Encodes a block: `[0xEC, seq u64, count u16, samples i16...]`.
pub fn encode_block(block: &EcgBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(11 + block.samples.len() * 2);
    out.push(ECG_MAGIC);
    out.extend_from_slice(&block.seq.to_le_bytes());
    out.extend_from_slice(&(block.samples.len() as u16).to_le_bytes());
    for &s in &block.samples {
        let q = (s * 100.0).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        out.extend_from_slice(&q.to_le_bytes());
    }
    out
}

/// Decodes a block; `None` for non-ECG or corrupt datagrams.
pub fn decode_block(bytes: &[u8]) -> Option<EcgBlock> {
    if bytes.len() < 11 || bytes[0] != ECG_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
    let count = u16::from_le_bytes([bytes[9], bytes[10]]) as usize;
    let body = &bytes[11..];
    if body.len() != count * 2 {
        return None;
    }
    let samples = body
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]) as f64 / 100.0)
        .collect();
    Some(EcgBlock { seq, samples })
}

/// Streams a synthetic ECG to a viewing station.
#[derive(Debug)]
pub struct EcgStreamer {
    channel: Arc<ReliableChannel>,
    viewer: ServiceId,
    trace: EcgTrace,
    block_len: usize,
    next_seq: u64,
}

impl EcgStreamer {
    /// Creates a streamer sending `block_len`-sample blocks to `viewer`.
    pub fn new(
        channel: Arc<ReliableChannel>,
        viewer: ServiceId,
        trace: EcgTrace,
        block_len: usize,
    ) -> Self {
        assert!(block_len > 0 && block_len <= u16::MAX as usize);
        EcgStreamer {
            channel,
            viewer,
            trace,
            block_len,
            next_seq: 0,
        }
    }

    /// Generates and transmits one block (fire-and-forget, as real
    /// monitoring streams tolerate loss).
    ///
    /// # Errors
    ///
    /// Propagates transport-level failures (a lost datagram is not one).
    pub fn send_block(&mut self) -> Result<EcgBlock> {
        let block = EcgBlock {
            seq: self.next_seq,
            samples: self.trace.next_samples(self.block_len),
        };
        self.next_seq += 1;
        self.channel
            .send_unreliable(self.viewer, &encode_block(&block))?;
        Ok(block)
    }

    /// Blocks transmitted so far.
    pub fn blocks_sent(&self) -> u64 {
        self.next_seq
    }
}

/// Receives an ECG stream and tracks loss.
#[derive(Debug)]
pub struct EcgViewer {
    channel: Arc<ReliableChannel>,
    highest_seq: Option<u64>,
    received: u64,
}

impl EcgViewer {
    /// Wraps a channel as the viewing station.
    pub fn new(channel: Arc<ReliableChannel>) -> Self {
        EcgViewer {
            channel,
            highest_seq: None,
            received: 0,
        }
    }

    /// Receives the next block, skipping unrelated traffic.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] / [`Error::Closed`].
    pub fn next_block(&mut self, timeout: Duration) -> Result<EcgBlock> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(Error::Timeout)?;
            match self.channel.recv(Some(remaining))? {
                Incoming::Unreliable { payload, .. } => {
                    if let Some(block) = decode_block(&payload) {
                        self.received += 1;
                        self.highest_seq =
                            Some(self.highest_seq.map_or(block.seq, |h| h.max(block.seq)));
                        return Ok(block);
                    }
                }
                Incoming::Reliable { .. } => {}
            }
        }
    }

    /// Blocks received so far.
    pub fn blocks_received(&self) -> u64 {
        self.received
    }

    /// Blocks known lost (sequence gaps up to the highest seen).
    pub fn blocks_lost(&self) -> u64 {
        match self.highest_seq {
            Some(h) => (h + 1).saturating_sub(self.received),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_transport::{LinkConfig, ReliableConfig, SimNetwork};

    #[test]
    fn block_codec_round_trip() {
        let block = EcgBlock {
            seq: 42,
            samples: vec![0.0, 1.2, -0.25, 0.31],
        };
        let bytes = encode_block(&block);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.samples.len(), 4);
        for (a, b) in back.samples.iter().zip(&block.samples) {
            assert!((a - b).abs() < 0.006, "{a} vs {b}");
        }
    }

    #[test]
    fn corrupt_blocks_rejected() {
        assert!(decode_block(&[]).is_none());
        assert!(decode_block(&[0x00; 16]).is_none());
        let mut ok = encode_block(&EcgBlock {
            seq: 1,
            samples: vec![0.5; 8],
        });
        ok.truncate(ok.len() - 1);
        assert!(decode_block(&ok).is_none());
    }

    #[test]
    fn stream_end_to_end_with_loss_accounting() {
        let net = SimNetwork::with_seed(LinkConfig::ideal().with_loss(0.3), 31);
        let tx = ReliableChannel::new(Arc::new(net.endpoint()), ReliableConfig::default());
        let rx = ReliableChannel::new(Arc::new(net.endpoint()), ReliableConfig::default());
        let viewer_id = rx.local_id();
        let mut streamer = EcgStreamer::new(tx, viewer_id, EcgTrace::new(1, 250.0), 125);
        let mut viewer = EcgViewer::new(rx);
        for _ in 0..50 {
            streamer.send_block().unwrap();
        }
        let mut got = 0;
        while viewer.next_block(Duration::from_millis(100)).is_ok() {
            got += 1;
        }
        assert!(got > 10, "some blocks arrive: {got}");
        assert!(got < 50, "loss visible with 30% drop: {got}");
        assert_eq!(viewer.blocks_received(), got);
        assert_eq!(viewer.blocks_received() + viewer.blocks_lost(), 50);
    }

    #[test]
    fn blocks_carry_recognisable_waveform() {
        let net = SimNetwork::new(LinkConfig::ideal());
        let tx = ReliableChannel::new(Arc::new(net.endpoint()), ReliableConfig::default());
        let rx = ReliableChannel::new(Arc::new(net.endpoint()), ReliableConfig::default());
        let viewer_id = rx.local_id();
        let mut streamer = EcgStreamer::new(tx, viewer_id, EcgTrace::new(1, 250.0), 500);
        let mut viewer = EcgViewer::new(rx);
        streamer.send_block().unwrap();
        let block = viewer.next_block(Duration::from_secs(2)).unwrap();
        let max = block.samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1.0, "R peak survives quantisation: {max}");
    }
}
