//! Drivers that animate simulated devices against a live cell.
//!
//! A [`SensorRunner`] owns a dumb device: it joins the cell, samples its
//! [`VitalTrace`] on a schedule, and transmits raw frames for the proxy
//! to translate. An [`ActuatorRunner`] owns a smart actuator: it joins,
//! receives management commands, and applies them to an internal state
//! that tests can inspect. [`Patient`] bundles a full body-area network.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use smc_core::{RawDevice, RemoteClient};
use smc_discovery::AgentConfig;
use smc_transport::{ReliableChannel, ReliableConfig, SimNetwork};
use smc_types::{Error, Result, ServiceId, ServiceInfo};

use crate::devices::{
    blood_pressure_frame, device_types, heart_rate_frame, spo2_frame, temperature_frame,
};
use crate::traces::{
    DiastolicTrace, HeartRateTrace, Scenario, Spo2Trace, SystolicTrace, TemperatureTrace,
    VitalTrace,
};

fn fast_reliable() -> ReliableConfig {
    ReliableConfig {
        initial_rto: Duration::from_millis(30),
        poll_interval: Duration::from_millis(10),
        ..ReliableConfig::default()
    }
}

/// Which frame encoder a sensor runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// Heart-rate strap (1 channel).
    HeartRate,
    /// Pulse oximeter (uses the vital trace plus a nominal pulse).
    Spo2,
    /// Blood-pressure cuff (paired systolic/diastolic traces).
    BloodPressure,
    /// Temperature patch.
    Temperature,
}

impl SensorKind {
    /// The matching device-type string.
    pub fn device_type(self) -> &'static str {
        match self {
            SensorKind::HeartRate => device_types::HEART_RATE,
            SensorKind::Spo2 => device_types::SPO2,
            SensorKind::BloodPressure => device_types::BLOOD_PRESSURE,
            SensorKind::Temperature => device_types::TEMPERATURE,
        }
    }
}

/// A running simulated sensor.
#[derive(Debug)]
pub struct SensorRunner {
    kind: SensorKind,
    device_id: ServiceId,
    frames_sent: Arc<AtomicU64>,
    running: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SensorRunner {
    /// Joins the cell through `net` and starts sampling every `interval`
    /// with the given scenario applied.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] if the device cannot join a cell.
    pub fn start(
        net: &SimNetwork,
        kind: SensorKind,
        scenario: &Scenario,
        seed: u64,
        interval: Duration,
    ) -> Result<Arc<Self>> {
        let channel = ReliableChannel::new(Arc::new(net.endpoint()), fast_reliable());
        let info = ServiceInfo::new(ServiceId::NIL, kind.device_type())
            .with_name(format!("{} #{seed}", kind.device_type()))
            .with_role("sensor");
        let device = RawDevice::connect(
            info,
            channel,
            AgentConfig::default(),
            Duration::from_secs(10),
        )?;
        let device_id = device.local_id();

        let mut traces: Vec<Box<dyn VitalTrace>> = match kind {
            SensorKind::HeartRate => vec![Box::new(apply(HeartRateTrace::new(seed), scenario))],
            SensorKind::Spo2 => vec![
                Box::new(apply(Spo2Trace::new(seed), scenario)),
                Box::new(apply(HeartRateTrace::new(seed ^ 0x5050), scenario)),
            ],
            SensorKind::BloodPressure => vec![
                Box::new(apply(SystolicTrace::new(seed), scenario)),
                Box::new(apply(DiastolicTrace::new(seed ^ 0xD1A), scenario)),
            ],
            SensorKind::Temperature => vec![Box::new(apply(TemperatureTrace::new(seed), scenario))],
        };

        let frames_sent = Arc::new(AtomicU64::new(0));
        let running = Arc::new(AtomicBool::new(true));
        let runner = Arc::new(SensorRunner {
            kind,
            device_id,
            frames_sent: Arc::clone(&frames_sent),
            running: Arc::clone(&running),
            handle: Mutex::new(None),
        });

        let thread_running = running;
        let thread_frames = frames_sent;
        let handle = std::thread::Builder::new()
            .name(format!("sensor-{}", kind.device_type()))
            .spawn(move || {
                let start = Instant::now();
                while thread_running.load(Ordering::SeqCst) {
                    let t = start.elapsed();
                    let samples: Vec<f64> = traces.iter_mut().map(|tr| tr.sample(t)).collect();
                    let frame = match kind {
                        SensorKind::HeartRate => heart_rate_frame(samples[0]),
                        SensorKind::Spo2 => spo2_frame(samples[0], samples[1]),
                        SensorKind::BloodPressure => blood_pressure_frame(samples[0], samples[1]),
                        SensorKind::Temperature => temperature_frame(samples[0]),
                    };
                    if device.send_raw(&frame).is_err() {
                        return;
                    }
                    thread_frames.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(interval);
                }
                device.shutdown();
            })
            .expect("spawn sensor runner");
        *runner.handle.lock() = Some(handle);
        Ok(runner)
    }

    /// The sensor family.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// The device's service id.
    pub fn device_id(&self) -> ServiceId {
        self.device_id
    }

    /// Frames transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Stops the sensor (and leaves the cell by lease expiry).
    pub fn stop(&self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

fn apply<T>(mut trace: T, scenario: &Scenario) -> T
where
    T: VitalTrace + WithEpisode,
{
    for e in &scenario.episodes {
        trace = trace.with_episode(*e);
    }
    trace
}

/// Helper trait letting scenario episodes be threaded through any trace type.
pub trait WithEpisode: Sized {
    /// Adds an episode.
    fn with_episode(self, episode: crate::traces::Episode) -> Self;
}

macro_rules! impl_with_episode {
    ($($t:ty),*) => {
        $(impl WithEpisode for $t {
            fn with_episode(self, episode: crate::traces::Episode) -> Self {
                <$t>::with_episode(self, episode)
            }
        })*
    };
}
impl_with_episode!(
    HeartRateTrace,
    Spo2Trace,
    SystolicTrace,
    DiastolicTrace,
    TemperatureTrace
);

/// The state a simulated actuator exposes after applying commands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActuatorState {
    /// Commands applied, in order: `(name, optional numeric argument)`.
    pub applied: Vec<(String, Option<i64>)>,
}

/// A running simulated actuator (insulin pump, defibrillator…).
#[derive(Debug)]
pub struct ActuatorRunner {
    client: Arc<RemoteClient>,
    state: Arc<Mutex<ActuatorState>>,
    running: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ActuatorRunner {
    /// Joins the cell and starts applying incoming commands.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] if the device cannot join a cell.
    pub fn start(net: &SimNetwork, device_type: &str) -> Result<Arc<Self>> {
        let channel = ReliableChannel::new(Arc::new(net.endpoint()), fast_reliable());
        let info = ServiceInfo::new(ServiceId::NIL, device_type)
            .with_name(device_type.to_owned())
            .with_role("actuator");
        let client = RemoteClient::connect(
            info,
            channel,
            AgentConfig::default(),
            Duration::from_secs(10),
        )?;
        let state = Arc::new(Mutex::new(ActuatorState::default()));
        let running = Arc::new(AtomicBool::new(true));
        let runner = Arc::new(ActuatorRunner {
            client: Arc::clone(&client),
            state: Arc::clone(&state),
            running: Arc::clone(&running),
            handle: Mutex::new(None),
        });
        let thread_state = state;
        let thread_running = running;
        let handle = std::thread::Builder::new()
            .name(format!("actuator-{device_type}"))
            .spawn(move || {
                while thread_running.load(Ordering::SeqCst) {
                    match client.next_command(Duration::from_millis(50)) {
                        Ok(cmd) => {
                            let arg = cmd
                                .args
                                .iter()
                                .next()
                                .and_then(|(_, v)| v.as_numeric())
                                .map(|v| v as i64);
                            thread_state.lock().applied.push((cmd.name, arg));
                        }
                        Err(Error::Timeout) => {}
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn actuator runner");
        *runner.handle.lock() = Some(handle);
        Ok(runner)
    }

    /// The actuator's bus client (for subscribing to alarms etc.).
    pub fn client(&self) -> &Arc<RemoteClient> {
        &self.client
    }

    /// The actuator's service id.
    pub fn device_id(&self) -> ServiceId {
        self.client.local_id()
    }

    /// The commands applied so far.
    pub fn state(&self) -> ActuatorState {
        self.state.lock().clone()
    }

    /// Stops the actuator.
    pub fn stop(&self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
        self.client.shutdown();
    }
}

/// A whole patient's body-area network: the paper's Figure 1 worth of
/// devices, animated.
#[derive(Debug)]
pub struct Patient {
    /// Patient label.
    pub name: String,
    /// The running sensors.
    pub sensors: Vec<Arc<SensorRunner>>,
    /// The running actuators.
    pub actuators: Vec<Arc<ActuatorRunner>>,
}

impl Patient {
    /// Starts the standard four sensors plus an insulin pump for one
    /// patient under `scenario`.
    ///
    /// # Errors
    ///
    /// Propagates device join failures.
    pub fn admit(
        net: &SimNetwork,
        name: impl Into<String>,
        scenario: &Scenario,
        seed: u64,
        sample_interval: Duration,
    ) -> Result<Patient> {
        let sensors = vec![
            SensorRunner::start(net, SensorKind::HeartRate, scenario, seed, sample_interval)?,
            SensorRunner::start(net, SensorKind::Spo2, scenario, seed + 1, sample_interval)?,
            SensorRunner::start(
                net,
                SensorKind::BloodPressure,
                scenario,
                seed + 2,
                sample_interval * 5,
            )?,
            SensorRunner::start(
                net,
                SensorKind::Temperature,
                scenario,
                seed + 3,
                sample_interval * 10,
            )?,
        ];
        let actuators = vec![ActuatorRunner::start(net, device_types::INSULIN_PUMP)?];
        Ok(Patient {
            name: name.into(),
            sensors,
            actuators,
        })
    }

    /// Stops every device.
    pub fn discharge(&self) {
        for s in &self.sensors {
            s.stop();
        }
        for a in &self.actuators {
            a.stop();
        }
    }
}
