//! Simulated e-health devices for exercising the SMC end-to-end.
//!
//! The paper's evaluation hardware (chest straps, SpO2 clips, cuffs,
//! iPAQ PDAs) is simulated here:
//!
//! * [`traces`] — synthetic physiological signals with scripted clinical
//!   episodes (tachycardia, hypoxia, fever…);
//! * [`devices`] — the byte-level frame formats those devices emit, and
//!   the cell-side [`DeviceCodec`](smc_core::DeviceCodec)s that translate
//!   them ("complex proxies for simple sensors");
//! * [`runner`] — threads that animate sensors and actuators against a
//!   live cell, plus a whole-patient harness ([`runner::Patient`]);
//! * [`ecg`] — bulk ECG streaming that bypasses the bus, as the paper
//!   assumes for high-rate monitoring data.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod devices;
pub mod ecg;
pub mod runner;
pub mod traces;

pub use devices::{device_types, register_standard_codecs};
pub use ecg::{EcgBlock, EcgStreamer, EcgViewer};
pub use runner::{ActuatorRunner, ActuatorState, Patient, SensorKind, SensorRunner};
pub use traces::{
    EcgTrace, Episode, EpisodeKind, HeartRateTrace, Scenario, Spo2Trace, TemperatureTrace,
    VitalTrace,
};
