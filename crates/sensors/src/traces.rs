//! Synthetic physiological signal generators.
//!
//! The paper's motivation is monitoring chronically ill patients: heart
//! rate, blood pressure, blood oxygen and body temperature, with alarms
//! when thresholds are exceeded. Real patient traces are not available,
//! so this module generates plausible synthetic vitals: a slow-moving
//! baseline, respiratory/circadian modulation, measurement noise, and
//! scripted *episodes* (tachycardia, hypoxia, fever…) that exercise the
//! alarm paths end-to-end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A clinical episode injected into a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EpisodeKind {
    /// Heart rate ramps far above baseline.
    Tachycardia,
    /// Heart rate drops far below baseline.
    Bradycardia,
    /// SpO2 sags below 90%.
    Hypoxia,
    /// Body temperature rises above 38 °C.
    Fever,
    /// Systolic/diastolic pressure drops.
    Hypotension,
}

/// A scheduled episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// What happens.
    pub kind: EpisodeKind,
    /// When it starts, relative to trace time zero.
    pub start: Duration,
    /// How long it lasts.
    pub duration: Duration,
    /// Severity in `[0, 1]`.
    pub severity: f64,
}

impl Episode {
    /// Creates an episode.
    pub fn new(kind: EpisodeKind, start: Duration, duration: Duration, severity: f64) -> Self {
        assert!((0.0..=1.0).contains(&severity), "severity must be in [0,1]");
        Episode {
            kind,
            start,
            duration,
            severity,
        }
    }

    /// The episode's activation level at `t`: 0 outside, ramping in/out
    /// over 10% of the duration at each edge.
    pub fn activation(&self, t: Duration) -> f64 {
        if t < self.start {
            return 0.0;
        }
        let into = t - self.start;
        if into >= self.duration {
            return 0.0;
        }
        let ramp = self.duration.mul_f64(0.1).max(Duration::from_millis(1));
        let x = if into < ramp {
            into.as_secs_f64() / ramp.as_secs_f64()
        } else if self.duration - into < ramp {
            (self.duration - into).as_secs_f64() / ramp.as_secs_f64()
        } else {
            1.0
        };
        x * self.severity
    }
}

/// A generator of one vital-sign channel.
pub trait VitalTrace: Send {
    /// The sample at trace time `t`.
    fn sample(&mut self, t: Duration) -> f64;

    /// Short channel name (`"heart-rate"`, `"spo2"`, …).
    fn channel(&self) -> &'static str;

    /// Unit of the samples.
    fn unit(&self) -> &'static str;
}

/// Common scaffolding: baseline + sinusoidal modulation + noise +
/// episode response.
#[derive(Debug)]
struct TraceCore {
    baseline: f64,
    modulation_amp: f64,
    modulation_period: f64,
    noise: f64,
    episodes: Vec<Episode>,
    rng: StdRng,
}

impl TraceCore {
    fn new(
        baseline: f64,
        modulation_amp: f64,
        modulation_period: f64,
        noise: f64,
        seed: u64,
    ) -> Self {
        TraceCore {
            baseline,
            modulation_amp,
            modulation_period,
            noise,
            episodes: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn value(&mut self, t: Duration, episode_response: impl Fn(EpisodeKind, f64) -> f64) -> f64 {
        let ts = t.as_secs_f64();
        let mut v = self.baseline
            + self.modulation_amp * (ts * std::f64::consts::TAU / self.modulation_period).sin()
            + self.rng.gen_range(-self.noise..=self.noise);
        for e in &self.episodes {
            let a = e.activation(t);
            if a > 0.0 {
                v += episode_response(e.kind, a);
            }
        }
        v
    }
}

macro_rules! vital_trace {
    ($(#[$doc:meta])* $name:ident, $channel:literal, $unit:literal,
     baseline: $baseline:expr, amp: $amp:expr, period: $period:expr, noise: $noise:expr,
     clamp: ($lo:expr, $hi:expr), response: $response:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            core: TraceCore,
        }

        impl $name {
            /// Creates the trace with a deterministic seed.
            pub fn new(seed: u64) -> Self {
                $name { core: TraceCore::new($baseline, $amp, $period, $noise, seed) }
            }

            /// Creates the trace with a custom baseline.
            pub fn with_baseline(seed: u64, baseline: f64) -> Self {
                let mut t = Self::new(seed);
                t.core.baseline = baseline;
                t
            }

            /// Schedules an episode.
            pub fn with_episode(mut self, episode: Episode) -> Self {
                self.core.episodes.push(episode);
                self
            }
        }

        impl VitalTrace for $name {
            fn sample(&mut self, t: Duration) -> f64 {
                let response: fn(EpisodeKind, f64) -> f64 = $response;
                self.core.value(t, response).clamp($lo, $hi)
            }

            fn channel(&self) -> &'static str {
                $channel
            }

            fn unit(&self) -> &'static str {
                $unit
            }
        }
    };
}

vital_trace!(
    /// Heart rate in beats per minute: resting baseline ≈72, respiratory
    /// sinus arrhythmia, tachy/brady episodes.
    HeartRateTrace, "heart-rate", "bpm",
    baseline: 72.0, amp: 3.0, period: 5.0, noise: 1.5,
    clamp: (20.0, 240.0),
    response: |kind, a| match kind {
        EpisodeKind::Tachycardia => 90.0 * a,
        EpisodeKind::Bradycardia => -35.0 * a,
        EpisodeKind::Hypoxia => 15.0 * a, // compensatory rise
        _ => 0.0,
    }
);

vital_trace!(
    /// Oxygen saturation in percent: baseline ≈97, hypoxia dips.
    Spo2Trace, "spo2", "%",
    baseline: 97.0, amp: 0.5, period: 11.0, noise: 0.4,
    clamp: (50.0, 100.0),
    response: |kind, a| match kind {
        EpisodeKind::Hypoxia => -12.0 * a,
        _ => 0.0,
    }
);

vital_trace!(
    /// Systolic blood pressure in mmHg.
    SystolicTrace, "systolic", "mmHg",
    baseline: 120.0, amp: 4.0, period: 30.0, noise: 2.0,
    clamp: (40.0, 260.0),
    response: |kind, a| match kind {
        EpisodeKind::Hypotension => -35.0 * a,
        EpisodeKind::Tachycardia => 10.0 * a,
        _ => 0.0,
    }
);

vital_trace!(
    /// Diastolic blood pressure in mmHg.
    DiastolicTrace, "diastolic", "mmHg",
    baseline: 80.0, amp: 3.0, period: 30.0, noise: 1.5,
    clamp: (20.0, 160.0),
    response: |kind, a| match kind {
        EpisodeKind::Hypotension => -20.0 * a,
        _ => 0.0,
    }
);

vital_trace!(
    /// Core body temperature in °C: slow circadian wave, fever episodes.
    TemperatureTrace, "temperature", "celsius",
    baseline: 36.8, amp: 0.3, period: 3600.0, noise: 0.05,
    clamp: (30.0, 43.0),
    response: |kind, a| match kind {
        EpisodeKind::Fever => 2.5 * a,
        _ => 0.0,
    }
);

/// A synthetic single-lead ECG waveform sampled at a fixed rate.
///
/// The paper notes bulk monitoring data like an ECG stream bypasses the
/// event bus (it goes straight to a viewing station); this generator
/// feeds that path. The waveform is a crude but recognisable P-QRS-T
/// composite whose rate follows a [`HeartRateTrace`].
#[derive(Debug)]
pub struct EcgTrace {
    hr: HeartRateTrace,
    sample_rate_hz: f64,
    phase: f64,
    samples_taken: u64,
}

impl EcgTrace {
    /// Creates an ECG generator at `sample_rate_hz` (typically 250).
    pub fn new(seed: u64, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0);
        EcgTrace {
            hr: HeartRateTrace::new(seed),
            sample_rate_hz,
            phase: 0.0,
            samples_taken: 0,
        }
    }

    /// Sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Schedules an episode on the underlying rate trace.
    pub fn with_episode(mut self, episode: Episode) -> Self {
        self.hr = self.hr.with_episode(episode);
        self
    }

    /// Produces the next `n` samples in millivolts.
    pub fn next_samples(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = Duration::from_secs_f64(self.samples_taken as f64 / self.sample_rate_hz);
            let bpm = self.hr.sample(t);
            let beat_hz = bpm / 60.0;
            self.phase = (self.phase + beat_hz / self.sample_rate_hz).fract();
            out.push(ecg_waveform(self.phase));
            self.samples_taken += 1;
        }
        out
    }
}

/// One cardiac cycle of a stylised P-QRS-T shape over phase `[0, 1)`.
fn ecg_waveform(phase: f64) -> f64 {
    let g = |center: f64, width: f64, height: f64| {
        let d = (phase - center) / width;
        height * (-d * d).exp()
    };
    // P wave, Q dip, R spike, S dip, T wave.
    g(0.18, 0.025, 0.15)
        + g(0.295, 0.012, -0.12)
        + g(0.32, 0.008, 1.2)
        + g(0.345, 0.012, -0.25)
        + g(0.55, 0.04, 0.3)
}

/// A patient scenario: a named bundle of episodes shared by all of the
/// patient's vital traces.
///
/// ```
/// use std::time::Duration;
/// use smc_sensors::traces::{HeartRateTrace, Scenario, VitalTrace};
///
/// let scenario = Scenario::cardiac_event(Duration::from_secs(10));
/// let mut hr = HeartRateTrace::new(7);
/// for episode in &scenario.episodes {
///     hr = hr.with_episode(*episode);
/// }
/// let during = hr.sample(Duration::from_secs(60));
/// assert!(during > 120.0, "the cardiac event drives the rate up: {during}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Scenario label.
    pub name: String,
    /// The scripted episodes.
    pub episodes: Vec<Episode>,
}

impl Scenario {
    /// An uneventful patient.
    pub fn stable(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            episodes: Vec::new(),
        }
    }

    /// Adds an episode (builder style).
    pub fn with(mut self, episode: Episode) -> Self {
        self.episodes.push(episode);
        self
    }

    /// The paper's motivating case: a possible heart attack — tachycardia
    /// with hypoxia and a pressure drop, starting at `onset`.
    pub fn cardiac_event(onset: Duration) -> Self {
        Scenario::stable("cardiac-event")
            .with(Episode::new(
                EpisodeKind::Tachycardia,
                onset,
                Duration::from_secs(90),
                0.9,
            ))
            .with(Episode::new(
                EpisodeKind::Hypoxia,
                onset + Duration::from_secs(20),
                Duration::from_secs(70),
                0.7,
            ))
            .with(Episode::new(
                EpisodeKind::Hypotension,
                onset + Duration::from_secs(30),
                Duration::from_secs(60),
                0.8,
            ))
    }

    /// An infection developing over hours: fever plus mild tachycardia.
    pub fn infection(onset: Duration) -> Self {
        Scenario::stable("infection")
            .with(Episode::new(
                EpisodeKind::Fever,
                onset,
                Duration::from_secs(4 * 3600),
                0.8,
            ))
            .with(Episode::new(
                EpisodeKind::Tachycardia,
                onset + Duration::from_secs(600),
                Duration::from_secs(3 * 3600),
                0.3,
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn traces_stay_in_plausible_ranges() {
        let mut hr = HeartRateTrace::new(1);
        let mut spo2 = Spo2Trace::new(2);
        let mut temp = TemperatureTrace::new(3);
        let mut sys = SystolicTrace::new(4);
        let mut dia = DiastolicTrace::new(5);
        for i in 0..600 {
            let t = SEC * i;
            let h = hr.sample(t);
            assert!((50.0..110.0).contains(&h), "resting HR {h}");
            let s = spo2.sample(t);
            assert!((94.0..100.0).contains(&s), "resting SpO2 {s}");
            let c = temp.sample(t);
            assert!((36.0..37.6).contains(&c), "resting temp {c}");
            assert!(sys.sample(t) > dia.sample(t), "systolic above diastolic");
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let mut a = HeartRateTrace::new(42);
        let mut b = HeartRateTrace::new(42);
        let mut c = HeartRateTrace::new(43);
        let va: Vec<f64> = (0..50).map(|i| a.sample(SEC * i)).collect();
        let vb: Vec<f64> = (0..50).map(|i| b.sample(SEC * i)).collect();
        let vc: Vec<f64> = (0..50).map(|i| c.sample(SEC * i)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn tachycardia_episode_raises_rate() {
        let episode = Episode::new(EpisodeKind::Tachycardia, SEC * 60, SEC * 60, 1.0);
        let mut hr = HeartRateTrace::new(7).with_episode(episode);
        let before = hr.sample(SEC * 30);
        let during = hr.sample(SEC * 90);
        let after = hr.sample(SEC * 150);
        assert!(during > before + 60.0, "episode peak {during} vs {before}");
        assert!(during > 120.0, "alarm threshold crossed: {during}");
        assert!(after < before + 20.0, "rate recovers: {after}");
    }

    #[test]
    fn hypoxia_dips_spo2_below_90() {
        let episode = Episode::new(EpisodeKind::Hypoxia, SEC * 10, SEC * 40, 0.9);
        let mut spo2 = Spo2Trace::new(9).with_episode(episode);
        let during = spo2.sample(SEC * 30);
        assert!(during < 90.0, "hypoxic SpO2 {during}");
    }

    #[test]
    fn fever_episode_crosses_38() {
        let episode = Episode::new(EpisodeKind::Fever, SEC * 10, SEC * 100, 0.9);
        let mut t = TemperatureTrace::new(11).with_episode(episode);
        assert!(t.sample(SEC * 60) > 38.0);
    }

    #[test]
    fn activation_envelope() {
        let e = Episode::new(EpisodeKind::Fever, SEC * 10, SEC * 100, 1.0);
        assert_eq!(e.activation(SEC * 5), 0.0);
        assert_eq!(e.activation(SEC * 200), 0.0);
        assert!(e.activation(SEC * 11) > 0.0);
        assert!(e.activation(SEC * 11) < 1.0, "ramp-in");
        assert_eq!(e.activation(SEC * 60), 1.0, "plateau");
        assert!(e.activation(SEC * 109) < 1.0, "ramp-out");
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn severity_validated() {
        let _ = Episode::new(EpisodeKind::Fever, SEC, SEC, 2.0);
    }

    #[test]
    fn ecg_waveform_has_r_spikes() {
        let mut ecg = EcgTrace::new(1, 250.0);
        let samples = ecg.next_samples(2500); // ten seconds
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1.0, "R peak present: {max}");
        // Roughly 72 bpm → 12 beats in 10 s; count threshold crossings.
        let mut beats = 0;
        let mut above = false;
        for &s in &samples {
            if s > 0.8 && !above {
                beats += 1;
                above = true;
            } else if s < 0.2 {
                above = false;
            }
        }
        assert!((9..=16).contains(&beats), "beat count {beats}");
    }

    #[test]
    fn scenarios_compose() {
        let s = Scenario::cardiac_event(SEC * 100);
        assert_eq!(s.episodes.len(), 3);
        assert_eq!(s.name, "cardiac-event");
        let i = Scenario::infection(SEC * 10);
        assert_eq!(i.episodes.len(), 2);
        let custom =
            Scenario::stable("x").with(Episode::new(EpisodeKind::Bradycardia, SEC, SEC, 0.5));
        assert_eq!(custom.episodes.len(), 1);
    }
}
