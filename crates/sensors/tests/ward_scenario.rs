//! Full ward scenario: a patient's body-area network joins a cell, a
//! scripted cardiac event unfolds, policies raise alarms and drive the
//! actuator — the paper's motivating use case, end-to-end.

use std::sync::Arc;
use std::time::Duration;

use smc_core::{RemoteClient, SmcCell, SmcConfig};
use smc_discovery::AgentConfig;
use smc_policy::{ActionSpec, Expr, ObligationPolicy, Policy, ValueTemplate};
use smc_sensors::runner::{Patient, SensorKind, SensorRunner};
use smc_sensors::{register_standard_codecs, Episode, EpisodeKind, Scenario};
use smc_transport::{LinkConfig, ReliableChannel, ReliableConfig, SimNetwork};
use smc_types::{wellknown, Error, Event, Filter, Op, ServiceId, ServiceInfo};

const TICK: Duration = Duration::from_secs(10);

fn start_cell(net: &SimNetwork) -> Arc<SmcCell> {
    let cell = SmcCell::start(
        Arc::new(net.endpoint()),
        Arc::new(net.endpoint()),
        SmcConfig::fast(),
    );
    register_standard_codecs(cell.proxy_factory());
    cell
}

fn nurse_terminal(net: &SimNetwork) -> Arc<RemoteClient> {
    RemoteClient::connect(
        ServiceInfo::new(ServiceId::NIL, "terminal.nurse").with_role("manager"),
        ReliableChannel::new(
            Arc::new(net.endpoint()),
            ReliableConfig {
                initial_rto: Duration::from_millis(30),
                poll_interval: Duration::from_millis(10),
                ..ReliableConfig::default()
            },
        ),
        AgentConfig::default(),
        TICK,
    )
    .unwrap()
}

#[test]
fn tachycardia_episode_raises_alarm_to_nurse() {
    let net = SimNetwork::new(LinkConfig::ideal());
    let cell = start_cell(&net);
    cell.policy()
        .add(Policy::Obligation(
            ObligationPolicy::new(
                "tachy-alarm",
                Filter::for_type(wellknown::SENSOR_READING).with(("sensor", Op::Eq, "heart-rate")),
            )
            .when(Expr::parse("bpm > 120").unwrap())
            .then(ActionSpec::PublishEvent {
                event_type: wellknown::ALARM.into(),
                attrs: vec![
                    ("kind".into(), ValueTemplate::Literal("tachycardia".into())),
                    ("bpm".into(), ValueTemplate::FromEvent("bpm".into())),
                ],
            }),
        ))
        .unwrap();

    let nurse = nurse_terminal(&net);
    nurse
        .subscribe(Filter::for_type(wellknown::ALARM), TICK)
        .unwrap();

    // Heart-rate strap whose episode starts essentially immediately.
    let scenario = Scenario::stable("acute").with(Episode::new(
        EpisodeKind::Tachycardia,
        Duration::from_millis(0),
        Duration::from_secs(60),
        1.0,
    ));
    let strap = SensorRunner::start(
        &net,
        SensorKind::HeartRate,
        &scenario,
        77,
        Duration::from_millis(30),
    )
    .unwrap();

    // The alarm must arrive, carrying an elevated reading.
    let alarm = nurse.next_event(TICK).unwrap();
    assert_eq!(alarm.event_type(), wellknown::ALARM);
    assert_eq!(alarm.attr("kind").unwrap().as_str(), Some("tachycardia"));
    let bpm = alarm.attr("bpm").unwrap().as_int().unwrap();
    assert!(bpm > 120, "alarm bpm {bpm}");
    assert!(strap.frames_sent() > 0);

    strap.stop();
    nurse.shutdown();
    cell.shutdown();
}

#[test]
fn full_patient_network_streams_all_channels() {
    let net = SimNetwork::new(LinkConfig::ideal());
    let cell = start_cell(&net);
    let nurse = nurse_terminal(&net);
    nurse
        .subscribe(Filter::for_type(wellknown::SENSOR_READING), TICK)
        .unwrap();

    let patient = Patient::admit(
        &net,
        "bed 4",
        &Scenario::stable("routine"),
        99,
        Duration::from_millis(25),
    )
    .unwrap();
    assert_eq!(patient.sensors.len(), 4);
    assert_eq!(patient.actuators.len(), 1);

    // Every sensor family shows up on the bus.
    let mut seen = std::collections::HashSet::new();
    let deadline = std::time::Instant::now() + TICK;
    while seen.len() < 4 {
        assert!(std::time::Instant::now() < deadline, "only saw {seen:?}");
        if let Ok(e) = nurse.next_event(Duration::from_millis(200)) {
            if let Some(sensor) = e.attr("sensor").and_then(|v| v.as_str()) {
                seen.insert(sensor.to_owned());
            }
        }
    }
    assert!(seen.contains("heart-rate"));
    assert!(seen.contains("spo2"));
    assert!(seen.contains("blood-pressure"));
    assert!(seen.contains("temperature"));

    // The cell sees all five devices as members.
    assert_eq!(cell.members().len(), 6, "4 sensors + pump + nurse");

    patient.discharge();
    nurse.shutdown();
    cell.shutdown();
}

#[test]
fn policy_commands_actuator_on_hypoxia() {
    let net = SimNetwork::new(LinkConfig::ideal());
    let cell = start_cell(&net);
    cell.policy()
        .add(Policy::Obligation(
            ObligationPolicy::new(
                "hypoxia-response",
                Filter::for_type(wellknown::SENSOR_READING).with(("sensor", Op::Eq, "spo2")),
            )
            .when(Expr::parse("spo2 < 90").unwrap())
            .then(ActionSpec::SendCommand {
                target: None,
                target_device_type: "actuator.*".into(),
                name: "increase-oxygen".into(),
                args: vec![("spo2".into(), ValueTemplate::FromEvent("spo2".into()))],
            }),
        ))
        .unwrap();

    let scenario = Scenario::stable("hypoxia").with(Episode::new(
        EpisodeKind::Hypoxia,
        Duration::from_millis(0),
        Duration::from_secs(60),
        1.0,
    ));
    let patient = Patient::admit(&net, "bed 9", &scenario, 123, Duration::from_millis(25)).unwrap();

    let pump = &patient.actuators[0];
    let deadline = std::time::Instant::now() + TICK;
    loop {
        let state = pump.state();
        if state
            .applied
            .iter()
            .any(|(name, _)| name == "increase-oxygen")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pump never commanded: {state:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    patient.discharge();
    cell.shutdown();
}

#[test]
fn sensor_survives_transient_dropout() {
    let net = SimNetwork::new(LinkConfig::ideal());
    let cell = start_cell(&net);
    let nurse = nurse_terminal(&net);
    nurse
        .subscribe(Filter::for_type(wellknown::SENSOR_READING), TICK)
        .unwrap();

    let strap = SensorRunner::start(
        &net,
        SensorKind::HeartRate,
        &Scenario::stable("walkabout"),
        5,
        Duration::from_millis(20),
    )
    .unwrap();

    // Wait for flow.
    nurse.next_event(TICK).unwrap();

    // The patient wanders out of range briefly (shorter than the grace
    // period), then returns; readings must resume without rejoin.
    net.set_partitioned(strap.device_id(), cell.bus_endpoint(), true);
    net.set_partitioned(strap.device_id(), cell.discovery().local_id(), true);
    std::thread::sleep(Duration::from_millis(120));
    net.set_partitioned(strap.device_id(), cell.bus_endpoint(), false);
    net.set_partitioned(strap.device_id(), cell.discovery().local_id(), false);

    // Drain whatever queued, then confirm fresh readings keep coming.
    let mut after = 0;
    let deadline = std::time::Instant::now() + TICK;
    while after < 10 {
        assert!(std::time::Instant::now() < deadline);
        if nurse.next_event(Duration::from_millis(300)).is_ok() {
            after += 1;
        }
    }
    assert!(
        cell.discovery().is_member(strap.device_id()),
        "membership masked the dropout"
    );

    strap.stop();
    nurse.shutdown();
    cell.shutdown();
}

#[test]
fn discharge_is_clean() {
    let net = SimNetwork::new(LinkConfig::ideal());
    let cell = start_cell(&net);
    let patient = Patient::admit(
        &net,
        "bed 1",
        &Scenario::stable("ok"),
        7,
        Duration::from_millis(50),
    )
    .unwrap();
    let deadline = std::time::Instant::now() + TICK;
    while cell.members().len() < 5 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }
    patient.discharge();
    // Leases expire and the members disappear.
    let deadline = std::time::Instant::now() + TICK;
    while !cell.members().is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "members remain: {:?}",
            cell.members().len()
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    cell.shutdown();
}

#[test]
fn stopped_sensor_errors_propagate() {
    // A sensor that cannot join (no cell) reports Timeout.
    let net = SimNetwork::new(LinkConfig::ideal());
    let result = SensorRunner::start(
        &net,
        SensorKind::Spo2,
        &Scenario::stable("orphan"),
        1,
        Duration::from_millis(50),
    );
    assert!(matches!(result, Err(Error::Timeout)), "{result:?}");
    // Events through an event-type constant sanity check.
    let _ = Event::new(wellknown::SENSOR_READING);
}
