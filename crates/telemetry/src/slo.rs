//! Error-budget burn rates over multi-window virtual-time horizons.
//!
//! Raw detectors (PR 4) react to spikes; an SLO layer reacts to *budget
//! exhaustion* — "at this violation rate, the period's error budget is
//! gone before the period ends" — which is the signal an autonomic
//! manager should page on. A [`SloTracker`] records bounded
//! observations (delivery latencies, supervision times-to-repair),
//! classifies each against an objective, and computes the burn rate
//! over several windows at once: the classic fast-window/slow-window
//! pair, where only a burn sustained across *both* means real budget
//! loss rather than a blip.
//!
//! Everything is virtual-time: windows are microsecond horizons on the
//! injected clock, so the chaos harness computes identical burn rates
//! run after run.

use std::collections::VecDeque;

use smc_types::TelemetryMsg;

/// One SLO: an objective over an observed value plus an error budget.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// SLO name, e.g. `"delivery-latency"` or `"supervision-ttr"`.
    pub name: String,
    /// An observation at or below this is within objective (µs).
    pub objective_micros: u64,
    /// Allowed fraction of violating observations, ×1000 (10 = 1%).
    pub budget_milli: u64,
    /// The virtual-time horizons burn is computed over, in µs,
    /// shortest first (e.g. fast 5 s, slow 30 s).
    pub windows_micros: Vec<u64>,
}

impl SloConfig {
    /// A named SLO with the given objective and a 1% budget over
    /// 5 s / 30 s virtual windows.
    pub fn new(name: impl Into<String>, objective_micros: u64) -> SloConfig {
        SloConfig {
            name: name.into(),
            objective_micros,
            budget_milli: 10,
            windows_micros: vec![5_000_000, 30_000_000],
        }
    }
}

/// The burn rate of one window at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloWindowBurn {
    /// The window the rate was computed over (µs).
    pub window_micros: u64,
    /// Burn ×1000: violating fraction ÷ budget fraction. 1000 means
    /// violations arrive exactly at the budgeted rate; 2000 means the
    /// budget disappears twice as fast as provisioned.
    pub burn_milli: u64,
    /// Remaining budget ×1000 within this window (0 = exhausted).
    pub budget_left_milli: u64,
}

/// Tracks one SLO's observations and computes windowed burn rates.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    /// `(at_micros, violated)` per observation, pruned to the longest
    /// window.
    observations: VecDeque<(u64, bool)>,
}

impl SloTracker {
    /// A tracker for `config`.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config,
            observations: VecDeque::new(),
        }
    }

    /// The tracked SLO's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Records one observation at virtual time `at_micros`.
    pub fn record(&mut self, at_micros: u64, value_micros: u64) {
        let violated = value_micros > self.config.objective_micros;
        self.observations.push_back((at_micros, violated));
        let horizon = self
            .config
            .windows_micros
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        while let Some(&(at, _)) = self.observations.front() {
            if at + horizon < at_micros {
                self.observations.pop_front();
            } else {
                break;
            }
        }
    }

    /// Burn rates for every configured window as of `now`. Windows with
    /// no observations burn at 0 (no traffic spends no budget).
    pub fn burn(&self, now: u64) -> Vec<SloWindowBurn> {
        self.config
            .windows_micros
            .iter()
            .map(|&window| {
                let since = now.saturating_sub(window);
                let (mut total, mut bad) = (0u64, 0u64);
                for &(at, violated) in &self.observations {
                    if at >= since && at <= now {
                        total += 1;
                        bad += u64::from(violated);
                    }
                }
                let (burn_milli, budget_left_milli) = match (bad * 1000).checked_div(total) {
                    None => (0, 1000),
                    Some(bad_milli) => {
                        // violating fraction ÷ budget fraction, ×1000.
                        match (bad_milli * 1000).checked_div(self.config.budget_milli) {
                            Some(burn) => (burn, 1000u64.saturating_sub(burn)),
                            // A zero budget: any violation is an
                            // immediate total burn.
                            None if bad > 0 => (u64::MAX, 0),
                            None => (0, 1000),
                        }
                    }
                };
                SloWindowBurn {
                    window_micros: window,
                    burn_milli,
                    budget_left_milli,
                }
            })
            .collect()
    }

    /// The wire form: one [`TelemetryMsg::SloReport`] per window,
    /// stamped from `cell`.
    pub fn reports(&self, now: u64, cell: u64) -> Vec<TelemetryMsg> {
        self.burn(now)
            .into_iter()
            .map(|b| TelemetryMsg::SloReport {
                cell,
                slo: self.config.name.clone(),
                window_micros: b.window_micros,
                burn_milli: b.burn_milli,
                budget_left_milli: b.budget_left_milli,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(SloConfig {
            name: "delivery-latency".into(),
            objective_micros: 1_000,
            budget_milli: 100, // 10% of observations may violate
            windows_micros: vec![10_000, 100_000],
        })
    }

    #[test]
    fn no_traffic_burns_nothing() {
        let t = tracker();
        for b in t.burn(50_000) {
            assert_eq!(b.burn_milli, 0);
            assert_eq!(b.budget_left_milli, 1000);
        }
    }

    #[test]
    fn burn_is_violating_fraction_over_budget() {
        let mut t = tracker();
        // 10 observations in the fast window, 1 violating = exactly
        // the 10% budget → burn 1000.
        for i in 0..9 {
            t.record(90_000 + i * 1_000, 500);
        }
        t.record(99_000, 5_000);
        let burns = t.burn(100_000);
        assert_eq!(burns[0].window_micros, 10_000);
        assert_eq!(burns[0].burn_milli, 1000);
        assert_eq!(burns[0].budget_left_milli, 0);
    }

    #[test]
    fn fast_window_recovers_while_slow_window_remembers() {
        let mut t = tracker();
        // A burst of violations early…
        for i in 0..10 {
            t.record(i * 1_000, 9_000);
        }
        // …then clean traffic.
        for i in 0..10 {
            t.record(50_000 + i * 1_000, 100);
        }
        let burns = t.burn(60_000);
        let fast = burns[0];
        let slow = burns[1];
        assert_eq!(fast.burn_milli, 0, "the burst left the fast window");
        assert!(
            slow.burn_milli >= 1000,
            "the slow window still sees the burst: {slow:?}"
        );
    }

    #[test]
    fn observations_prune_to_the_longest_window() {
        let mut t = tracker();
        for i in 0..1_000u64 {
            t.record(i * 1_000, 100);
        }
        assert!(
            t.observations.len() <= 102,
            "pruned: {}",
            t.observations.len()
        );
    }

    #[test]
    fn reports_carry_one_message_per_window() {
        let mut t = tracker();
        t.record(95_000, 9_000);
        let reports = t.reports(100_000, 2);
        assert_eq!(reports.len(), 2);
        for (r, w) in reports.iter().zip([10_000u64, 100_000]) {
            match r {
                TelemetryMsg::SloReport {
                    cell,
                    slo,
                    window_micros,
                    ..
                } => {
                    assert_eq!(*cell, 2);
                    assert_eq!(slo, "delivery-latency");
                    assert_eq!(*window_micros, w);
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
    }
}
