//! The observer-side half of the telemetry plane: folding per-cell
//! exports into ward-scale series and stitching cross-cell journeys.
//!
//! A [`WardRegistry`] consumes the [`TelemetryMsg`]s cells publish on
//! the telemetry channel and maintains three aggregates:
//!
//! * **Metrics** — every [`SeriesDelta`] folds into the observer's own
//!   [`Registry`] twice: once under a `cell="<id>"` label (the per-cell
//!   series) and once under `cell="ward"` (the rollup). Counters only
//!   ever *add* the non-negative deltas the
//!   [`DeltaExporter`](crate::DeltaExporter) produced, so ward counters
//!   are monotone by construction no matter how often cells crash.
//! * **Journeys** — exported trace hops from different cells merge into
//!   one causal [`StitchedJourney`] per trace, ordered by virtual
//!   timestamp, so a peer-supervision repair reads end to end:
//!   lease-lapse → claim → adopt → wire repair → remote restart.
//! * **Freshness** — per-cell last-export bookkeeping
//!   ([`CellFreshness`]) plus an aggregation-lag histogram, the "how
//!   stale is the ward view" question a sink-side dashboard asks.
//!
//! Replayed exports (a journaled channel re-delivering after a crash)
//! are deduplicated by per-cell export sequence number, so folding is
//! idempotent as well as monotone.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use smc_types::{SeriesDelta, TelemetryMsg, TraceId};

use crate::metrics::Registry;

/// One cell's export freshness as seen by the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFreshness {
    /// The exporting cell's id.
    pub cell: u64,
    /// Highest export sequence number seen from this cell.
    pub last_export_seq: u64,
    /// Virtual timestamp of the most recent export (µs).
    pub last_delta_at_micros: u64,
    /// `now − last_delta_at_micros`: how stale this cell's slice of the
    /// ward view is (µs).
    pub lag_micros: u64,
}

/// One leg of a stitched cross-cell journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchedHop {
    /// The cell that recorded the hop.
    pub cell: u64,
    /// Hop label, e.g. `"claim"` or `"remote-restart"`.
    pub label: String,
    /// Virtual timestamp the hop was recorded at (µs).
    pub at_micros: u64,
}

/// A causal journey assembled from hops exported by several cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchedJourney {
    /// The trace the legs share.
    pub trace: TraceId,
    /// Legs ordered by virtual timestamp (arrival order breaks ties).
    pub legs: Vec<StitchedHop>,
    /// True if any exporting cell reported this trace evicted from its
    /// ring — earlier legs may be missing.
    pub truncated: bool,
}

impl fmt::Display for StitchedJourney {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "journey {} ({} legs)", self.trace, self.legs.len())?;
        if self.truncated {
            writeln!(f, "  (truncated — a cell's ring evicted earlier hops)")?;
        }
        let start = self.legs.first().map_or(0, |l| l.at_micros);
        for leg in &self.legs {
            writeln!(
                f,
                "  +{:>8}µs  cell {}  {}",
                leg.at_micros - start,
                leg.cell,
                leg.label
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct CellState {
    last_metric_seq: Option<u64>,
    last_trace_seq: Option<u64>,
    last_delta_at_micros: u64,
}

impl CellState {
    fn last_export_seq(&self) -> u64 {
        self.last_metric_seq
            .into_iter()
            .chain(self.last_trace_seq)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct JourneyState {
    /// `(arrival index, hop)` so same-timestamp legs keep a stable
    /// order across runs.
    legs: Vec<(u64, StitchedHop)>,
    truncated: bool,
}

#[derive(Debug, Default)]
struct Inner {
    cells: HashMap<u64, CellState>,
    /// Absolute gauge readings per series key per cell, for ward
    /// rollup-by-sum.
    gauges: HashMap<String, HashMap<u64, u64>>,
    journeys: HashMap<u64, JourneyState>,
    arrivals: u64,
    duplicates: u64,
}

/// Folds per-cell telemetry exports into ward-scale series and stitched
/// journeys. See the [module docs](self).
#[derive(Debug)]
pub struct WardRegistry {
    registry: Registry,
    inner: Mutex<Inner>,
}

impl Default for WardRegistry {
    fn default() -> Self {
        WardRegistry::new()
    }
}

/// The label value the rolled-up ward series carries.
pub const WARD_LABEL: &str = "ward";

const FOLD_HELP: &str = "Series folded from per-cell telemetry exports.";

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

impl WardRegistry {
    /// An empty ward view backed by its own registry.
    pub fn new() -> WardRegistry {
        let registry = Registry::new();
        registry.histogram(
            "smc_ward_aggregation_lag_micros",
            "Virtual-time lag between a cell stamping an export and the observer folding it.",
        );
        registry.counter(
            "smc_ward_exports_applied_total",
            "Telemetry exports folded into the ward view.",
        );
        registry.counter(
            "smc_ward_exports_duplicate_total",
            "Telemetry exports dropped as journal replays (seen sequence number).",
        );
        WardRegistry {
            registry,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The observer's registry holding the folded per-cell and ward
    /// series; render with [`Registry::render_text`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Folds one telemetry message stamped at `export_at_micros` (the
    /// event timestamp) and observed at `observed_at_micros` (the
    /// observer's clock). Returns false for journal-replay duplicates,
    /// which are dropped without folding.
    pub fn apply(
        &self,
        msg: &TelemetryMsg,
        export_at_micros: u64,
        observed_at_micros: u64,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match msg {
            TelemetryMsg::MetricDelta {
                cell,
                export_seq,
                series,
            } => {
                let state = inner.cells.entry(*cell).or_default();
                if state.last_metric_seq.is_some_and(|s| *export_seq <= s) {
                    inner.duplicates += 1;
                    self.note_duplicate();
                    return false;
                }
                state.last_metric_seq = Some(*export_seq);
                state.last_delta_at_micros = state.last_delta_at_micros.max(export_at_micros);
                for delta in series {
                    self.fold(&mut inner, *cell, delta);
                }
            }
            TelemetryMsg::TraceExport {
                cell,
                export_seq,
                hops,
                truncated,
            } => {
                let state = inner.cells.entry(*cell).or_default();
                if state.last_trace_seq.is_some_and(|s| *export_seq <= s) {
                    inner.duplicates += 1;
                    self.note_duplicate();
                    return false;
                }
                state.last_trace_seq = Some(*export_seq);
                state.last_delta_at_micros = state.last_delta_at_micros.max(export_at_micros);
                for hop in hops {
                    let arrival = inner.arrivals;
                    inner.arrivals += 1;
                    let journey = inner.journeys.entry(hop.trace).or_default();
                    journey.legs.push((
                        arrival,
                        StitchedHop {
                            cell: *cell,
                            label: hop.label.clone(),
                            at_micros: hop.at_micros,
                        },
                    ));
                }
                for trace in truncated {
                    inner.journeys.entry(*trace).or_default().truncated = true;
                }
            }
            TelemetryMsg::SloReport {
                cell,
                slo,
                window_micros,
                burn_milli,
                budget_left_milli,
            } => {
                let state = inner.cells.entry(*cell).or_default();
                state.last_delta_at_micros = state.last_delta_at_micros.max(export_at_micros);
                let cell_label = cell.to_string();
                let window_label = window_micros.to_string();
                let labels = [
                    ("slo", slo.as_str()),
                    ("window", window_label.as_str()),
                    ("cell", cell_label.as_str()),
                ];
                self.registry
                    .gauge_with(
                        "smc_slo_burn_rate_milli",
                        "SLO burn rate x1000 per window (1000 = exactly on budget).",
                        &labels,
                    )
                    .set(*burn_milli);
                self.registry
                    .gauge_with(
                        "smc_slo_budget_left_milli",
                        "SLO error budget remaining x1000 per window.",
                        &labels,
                    )
                    .set(*budget_left_milli);
            }
            _ => return false,
        }
        drop(inner);
        self.registry
            .counter(
                "smc_ward_exports_applied_total",
                "Telemetry exports folded into the ward view.",
            )
            .inc();
        self.registry
            .histogram(
                "smc_ward_aggregation_lag_micros",
                "Virtual-time lag between a cell stamping an export and the observer folding it.",
            )
            .observe(observed_at_micros.saturating_sub(export_at_micros));
        true
    }

    fn note_duplicate(&self) {
        self.registry
            .counter(
                "smc_ward_exports_duplicate_total",
                "Telemetry exports dropped as journal replays (seen sequence number).",
            )
            .inc();
    }

    fn fold(&self, inner: &mut Inner, cell: u64, delta: &SeriesDelta) {
        let cell_label = cell.to_string();
        let mut labels: Vec<(&str, &str)> = delta
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        labels.push(("cell", cell_label.as_str()));
        if delta.monotonic {
            self.registry
                .counter_with(&delta.name, FOLD_HELP, &labels)
                .add(delta.value);
            *labels.last_mut().unwrap() = ("cell", WARD_LABEL);
            self.registry
                .counter_with(&delta.name, FOLD_HELP, &labels)
                .add(delta.value);
        } else {
            self.registry
                .gauge_with(&delta.name, FOLD_HELP, &labels)
                .set(delta.value);
            // The ward gauge is the sum of the latest reading from
            // every cell.
            let key = series_key(&delta.name, &delta.labels);
            let per_cell = inner.gauges.entry(key).or_default();
            per_cell.insert(cell, delta.value);
            let sum: u64 = per_cell.values().sum();
            *labels.last_mut().unwrap() = ("cell", WARD_LABEL);
            self.registry
                .gauge_with(&delta.name, FOLD_HELP, &labels)
                .set(sum);
        }
    }

    /// Per-cell export freshness as of virtual time `now`, ordered by
    /// cell id.
    pub fn freshness(&self, now_micros: u64) -> Vec<CellFreshness> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<CellFreshness> = inner
            .cells
            .iter()
            .map(|(&cell, state)| CellFreshness {
                cell,
                last_export_seq: state.last_export_seq(),
                last_delta_at_micros: state.last_delta_at_micros,
                lag_micros: now_micros.saturating_sub(state.last_delta_at_micros),
            })
            .collect();
        out.sort_by_key(|f| f.cell);
        out
    }

    /// The stitched cross-cell journey for `trace`, or None if no cell
    /// has exported a hop for it.
    pub fn stitched(&self, trace: TraceId) -> Option<StitchedJourney> {
        let inner = self.inner.lock().unwrap();
        let state = inner.journeys.get(&trace.raw())?;
        let mut legs = state.legs.clone();
        legs.sort_by(|(ai, a), (bi, b)| a.at_micros.cmp(&b.at_micros).then(ai.cmp(bi)));
        Some(StitchedJourney {
            trace,
            legs: legs.into_iter().map(|(_, hop)| hop).collect(),
            truncated: state.truncated,
        })
    }

    /// Every trace the observer has stitched at least one leg for.
    pub fn traces(&self) -> Vec<TraceId> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<TraceId> = inner
            .journeys
            .keys()
            .map(|&t| TraceId::from_raw(t))
            .collect();
        out.sort_by_key(|t| t.raw());
        out
    }

    /// The newest export timestamp folded so far (µs) — a stand-in for
    /// "now" when the caller has no clock.
    pub fn latest_export_micros(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .cells
            .values()
            .map(|c| c.last_delta_at_micros)
            .max()
            .unwrap_or(0)
    }

    /// Exports dropped as journal-replay duplicates.
    pub fn duplicates(&self) -> u64 {
        self.inner.lock().unwrap().duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_types::HopExport;

    fn delta(name: &str, monotonic: bool, value: u64) -> SeriesDelta {
        SeriesDelta {
            name: name.into(),
            labels: vec![],
            monotonic,
            value,
        }
    }

    fn metric_delta(cell: u64, seq: u64, series: Vec<SeriesDelta>) -> TelemetryMsg {
        TelemetryMsg::MetricDelta {
            cell,
            export_seq: seq,
            series,
        }
    }

    fn value_of(ward: &WardRegistry, name: &str, cell: &str) -> u64 {
        ward.registry()
            .gather()
            .into_iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "cell" && v == cell))
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("no series {name}{{cell={cell}}}"))
    }

    #[test]
    fn counters_fold_per_cell_and_roll_up_to_the_ward() {
        let ward = WardRegistry::new();
        ward.apply(
            &metric_delta(1, 1, vec![delta("smc_pub_total", true, 5)]),
            10,
            12,
        );
        ward.apply(
            &metric_delta(2, 1, vec![delta("smc_pub_total", true, 3)]),
            10,
            12,
        );
        ward.apply(
            &metric_delta(1, 2, vec![delta("smc_pub_total", true, 4)]),
            20,
            22,
        );
        assert_eq!(value_of(&ward, "smc_pub_total", "1"), 9);
        assert_eq!(value_of(&ward, "smc_pub_total", "2"), 3);
        assert_eq!(value_of(&ward, "smc_pub_total", "ward"), 12);
    }

    #[test]
    fn ward_gauges_are_the_sum_of_latest_cell_readings() {
        let ward = WardRegistry::new();
        ward.apply(
            &metric_delta(1, 1, vec![delta("smc_members", false, 2)]),
            10,
            10,
        );
        ward.apply(
            &metric_delta(2, 1, vec![delta("smc_members", false, 2)]),
            10,
            10,
        );
        assert_eq!(value_of(&ward, "smc_members", "ward"), 4);
        // Cell 1's membership shrinks; the ward reading follows, it
        // does not accumulate.
        ward.apply(
            &metric_delta(1, 2, vec![delta("smc_members", false, 1)]),
            20,
            20,
        );
        assert_eq!(value_of(&ward, "smc_members", "1"), 1);
        assert_eq!(value_of(&ward, "smc_members", "ward"), 3);
    }

    #[test]
    fn journal_replays_are_idempotent() {
        let ward = WardRegistry::new();
        let msg = metric_delta(1, 7, vec![delta("smc_pub_total", true, 5)]);
        assert!(ward.apply(&msg, 10, 11));
        assert!(!ward.apply(&msg, 10, 99), "same seq folds once");
        assert_eq!(value_of(&ward, "smc_pub_total", "ward"), 5);
        assert_eq!(ward.duplicates(), 1);
    }

    #[test]
    fn hops_from_two_cells_stitch_into_one_ordered_journey() {
        let ward = WardRegistry::new();
        let trace = TraceId::from_raw(0xAB);
        // Cell 2's export arrives first even though its hops happened
        // later — stitching orders by virtual time, not arrival.
        ward.apply(
            &TelemetryMsg::TraceExport {
                cell: 2,
                export_seq: 1,
                hops: vec![HopExport {
                    trace: trace.raw(),
                    label: "remote-restart".into(),
                    at_micros: 500,
                }],
                truncated: vec![],
            },
            600,
            600,
        );
        ward.apply(
            &TelemetryMsg::TraceExport {
                cell: 1,
                export_seq: 1,
                hops: vec![
                    HopExport {
                        trace: trace.raw(),
                        label: "lease-lapse".into(),
                        at_micros: 100,
                    },
                    HopExport {
                        trace: trace.raw(),
                        label: "claim".into(),
                        at_micros: 100,
                    },
                    HopExport {
                        trace: trace.raw(),
                        label: "adopt".into(),
                        at_micros: 300,
                    },
                ],
                truncated: vec![],
            },
            700,
            700,
        );
        let journey = ward.stitched(trace).expect("stitched");
        let labels: Vec<&str> = journey.legs.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, ["lease-lapse", "claim", "adopt", "remote-restart"]);
        assert!(!journey.truncated);
        assert!(journey
            .legs
            .windows(2)
            .all(|w| w[0].at_micros <= w[1].at_micros));
        let rendered = journey.to_string();
        assert!(rendered.contains("cell 2  remote-restart"), "{rendered}");
    }

    #[test]
    fn truncated_traces_mark_the_stitched_journey() {
        let ward = WardRegistry::new();
        let trace = TraceId::from_raw(0xCD);
        ward.apply(
            &TelemetryMsg::TraceExport {
                cell: 1,
                export_seq: 1,
                hops: vec![HopExport {
                    trace: trace.raw(),
                    label: "claim".into(),
                    at_micros: 100,
                }],
                truncated: vec![trace.raw()],
            },
            200,
            200,
        );
        assert!(ward.stitched(trace).expect("stitched").truncated);
    }

    #[test]
    fn freshness_tracks_last_export_and_lag() {
        let ward = WardRegistry::new();
        ward.apply(&metric_delta(1, 3, vec![]), 1_000, 1_050);
        ward.apply(&metric_delta(2, 5, vec![]), 2_000, 2_010);
        let fresh = ward.freshness(3_000);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[0].cell, 1);
        assert_eq!(fresh[0].last_export_seq, 3);
        assert_eq!(fresh[0].last_delta_at_micros, 1_000);
        assert_eq!(fresh[0].lag_micros, 2_000);
        assert_eq!(fresh[1].cell, 2);
        assert_eq!(fresh[1].lag_micros, 1_000);
    }

    #[test]
    fn slo_reports_surface_as_labelled_gauges() {
        let ward = WardRegistry::new();
        ward.apply(
            &TelemetryMsg::SloReport {
                cell: 1,
                slo: "delivery-latency".into(),
                window_micros: 5_000_000,
                burn_milli: 2_500,
                budget_left_milli: 0,
            },
            100,
            100,
        );
        let sample = ward
            .registry()
            .gather()
            .into_iter()
            .find(|s| s.name == "smc_slo_burn_rate_milli")
            .expect("burn gauge");
        assert_eq!(sample.value, 2_500);
        assert!(sample
            .labels
            .contains(&("slo".into(), "delivery-latency".into())));
        assert!(sample.labels.contains(&("window".into(), "5000000".into())));
    }
}
