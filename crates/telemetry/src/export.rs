//! The cell-side half of the telemetry plane: delta-encoding a metric
//! registry's samples into [`SeriesDelta`]s for a
//! [`TelemetryMsg::MetricDelta`](smc_types::TelemetryMsg) export.
//!
//! The encoding carries the same trick the core's WAL metric fold uses
//! to survive restarts: counters ship as *increments* since the last
//! export, and a counter observed *below* its previous value (the
//! instrument was rebuilt after a crash) saturates to "re-count from
//! the current value" instead of going negative. The observer only ever
//! adds non-negative deltas, so every ward-rolled counter is monotone
//! by construction no matter how often cells crash and recover.

use std::collections::HashMap;

use smc_types::SeriesDelta;

use crate::metrics::Sample;

/// Delta-encodes successive [`Sample`] snapshots of one cell's
/// registry. Keep one exporter per cell per observer; its memory is one
/// `u64` per live counter series.
#[derive(Debug, Default)]
pub struct DeltaExporter {
    /// Last exported absolute value per counter series key.
    last: HashMap<String, u64>,
    /// Counter resets noticed (diagnostics; each one re-counted from
    /// the observed value, never went backwards).
    resets: u64,
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

impl DeltaExporter {
    /// A fresh exporter: its first export re-counts every counter from
    /// its current value (delta = absolute), which is exactly the
    /// crash-recovery semantics — the ward total may double-count
    /// across a restart, but it never moves backwards.
    pub fn new() -> DeltaExporter {
        DeltaExporter::default()
    }

    /// Counter resets noticed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Encodes `samples` (see [`crate::Registry::gather`]) as deltas
    /// against the previous export. Counters with a zero delta are
    /// elided (nothing to fold); gauges always ship their reading.
    pub fn export(&mut self, samples: &[Sample]) -> Vec<SeriesDelta> {
        let mut out = Vec::with_capacity(samples.len());
        for s in samples {
            if s.monotonic {
                let key = series_key(&s.name, &s.labels);
                let prev = self.last.get(&key).copied().unwrap_or(0);
                let delta = if s.value >= prev {
                    s.value - prev
                } else {
                    // The counter was rebuilt (crash, restart): what it
                    // shows now all happened since; re-count it.
                    self.resets += 1;
                    s.value
                };
                self.last.insert(key, s.value);
                if delta == 0 {
                    continue;
                }
                out.push(SeriesDelta {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    monotonic: true,
                    value: delta,
                });
            } else {
                out.push(SeriesDelta {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    monotonic: false,
                    value: s.value,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> Sample {
        Sample {
            name: name.into(),
            help: String::new(),
            monotonic: true,
            labels: vec![],
            value,
        }
    }

    fn gauge(name: &str, value: u64) -> Sample {
        Sample {
            monotonic: false,
            ..counter(name, value)
        }
    }

    #[test]
    fn counters_ship_increments_and_gauges_ship_readings() {
        let mut e = DeltaExporter::new();
        let first = e.export(&[counter("c", 10), gauge("g", 5)]);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].value, 10, "first sight re-counts from zero");
        assert_eq!(first[1].value, 5);

        let second = e.export(&[counter("c", 13), gauge("g", 2)]);
        assert_eq!(second[0].value, 3, "only the increment ships");
        assert!(second[0].monotonic);
        assert_eq!(second[1].value, 2, "gauges are absolute");
        assert!(!second[1].monotonic);
    }

    #[test]
    fn unchanged_counters_are_elided() {
        let mut e = DeltaExporter::new();
        e.export(&[counter("c", 10)]);
        let again = e.export(&[counter("c", 10)]);
        assert!(again.is_empty());
    }

    #[test]
    fn a_counter_reset_saturates_instead_of_going_backwards() {
        let mut e = DeltaExporter::new();
        e.export(&[counter("c", 100)]);
        // The cell crashed; the rebuilt counter starts over at 7.
        let after = e.export(&[counter("c", 7)]);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].value, 7, "re-count from the observed value");
        assert_eq!(e.resets(), 1);
        // Subsequent exports delta against the post-crash baseline.
        let next = e.export(&[counter("c", 9)]);
        assert_eq!(next[0].value, 2);
    }

    #[test]
    fn label_sets_are_distinct_series() {
        let mut e = DeltaExporter::new();
        let a = Sample {
            labels: vec![("q".into(), "a".into())],
            ..counter("c", 4)
        };
        let b = Sample {
            labels: vec![("q".into(), "b".into())],
            ..counter("c", 9)
        };
        let out = e.export(&[a, b]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 4);
        assert_eq!(out[1].value, 9);
    }
}
