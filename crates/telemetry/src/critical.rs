//! Critical-path attribution: fold trace windows into a per-stage
//! wait/service table plus a tail-exemplar reservoir.
//!
//! Journeys (PR 3) answer "where did *this* event spend its time"; the
//! [`CriticalPath`] analyzer answers the aggregate question: across a
//! window of traffic, which pipeline stage dominates the tail, and is
//! it queue wait or service work? It folds [`Journey`]s (or raw
//! [`HopRecord`] windows, or cross-cell [`StitchedJourney`]s) into a
//! bounded per-stage accumulator, keeps full journeys whose end-to-end
//! latency clears a rolling quantile threshold (the **tail-exemplar
//! reservoir** — the concrete evidence behind every percentile), and
//! renders both as a flame-style text report and JSON.
//!
//! Everything is bounded: per-stage latency samples use deterministic
//! reservoir sampling, the exemplar store evicts its smallest member,
//! and dropped exemplars are counted so silent loss is visible on
//! `/metrics` (`smc_trace_tail_*`).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::trace::{HopRecord, Journey, StageKind};
use crate::ward::StitchedJourney;

/// Per-stage latency samples kept (deterministic reservoir).
const STAGE_SAMPLE_CAP: usize = 4096;
/// Rolling window of journey totals the tail threshold is computed over.
const TAIL_WINDOW: usize = 512;
/// Journeys observed before the reservoir starts admitting exemplars.
const TAIL_MIN_WINDOW: usize = 32;
/// Default number of full journeys retained as tail exemplars.
pub const DEFAULT_TAIL_EXEMPLARS: usize = 16;
/// Default rolling quantile (×1000) above which a journey is a tail
/// exemplar.
pub const DEFAULT_TAIL_QUANTILE_MILLI: u64 = 950;

/// Fixed PRNG seed so identical windows fold to identical tables.
const STAGE_RESERVOIR_SEED: u64 = 0xC71C_A17A_7A11_F0CD;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[u64], milli: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * milli) / 1000;
    sorted[idx as usize]
}

/// Accumulator for one pipeline stage.
#[derive(Debug)]
struct StageAcc {
    kind: StageKind,
    count: u64,
    total_micros: u64,
    samples: Vec<u64>,
    rng: u64,
}

impl StageAcc {
    fn new(kind: StageKind) -> StageAcc {
        StageAcc {
            kind,
            count: 0,
            total_micros: 0,
            samples: Vec::new(),
            rng: STAGE_RESERVOIR_SEED,
        }
    }

    fn record(&mut self, delta: u64) {
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(delta);
        if self.samples.len() < STAGE_SAMPLE_CAP {
            self.samples.push(delta);
        } else {
            let j = splitmix64(&mut self.rng) % self.count;
            if (j as usize) < STAGE_SAMPLE_CAP {
                self.samples[j as usize] = delta;
            }
        }
    }
}

/// One row of the attribution table: a stage's share of the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage name (from [`Hop::stage`](crate::Hop::stage) or a stitched
    /// hop label).
    pub stage: String,
    /// Queue wait or service work.
    pub kind: StageKind,
    /// Legs folded into this stage.
    pub count: u64,
    /// Sum of leg deltas (µs).
    pub total_micros: u64,
    /// Share of the window's total attributed time, ×1000.
    pub share_milli: u64,
    /// Median leg delta (µs, reservoir-estimated).
    pub p50_micros: u64,
    /// 95th-percentile leg delta (µs).
    pub p95_micros: u64,
    /// 99th-percentile leg delta (µs).
    pub p99_micros: u64,
}

/// One retained tail journey: the full hop list behind a tail latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailExemplar {
    /// The complete journey.
    pub journey: Journey,
    /// Its end-to-end latency (µs).
    pub total_micros: u64,
}

/// Retains full journeys whose latency clears a rolling quantile of
/// recent journey totals. Bounded: when full, the smallest exemplar is
/// evicted (or the offer is refused), and every loss is counted.
#[derive(Debug)]
pub struct TailReservoir {
    capacity: usize,
    quantile_milli: u64,
    /// Rolling window of recent journey totals (threshold input).
    recent: std::collections::VecDeque<u64>,
    exemplars: Vec<TailExemplar>,
    admitted: u64,
    dropped: u64,
}

impl Default for TailReservoir {
    fn default() -> Self {
        TailReservoir::new(DEFAULT_TAIL_EXEMPLARS, DEFAULT_TAIL_QUANTILE_MILLI)
    }
}

impl TailReservoir {
    /// A reservoir holding `capacity` exemplars above the rolling
    /// `quantile_milli` (×1000) threshold.
    pub fn new(capacity: usize, quantile_milli: u64) -> TailReservoir {
        TailReservoir {
            capacity: capacity.max(1),
            quantile_milli: quantile_milli.min(1000),
            recent: std::collections::VecDeque::new(),
            exemplars: Vec::new(),
            admitted: 0,
            dropped: 0,
        }
    }

    /// The current admission threshold (µs), 0 while the rolling window
    /// is still warming up.
    pub fn threshold_micros(&self) -> u64 {
        if self.recent.len() < TAIL_MIN_WINDOW {
            return 0;
        }
        let mut sorted: Vec<u64> = self.recent.iter().copied().collect();
        sorted.sort_unstable();
        percentile(&sorted, self.quantile_milli)
    }

    /// Offers one journey. Admitted when the window is warm and its
    /// total clears the threshold; a full reservoir evicts its smallest
    /// exemplar (counted in [`TailReservoir::dropped`]).
    pub fn offer(&mut self, journey: &Journey) {
        let total = journey.total_micros();
        let warm = self.recent.len() >= TAIL_MIN_WINDOW;
        let threshold = self.threshold_micros();
        self.recent.push_back(total);
        if self.recent.len() > TAIL_WINDOW {
            self.recent.pop_front();
        }
        if !warm || total < threshold {
            return;
        }
        let exemplar = TailExemplar {
            journey: journey.clone(),
            total_micros: total,
        };
        if self.exemplars.len() < self.capacity {
            self.exemplars.push(exemplar);
            self.admitted += 1;
            return;
        }
        // Full: keep the reservoir describing the largest tails seen.
        let (min_idx, min_total) = self
            .exemplars
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.total_micros))
            .min_by_key(|&(_, t)| t)
            .expect("capacity >= 1");
        if total > min_total {
            self.exemplars[min_idx] = exemplar;
            self.admitted += 1;
        }
        self.dropped += 1;
    }

    /// Retained exemplars, largest total first.
    pub fn exemplars(&self) -> Vec<TailExemplar> {
        let mut out = self.exemplars.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.total_micros));
        out
    }

    /// Exemplars currently retained.
    pub fn occupancy(&self) -> usize {
        self.exemplars.len()
    }

    /// Maximum exemplars retained at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exemplars ever admitted (including later-evicted ones).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Tail journeys lost because the reservoir was full (evictions and
    /// refused offers).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Folds journeys into a per-stage wait/service attribution table plus
/// a [`TailReservoir`] of exemplar journeys.
#[derive(Debug)]
pub struct CriticalPath {
    stages: BTreeMap<String, StageAcc>,
    reservoir: TailReservoir,
    journeys: u64,
    truncated: u64,
}

impl Default for CriticalPath {
    fn default() -> Self {
        CriticalPath::new()
    }
}

impl CriticalPath {
    /// An empty analyzer with the default tail reservoir.
    pub fn new() -> CriticalPath {
        CriticalPath::with_reservoir(TailReservoir::default())
    }

    /// An empty analyzer using `reservoir` for tail exemplars.
    pub fn with_reservoir(reservoir: TailReservoir) -> CriticalPath {
        CriticalPath {
            stages: BTreeMap::new(),
            reservoir,
            journeys: 0,
            truncated: 0,
        }
    }

    fn record_stage(&mut self, stage: &str, kind: StageKind, delta: u64) {
        self.stages
            .entry(stage.to_owned())
            .or_insert_with(|| StageAcc::new(kind))
            .record(delta);
    }

    /// Folds one journey into the table and offers it to the reservoir.
    /// Empty journeys (no hops captured) are ignored.
    pub fn fold(&mut self, journey: &Journey) {
        if journey.is_empty() {
            return;
        }
        self.journeys += 1;
        if journey.truncated {
            self.truncated += 1;
        }
        for leg in journey.attribution() {
            self.record_stage(leg.stage, leg.kind, leg.delta_micros);
        }
        self.reservoir.offer(journey);
    }

    /// Folds a raw hop-record window (e.g. [`TraceSink::records`]):
    /// groups records by trace and folds each group as a journey.
    ///
    /// [`TraceSink::records`]: crate::TraceSink::records
    pub fn fold_window(&mut self, records: &[HopRecord]) {
        let mut by_trace: BTreeMap<u64, Vec<HopRecord>> = BTreeMap::new();
        for r in records {
            by_trace.entry(r.trace.raw()).or_default().push(*r);
        }
        for (_, mut hops) in by_trace {
            hops.sort_by_key(|r| r.order);
            let trace = hops[0].trace;
            self.fold(&Journey {
                trace,
                hops,
                truncated: false,
            });
        }
    }

    /// Folds a cross-cell stitched journey (PR 8). Labels that match a
    /// hop name inherit that hop's stage; ward-level labels (`"claim"`,
    /// `"adopt"`, …) become their own service stages. Stitched journeys
    /// carry no hop structure the reservoir could replay, so they only
    /// feed the table.
    pub fn fold_stitched(&mut self, journey: &StitchedJourney) {
        if journey.legs.is_empty() {
            return;
        }
        self.journeys += 1;
        if journey.truncated {
            self.truncated += 1;
        }
        let mut prev: Option<u64> = None;
        for leg in &journey.legs {
            let delta = prev.map_or(0, |p| leg.at_micros.saturating_sub(p));
            prev = Some(leg.at_micros);
            let (stage, kind) = stage_for_label(&leg.label);
            self.record_stage(stage, kind, delta);
        }
    }

    /// Journeys folded so far.
    pub fn journeys(&self) -> u64 {
        self.journeys
    }

    /// Folded journeys that were marked truncated.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The tail-exemplar reservoir.
    pub fn reservoir(&self) -> &TailReservoir {
        &self.reservoir
    }

    /// The attribution table, largest total share first.
    pub fn table(&self) -> Vec<StageRow> {
        let window_total: u64 = self.stages.values().map(|a| a.total_micros).sum();
        let mut rows: Vec<StageRow> = self
            .stages
            .iter()
            .map(|(stage, acc)| {
                let mut sorted = acc.samples.clone();
                sorted.sort_unstable();
                StageRow {
                    stage: stage.clone(),
                    kind: acc.kind,
                    count: acc.count,
                    total_micros: acc.total_micros,
                    share_milli: (acc.total_micros * 1000)
                        .checked_div(window_total)
                        .unwrap_or(0),
                    p50_micros: percentile(&sorted, 500),
                    p95_micros: percentile(&sorted, 950),
                    p99_micros: percentile(&sorted, 990),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_micros
                .cmp(&a.total_micros)
                .then(a.stage.cmp(&b.stage))
        });
        rows
    }

    /// Flame-style text report: one bar per stage scaled by its share
    /// of attributed time, wait stages marked distinctly.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let rows = self.table();
        let _ = writeln!(
            out,
            "critical path — {} journeys ({} truncated), {} stages",
            self.journeys,
            self.truncated,
            rows.len()
        );
        if rows.is_empty() {
            let _ = writeln!(out, "  (no journeys folded)");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<16} {:<8} {:>8} {:>12} {:>7}  {:<40} {:>8} {:>8} {:>8}",
            "stage", "kind", "count", "total µs", "share", "", "p50", "p95", "p99"
        );
        for row in &rows {
            let bar_len = (row.share_milli as usize * 40) / 1000;
            let bar: String = std::iter::repeat_n(
                if row.kind == StageKind::Wait {
                    '='
                } else {
                    '#'
                },
                bar_len.max(usize::from(row.share_milli > 0)),
            )
            .collect();
            let _ = writeln!(
                out,
                "  {:<16} {:<8} {:>8} {:>12} {:>6}‰  {:<40} {:>8} {:>8} {:>8}",
                row.stage,
                row.kind.name(),
                row.count,
                row.total_micros,
                row.share_milli,
                bar,
                row.p50_micros,
                row.p95_micros,
                row.p99_micros
            );
        }
        let r = &self.reservoir;
        let _ = writeln!(
            out,
            "  tail: {}/{} exemplars, threshold {} µs, {} admitted, {} dropped",
            r.occupancy(),
            r.capacity(),
            r.threshold_micros(),
            r.admitted(),
            r.dropped()
        );
        for ex in r.exemplars() {
            let _ = writeln!(
                out,
                "  exemplar {} ({} µs):",
                ex.journey.trace, ex.total_micros
            );
            for leg in ex.journey.attribution() {
                let _ = writeln!(
                    out,
                    "    {:>10} µs  {:<16} {:<8} (+{} µs)",
                    leg.at_micros,
                    leg.stage,
                    leg.kind.name(),
                    leg.delta_micros
                );
            }
        }
        out
    }

    /// The table and reservoir as a JSON object.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"journeys\":{},\"truncated\":{},\"stages\":[",
            self.journeys, self.truncated
        );
        for (i, row) in self.table().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"kind\":\"{}\",\"count\":{},\"total_micros\":{},\"share_milli\":{},\"p50_micros\":{},\"p95_micros\":{},\"p99_micros\":{}}}",
                json_string(&row.stage),
                row.kind.name(),
                row.count,
                row.total_micros,
                row.share_milli,
                row.p50_micros,
                row.p95_micros,
                row.p99_micros
            );
        }
        let r = &self.reservoir;
        let _ = write!(
            out,
            "],\"tail\":{{\"threshold_micros\":{},\"occupancy\":{},\"capacity\":{},\"admitted\":{},\"dropped\":{},\"exemplars\":[",
            r.threshold_micros(),
            r.occupancy(),
            r.capacity(),
            r.admitted(),
            r.dropped()
        );
        for (i, ex) in r.exemplars().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let j = &ex.journey;
            let _ = write!(
                out,
                "{{\"trace\":\"{}\",\"total_micros\":{},\"wait_micros\":{},\"service_micros\":{},\"truncated\":{},\"legs\":[",
                j.trace,
                ex.total_micros,
                j.wait_micros(),
                j.service_micros(),
                j.truncated
            );
            for (k, leg) in j.attribution().iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"hop\":\"{}\",\"stage\":{},\"kind\":\"{}\",\"at_micros\":{},\"delta_micros\":{}}}",
                    leg.hop,
                    json_string(leg.stage),
                    leg.kind.name(),
                    leg.at_micros,
                    leg.delta_micros
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}}");
        out
    }

    /// Exports tail-reservoir health through `registry` as
    /// `smc_trace_tail_*` samples, mirroring the sink's declared-
    /// truncation pattern: exemplar loss must be visible, not silent.
    pub fn register_with(registry: &crate::Registry, profiler: &Arc<Mutex<CriticalPath>>) {
        let profiler = Arc::clone(profiler);
        registry.register_collector(move |out| {
            let p = profiler.lock();
            let r = p.reservoir();
            let mut push = |name: &str, help: &str, monotonic: bool, value: u64| {
                out.push(crate::Sample {
                    name: name.into(),
                    help: help.into(),
                    monotonic,
                    labels: vec![],
                    value,
                });
            };
            push(
                "smc_trace_tail_exemplars_total",
                "Tail journeys ever admitted to the exemplar reservoir.",
                true,
                r.admitted(),
            );
            push(
                "smc_trace_tail_exemplars_dropped_total",
                "Tail journeys lost to reservoir capacity (evictions and refusals).",
                true,
                r.dropped(),
            );
            push(
                "smc_trace_tail_reservoir_occupancy",
                "Exemplars currently retained.",
                false,
                r.occupancy() as u64,
            );
            push(
                "smc_trace_tail_threshold_micros",
                "Rolling quantile threshold for tail admission.",
                false,
                r.threshold_micros(),
            );
        });
    }
}

/// Maps a stitched-hop label onto a stage. Labels matching a local hop
/// name inherit that hop's attribution; everything else is its own
/// service stage.
fn stage_for_label(label: &str) -> (&str, StageKind) {
    use crate::trace::Hop;
    for hop in [
        Hop::Published,
        Hop::Matched,
        Hop::ProxyEnqueued,
        Hop::OutQueued,
        Hop::TxSent,
        Hop::TxRetransmit,
        Hop::RxAcked,
        Hop::WalQueued,
        Hop::WalAppended,
        Hop::Delivered,
    ] {
        if hop.name() == label {
            return hop.stage();
        }
    }
    (label, StageKind::Service)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Hop, TraceSink};
    use crate::ward::StitchedHop;
    use smc_types::TraceId;

    fn tid(n: u64) -> TraceId {
        TraceId::from_raw(n)
    }

    fn journey(trace: u64, hops: &[(Hop, u64)]) -> Journey {
        let sink = TraceSink::with_capacity(hops.len().max(1) * 2);
        for &(hop, at) in hops {
            sink.record(tid(trace), hop, at);
        }
        sink.journey(tid(trace))
    }

    #[test]
    fn single_hop_journey_folds_to_one_zero_delta_stage() {
        let mut cp = CriticalPath::new();
        cp.fold(&journey(1, &[(Hop::Published, 100)]));
        assert_eq!(cp.journeys(), 1);
        let table = cp.table();
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].stage, "publish");
        assert_eq!(table[0].count, 1);
        assert_eq!(table[0].total_micros, 0);
        assert_eq!(table[0].share_milli, 0, "a zero-time window has no shares");
    }

    #[test]
    fn retransmit_loop_accumulates_wait_legs() {
        let mut cp = CriticalPath::new();
        cp.fold(&journey(
            2,
            &[
                (Hop::Published, 0),
                (Hop::OutQueued, 10),
                (Hop::TxSent, 20),
                (Hop::TxRetransmit, 120),
                (Hop::TxRetransmit, 220),
                (Hop::TxRetransmit, 320),
                (Hop::Delivered, 330),
            ],
        ));
        let table = cp.table();
        let retrans = table.iter().find(|r| r.stage == "retransmit-wait").unwrap();
        assert_eq!(retrans.count, 3, "one leg per retransmission round");
        assert_eq!(retrans.total_micros, 300);
        assert_eq!(retrans.kind, StageKind::Wait);
        assert_eq!(
            retrans.share_milli, 909,
            "300 of 330 µs total — the loop dominates"
        );
        let wait: u64 = table
            .iter()
            .filter(|r| r.kind == StageKind::Wait)
            .map(|r| r.total_micros)
            .sum();
        let service: u64 = table
            .iter()
            .filter(|r| r.kind == StageKind::Service)
            .map(|r| r.total_micros)
            .sum();
        assert_eq!(wait + service, 330);
    }

    #[test]
    fn stitched_journey_folds_by_label() {
        let mut cp = CriticalPath::new();
        cp.fold_stitched(&StitchedJourney {
            trace: tid(5),
            legs: vec![
                StitchedHop {
                    cell: 1,
                    label: "published".into(),
                    at_micros: 0,
                },
                StitchedHop {
                    cell: 1,
                    label: "tx-sent".into(),
                    at_micros: 40,
                },
                StitchedHop {
                    cell: 2,
                    label: "claim".into(),
                    at_micros: 100,
                },
            ],
            truncated: true,
        });
        assert_eq!(cp.journeys(), 1);
        assert_eq!(cp.truncated(), 1);
        let table = cp.table();
        let tx = table.iter().find(|r| r.stage == "outbound-queue").unwrap();
        assert_eq!(tx.kind, StageKind::Wait, "hop-named labels inherit stages");
        assert_eq!(tx.total_micros, 40);
        let claim = table.iter().find(|r| r.stage == "claim").unwrap();
        assert_eq!(claim.kind, StageKind::Service);
        assert_eq!(claim.total_micros, 60);
    }

    #[test]
    fn fold_window_groups_interleaved_records_by_trace() {
        let sink = TraceSink::with_capacity(32);
        sink.record(tid(1), Hop::Published, 0);
        sink.record(tid(2), Hop::Published, 5);
        sink.record(tid(1), Hop::Delivered, 100);
        sink.record(tid(2), Hop::Delivered, 45);
        let mut cp = CriticalPath::new();
        cp.fold_window(&sink.records());
        assert_eq!(cp.journeys(), 2);
        let deliver = cp
            .table()
            .into_iter()
            .find(|r| r.stage == "deliver")
            .unwrap();
        assert_eq!(deliver.count, 2);
        assert_eq!(deliver.total_micros, 140);
    }

    #[test]
    fn reservoir_admits_only_above_rolling_threshold_and_counts_drops() {
        let mut r = TailReservoir::new(2, 900);
        // Warm-up: TAIL_MIN_WINDOW fast journeys admit nothing.
        for i in 0..TAIL_MIN_WINDOW as u64 {
            r.offer(&journey(i, &[(Hop::Published, 0), (Hop::Delivered, 10)]));
        }
        assert_eq!(r.occupancy(), 0, "warm-up admits nothing");
        assert!(r.threshold_micros() > 0);
        // A fast journey stays out; slow ones get in.
        r.offer(&journey(100, &[(Hop::Published, 0), (Hop::Delivered, 1)]));
        assert_eq!(r.occupancy(), 0);
        r.offer(&journey(101, &[(Hop::Published, 0), (Hop::Delivered, 500)]));
        r.offer(&journey(102, &[(Hop::Published, 0), (Hop::Delivered, 900)]));
        assert_eq!(r.occupancy(), 2);
        assert_eq!(r.dropped(), 0);
        // Full: a bigger tail evicts the smallest, a smaller one is
        // refused; both count as drops.
        r.offer(&journey(103, &[(Hop::Published, 0), (Hop::Delivered, 700)]));
        assert_eq!(r.occupancy(), 2);
        assert_eq!(r.dropped(), 1, "500 µs exemplar evicted by 700 µs");
        let totals: Vec<u64> = r.exemplars().iter().map(|e| e.total_micros).collect();
        assert_eq!(totals, vec![900, 700]);
        r.offer(&journey(104, &[(Hop::Published, 0), (Hop::Delivered, 600)]));
        assert_eq!(r.dropped(), 2, "a smaller tail is refused");
        assert_eq!(r.admitted(), 3);
    }

    #[test]
    fn renders_report_text_and_json() {
        let mut cp = CriticalPath::with_reservoir(TailReservoir::new(4, 500));
        for i in 0..40u64 {
            cp.fold(&journey(
                i,
                &[
                    (Hop::Published, 0),
                    (Hop::Matched, 2),
                    (Hop::OutQueued, 4),
                    (Hop::TxSent, 4 + i), // growing queue wait
                    (Hop::Delivered, 6 + i),
                ],
            ));
        }
        let text = cp.render_text();
        assert!(text.contains("critical path — 40 journeys"));
        assert!(text.contains("outbound-queue"), "{text}");
        assert!(text.contains("exemplar"), "{text}");
        let json = cp.render_json();
        assert!(json.contains("\"stages\":["));
        assert!(json.contains("\"stage\":\"outbound-queue\",\"kind\":\"wait\""));
        assert!(json.contains("\"tail\":{"));
        assert!(json.contains("\"legs\":["));
        // Shares over all stages cover (almost) the whole window.
        let shares: u64 = cp.table().iter().map(|r| r.share_milli).sum();
        assert!(
            (990..=1000).contains(&shares),
            "shares sum to ~1000‰: {shares}"
        );
    }

    #[test]
    fn tail_metrics_export_through_the_registry() {
        let registry = crate::Registry::new();
        let profiler = Arc::new(Mutex::new(CriticalPath::with_reservoir(
            TailReservoir::new(1, 500),
        )));
        CriticalPath::register_with(&registry, &profiler);
        {
            let mut p = profiler.lock();
            for i in 0..40u64 {
                p.fold(&journey(
                    i,
                    &[(Hop::Published, 0), (Hop::Delivered, 10 + i * 10)],
                ));
            }
        }
        let text = registry.render_text();
        assert!(
            text.contains("smc_trace_tail_reservoir_occupancy 1"),
            "{text}"
        );
        assert!(text.contains("smc_trace_tail_exemplars_total"));
        assert!(text.contains("smc_trace_tail_exemplars_dropped_total"));
        assert!(text.contains("smc_trace_tail_threshold_micros"));
    }
}
