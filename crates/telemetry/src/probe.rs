//! Lightweight contention and occupancy probes.
//!
//! Journeys attribute latency per event; probes attribute it per
//! *structure*: how long the bus control mutex is held, how deep a
//! proxy's outbound queue is at the moment of each enqueue, how long a
//! WAL append waits for its lock vs works. All counters are relaxed
//! atomics — a probe is two `fetch_add`s, never a lock — and the whole
//! layer sits behind the same disabled-by-default [`Tracer`] fast path
//! as hop recording, so an untraced cell pays one branch.
//!
//! [`Tracer`]: crate::Tracer

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A sum/count/max triple over one probed quantity.
#[derive(Debug, Default)]
struct ProbeSeries {
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl ProbeSeries {
    fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Shared accumulator for contention/occupancy probes.
///
/// One sink per cell, shared by the bus, its proxies and the WAL via
/// the cell's [`Tracer`](crate::Tracer). Everything is monotonic and
/// relaxed; readers see a consistent-enough snapshot for diagnostics.
#[derive(Debug, Default)]
pub struct ProbeSink {
    /// Bus control-mutex hold times (µs per critical section).
    control_hold: ProbeSeries,
    /// Proxy outbound queue depth sampled at each enqueue.
    queue_depth: ProbeSeries,
    /// WAL append lock-wait times (µs).
    wal_wait: ProbeSeries,
    /// WAL append service times (µs, lock held).
    wal_service: ProbeSeries,
}

/// Plain-value snapshot of one probe series: `(sum, count, max)`.
pub type ProbeSnapshot = (u64, u64, u64);

impl ProbeSink {
    /// A zeroed sink.
    pub fn new() -> ProbeSink {
        ProbeSink::default()
    }

    /// Records one bus control-mutex critical section of `micros`.
    pub fn control_hold(&self, micros: u64) {
        self.control_hold.record(micros);
    }

    /// Records a proxy outbound queue depth observed at enqueue.
    pub fn queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    /// Records one WAL append: `wait` µs to acquire the log lock,
    /// `service` µs of append work under it.
    pub fn wal_append(&self, wait_micros: u64, service_micros: u64) {
        self.wal_wait.record(wait_micros);
        self.wal_service.record(service_micros);
    }

    /// `(sum_micros, sections, max_micros)` of control-mutex holds.
    pub fn control_hold_snapshot(&self) -> ProbeSnapshot {
        self.control_hold.snapshot()
    }

    /// `(sum_depth, samples, max_depth)` of enqueue-time queue depths.
    pub fn queue_depth_snapshot(&self) -> ProbeSnapshot {
        self.queue_depth.snapshot()
    }

    /// `(sum_micros, appends, max_micros)` of WAL lock waits.
    pub fn wal_wait_snapshot(&self) -> ProbeSnapshot {
        self.wal_wait.snapshot()
    }

    /// `(sum_micros, appends, max_micros)` of WAL append service time.
    pub fn wal_service_snapshot(&self) -> ProbeSnapshot {
        self.wal_service.snapshot()
    }

    /// Exports every probe series through `registry` as
    /// `smc_probe_*_{sum,count,max}` samples.
    pub fn register_with(self: &Arc<Self>, registry: &crate::Registry) {
        let sink = Arc::clone(self);
        registry.register_collector(move |out| {
            let mut series = |name: &str, help: &str, snap: ProbeSnapshot, max_is_gauge: bool| {
                let (sum, count, max) = snap;
                let mut push = |suffix: &str, monotonic: bool, value: u64| {
                    out.push(crate::Sample {
                        name: format!("{name}_{suffix}"),
                        help: help.to_owned(),
                        monotonic,
                        labels: vec![],
                        value,
                    });
                };
                push("sum", true, sum);
                push("count", true, count);
                push("max", !max_is_gauge, max);
            };
            series(
                "smc_probe_control_hold_micros",
                "Bus control-mutex hold time.",
                sink.control_hold_snapshot(),
                false,
            );
            series(
                "smc_probe_proxy_queue_depth",
                "Proxy outbound queue depth at enqueue.",
                sink.queue_depth_snapshot(),
                true,
            );
            series(
                "smc_probe_wal_append_wait_micros",
                "WAL append lock-wait time.",
                sink.wal_wait_snapshot(),
                false,
            );
            series(
                "smc_probe_wal_append_service_micros",
                "WAL append service time under the log lock.",
                sink.wal_service_snapshot(),
                false,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulate_and_track_max() {
        let p = ProbeSink::new();
        p.control_hold(5);
        p.control_hold(11);
        p.control_hold(3);
        assert_eq!(p.control_hold_snapshot(), (19, 3, 11));
        p.queue_depth(2);
        p.queue_depth(7);
        assert_eq!(p.queue_depth_snapshot(), (9, 2, 7));
        p.wal_append(4, 20);
        assert_eq!(p.wal_wait_snapshot(), (4, 1, 4));
        assert_eq!(p.wal_service_snapshot(), (20, 1, 20));
    }

    #[test]
    fn probes_export_through_the_registry() {
        let p = Arc::new(ProbeSink::new());
        let registry = crate::Registry::new();
        p.register_with(&registry);
        p.control_hold(9);
        p.queue_depth(4);
        let text = registry.render_text();
        assert!(text.contains("smc_probe_control_hold_micros_sum 9"));
        assert!(text.contains("smc_probe_control_hold_micros_count 1"));
        assert!(text.contains("smc_probe_control_hold_micros_max 9"));
        assert!(text.contains("smc_probe_proxy_queue_depth_max 4"));
        assert!(text.contains("smc_probe_wal_append_wait_micros_count 0"));
    }
}
