//! The metrics registry: named counters, gauges and log₂-bucketed
//! histograms with Prometheus-style text exposition.
//!
//! Instruments are cheap atomic handles; the registry remembers what was
//! registered (name, help, labels) and renders everything on demand.
//! Components that already keep their own atomic counters (the bus, the
//! WAL, discovery) plug in as *collectors* — closures sampled at render
//! time — so migration does not require rewriting their hot paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use smc_types::TraceId;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is currently lower (high-water mark).
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: `le 1, 2, 4, …, 2³¹` plus `+Inf`.
const BUCKETS: usize = 33;

/// A histogram over `u64` observations with log₂ bucket boundaries.
///
/// Bucket `i < 32` counts observations `≤ 2^i`; the last bucket is
/// `+Inf`. Boundaries are fixed, so merging and rendering need no
/// configuration and observation is one atomic increment.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// An OpenMetrics-style exemplar: the trace of the observation that
/// currently holds a bucket's maximum, so a p99 number links back to a
/// replayable journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The traced observation's id.
    pub trace: TraceId,
    /// The observed value.
    pub value: u64,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    /// Per-bucket exemplar slots; only written by
    /// [`Histogram::observe_traced`], so the plain `observe` hot path
    /// never takes this lock.
    exemplars: Mutex<[Option<Exemplar>; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplars: Mutex::new([None; BUCKETS]),
        }))
    }
}

fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The upper boundary of bucket `i`, as rendered in the `le` label.
fn bucket_bound(i: usize) -> String {
    if i == BUCKETS - 1 {
        "+Inf".to_owned()
    } else {
        (1u64 << i).to_string()
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation and, when `trace` identifies it, keeps
    /// it as the bucket's exemplar if it is the largest observation the
    /// bucket has seen — rendered OpenMetrics-style by
    /// [`Registry::render_text`] and resolvable back to a journey.
    pub fn observe_traced(&self, v: u64, trace: TraceId) {
        self.observe(v);
        if trace.is_some() {
            let slot = &mut self.0.exemplars.lock()[bucket_index(v)];
            if slot.is_none_or(|e| v >= e.value) {
                *slot = Some(Exemplar { trace, value: v });
            }
        }
    }

    /// The exemplars currently held, as `(bucket index, exemplar)`.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        self.0
            .exemplars
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The upper bucket boundary below which at least `q` (0..=1) of the
    /// observations fall — a bucket-resolution quantile estimate.
    /// Returns `u64::MAX` when the quantile lands in the `+Inf` bucket,
    /// `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                };
            }
        }
        u64::MAX
    }

    fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.0
            .buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    inst: Instrument,
}

/// A sample produced by a collector at render time.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// `true` for counters, `false` for gauges.
    pub monotonic: bool,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: u64,
}

type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// A registry of named instruments, rendered as Prometheus-style text.
#[derive(Clone, Default)]
pub struct Registry(Arc<RegistryInner>);

#[derive(Default)]
struct RegistryInner {
    entries: Mutex<Vec<Entry>>,
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("entries", &self.0.entries.lock().len())
            .field("collectors", &self.0.collectors.lock().len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let mut entries = self.0.entries.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.inst.clone();
        }
        let inst = make();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels,
            inst: inst.clone(),
        });
        inst
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, || {
            Instrument::Counter(Counter::default())
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Histogram::default())
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Installs a collector: a closure sampled at every
    /// [`Registry::render_text`], for components that keep their own
    /// counters (the bus, the WAL, discovery).
    pub fn register_collector(&self, f: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        self.0.collectors.lock().push(Box::new(f));
    }

    /// Samples every instrument and collector into a flat list — the
    /// structured twin of [`Registry::render_text`], consumed by readers
    /// that analyse the registry programmatically (the health monitor)
    /// rather than scraping text. Histograms contribute their `_count`
    /// and `_sum` series; bucket detail stays in the text exposition.
    pub fn gather(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for e in self.0.entries.lock().iter() {
            match &e.inst {
                Instrument::Counter(c) => out.push(Sample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    monotonic: true,
                    labels: e.labels.clone(),
                    value: c.get(),
                }),
                Instrument::Gauge(g) => out.push(Sample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    monotonic: false,
                    labels: e.labels.clone(),
                    value: g.get(),
                }),
                Instrument::Histogram(h) => {
                    out.push(Sample {
                        name: format!("{}_count", e.name),
                        help: e.help.clone(),
                        monotonic: true,
                        labels: e.labels.clone(),
                        value: h.count(),
                    });
                    out.push(Sample {
                        name: format!("{}_sum", e.name),
                        help: e.help.clone(),
                        monotonic: true,
                        labels: e.labels.clone(),
                        value: h.sum(),
                    });
                }
            }
        }
        for c in self.0.collectors.lock().iter() {
            c(&mut out);
        }
        out
    }

    /// Renders every instrument and collector sample in the Prometheus
    /// text exposition format (`# HELP`/`# TYPE`, labelled series,
    /// cumulative histogram buckets ending in `+Inf`).
    pub fn render_text(&self) -> String {
        // name → (help, kind, series); BTreeMap for stable output.
        let mut families: BTreeMap<String, (String, Kind, Vec<String>)> = BTreeMap::new();
        let add_series = |families: &mut BTreeMap<String, (String, Kind, Vec<String>)>,
                          name: &str,
                          help: &str,
                          kind: Kind,
                          line: String| {
            let fam = families
                .entry(name.to_owned())
                .or_insert_with(|| (help.to_owned(), kind, Vec::new()));
            fam.2.push(line);
        };

        for e in self.0.entries.lock().iter() {
            match &e.inst {
                Instrument::Counter(c) => add_series(
                    &mut families,
                    &e.name,
                    &e.help,
                    Kind::Counter,
                    format!("{}{} {}", e.name, render_labels(&e.labels, None), c.get()),
                ),
                Instrument::Gauge(g) => add_series(
                    &mut families,
                    &e.name,
                    &e.help,
                    Kind::Gauge,
                    format!("{}{} {}", e.name, render_labels(&e.labels, None), g.get()),
                ),
                Instrument::Histogram(h) => {
                    let cumulative = h.cumulative();
                    let exemplars = h.0.exemplars.lock();
                    let mut lines = Vec::with_capacity(BUCKETS + 2);
                    for (i, c) in cumulative.iter().enumerate() {
                        let exemplar = exemplars[i]
                            .map(|ex| format!(" # {{trace_id=\"{}\"}} {}", ex.trace, ex.value))
                            .unwrap_or_default();
                        lines.push(format!(
                            "{}_bucket{} {}{exemplar}",
                            e.name,
                            render_labels(&e.labels, Some(&bucket_bound(i))),
                            c
                        ));
                    }
                    lines.push(format!(
                        "{}_sum{} {}",
                        e.name,
                        render_labels(&e.labels, None),
                        h.sum()
                    ));
                    lines.push(format!(
                        "{}_count{} {}",
                        e.name,
                        render_labels(&e.labels, None),
                        h.count()
                    ));
                    for line in lines {
                        add_series(&mut families, &e.name, &e.help, Kind::Histogram, line);
                    }
                }
            }
        }

        let mut samples = Vec::new();
        for c in self.0.collectors.lock().iter() {
            c(&mut samples);
        }
        for s in samples {
            let kind = if s.monotonic {
                Kind::Counter
            } else {
                Kind::Gauge
            };
            add_series(
                &mut families,
                &s.name,
                &s.help,
                kind,
                format!("{}{} {}", s.name, render_labels(&s.labels, None), s.value),
            );
        }

        let mut out = String::new();
        for (name, (help, kind, series)) in families {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
            out.push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
            for line in series {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Every exemplar currently held by this registry's histograms —
    /// the lookup `/journey` uses to say which latency buckets cite a
    /// given trace as their worst case.
    pub fn exemplars(&self) -> Vec<ExemplarEntry> {
        let mut out = Vec::new();
        for e in self.0.entries.lock().iter() {
            if let Instrument::Histogram(h) = &e.inst {
                for (bucket, ex) in h.exemplars() {
                    out.push(ExemplarEntry {
                        metric: e.name.clone(),
                        labels: e.labels.clone(),
                        le: bucket_bound(bucket),
                        trace: ex.trace,
                        value: ex.value,
                    });
                }
            }
        }
        out
    }
}

/// One histogram exemplar, located by metric and bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarEntry {
    /// Histogram name.
    pub metric: String,
    /// The histogram's label pairs.
    pub labels: Vec<(String, String)>,
    /// The bucket's `le` bound, as rendered.
    pub le: String,
    /// The exemplar observation's trace.
    pub trace: TraceId,
    /// The exemplar observation's value.
    pub value: u64,
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{bound}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One series parsed back out of exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Series name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs, in written order (including `le` on buckets).
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

/// Parses exposition text back into samples — the inverse of
/// [`Registry::render_text`] for the subset this crate emits. Used by
/// the golden round-trip tests; returns `None` on any malformed line.
pub fn parse_text(text: &str) -> Option<Vec<ParsedSample>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip an OpenMetrics exemplar suffix (` # {...} <value>`);
        // the series value precedes it.
        let line = line.split_once(" # {").map_or(line, |(kept, _)| kept);
        let (series, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}')?;
                let mut labels = Vec::new();
                if !body.is_empty() {
                    for pair in split_label_pairs(body)? {
                        let (k, v) = pair.split_once('=')?;
                        let v = v.strip_prefix('"')?.strip_suffix('"')?;
                        labels.push((k.to_owned(), unescape_label(v)?));
                    }
                }
                (name.to_owned(), labels)
            }
        };
        out.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Some(out)
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Option<Vec<&str>> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return None;
    }
    parts.push(&body[start..]);
    Some(parts)
}

fn unescape_label(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(ch);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_and_parse_back() {
        let r = Registry::new();
        let c = r.counter_with("smc_events_published_total", "Events accepted.", &[]);
        c.add(42);
        let g = r.gauge_with(
            "smc_queue_depth",
            "Proxy queue depth.",
            &[("member", "a\"b")],
        );
        g.set(7);
        let text = r.render_text();
        assert!(text.contains("# TYPE smc_events_published_total counter"));
        assert!(text.contains("# TYPE smc_queue_depth gauge"));
        let parsed = parse_text(&text).expect("parse");
        let c_back = parsed
            .iter()
            .find(|s| s.name == "smc_events_published_total")
            .unwrap();
        assert_eq!(c_back.value, 42.0);
        assert!(c_back.labels.is_empty());
        let g_back = parsed.iter().find(|s| s.name == "smc_queue_depth").unwrap();
        assert_eq!(g_back.value, 7.0);
        assert_eq!(
            g_back.labels,
            vec![("member".to_owned(), "a\"b".to_owned())]
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let r = Registry::new();
        let h = r.histogram("smc_hop_micros", "Per-hop latency.");
        for v in [1u64, 2, 3, 100, 1_000_000_000_000] {
            h.observe(v);
        }
        let text = r.render_text();
        let parsed = parse_text(&text).expect("parse");
        let buckets: Vec<&ParsedSample> = parsed
            .iter()
            .filter(|s| s.name == "smc_hop_micros_bucket")
            .collect();
        assert_eq!(buckets.len(), BUCKETS);
        // Cumulative: never decreasing.
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        // Last bucket is +Inf and holds every observation.
        let last = buckets.last().unwrap();
        assert_eq!(
            last.labels.last().unwrap(),
            &("le".to_owned(), "+Inf".to_owned())
        );
        assert_eq!(last.value, 5.0);
        let count = parsed
            .iter()
            .find(|s| s.name == "smc_hop_micros_count")
            .unwrap();
        assert_eq!(count.value, 5.0);
        let sum = parsed
            .iter()
            .find(|s| s.name == "smc_hop_micros_sum")
            .unwrap();
        assert_eq!(sum.value, 1_000_000_000_106.0);
    }

    #[test]
    fn exemplars_keep_the_bucket_max_and_render_openmetrics_style() {
        use smc_types::ServiceId;
        let r = Registry::new();
        let h = r.histogram("smc_hop_micros", "Per-hop latency.");
        let fast = TraceId::for_event(ServiceId::from_raw(1), 1);
        let slow = TraceId::for_event(ServiceId::from_raw(1), 2);
        h.observe_traced(900, fast); // bucket le=1024
        h.observe_traced(1000, slow); // same bucket, larger → wins
        h.observe_traced(800, fast); // smaller → does not displace
        h.observe(1020); // untraced → never an exemplar
        let exemplars = h.exemplars();
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].0, bucket_index(1000));
        assert_eq!(
            exemplars[0].1,
            Exemplar {
                trace: slow,
                value: 1000
            }
        );

        let text = r.render_text();
        let line = text
            .lines()
            .find(|l| l.contains("le=\"1024\""))
            .expect("bucket line");
        assert!(
            line.ends_with(&format!(" # {{trace_id=\"{slow}\"}} 1000")),
            "got: {line}"
        );
        // Untraced observations keep their lines exemplar-free.
        let inf = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf line");
        assert!(!inf.contains('#'), "got: {inf}");

        // The exposition still parses, exemplars stripped.
        let parsed = parse_text(&text).expect("parse with exemplars");
        let bucket = parsed
            .iter()
            .find(|s| {
                s.name == "smc_hop_micros_bucket"
                    && s.labels.contains(&("le".to_owned(), "1024".to_owned()))
            })
            .unwrap();
        assert_eq!(bucket.value, 4.0, "all four observations are <= 1024");

        // And the registry-level lookup locates the journey.
        let entries = r.exemplars();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].metric, "smc_hop_micros");
        assert_eq!(entries[0].le, "1024");
        assert_eq!(entries[0].trace, slow);
    }

    #[test]
    fn observe_traced_with_none_trace_records_no_exemplar() {
        let h = Histogram::default();
        h.observe_traced(5, TraceId::NONE);
        assert_eq!(h.count(), 1);
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(3); // bucket le=4
        }
        for _ in 0..10 {
            h.observe(1000); // bucket le=1024
        }
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.95), 1024);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero_not_a_bound() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let h = Histogram::default();
        for v in [3u64, 3, 1000] {
            h.observe(v);
        }
        // Below 0 clamps to 0 → the first populated bucket.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(-1.0), 4);
        // Above 1 clamps to 1 → the last populated bucket.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(2.0), 1024);
        // NaN never panics and returns a populated bound.
        let nan = h.quantile(f64::NAN);
        assert!(nan == 4 || nan == 1024);
    }

    #[test]
    fn gather_returns_entries_and_collector_samples() {
        let r = Registry::new();
        r.counter("g_total", "A counter.").add(3);
        r.gauge_with("g_depth", "A gauge.", &[("q", "a")]).set(9);
        let h = r.histogram("g_lat", "A histogram.");
        h.observe(5);
        h.observe(7);
        r.register_collector(|out| {
            out.push(Sample {
                name: "g_ext".into(),
                help: "External.".into(),
                monotonic: true,
                labels: vec![],
                value: 1,
            });
        });
        let samples = r.gather();
        let find = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("g_total").value, 3);
        assert!(find("g_total").monotonic);
        assert_eq!(find("g_depth").value, 9);
        assert!(!find("g_depth").monotonic);
        assert_eq!(find("g_lat_count").value, 2);
        assert_eq!(find("g_lat_sum").value, 12);
        assert_eq!(find("g_ext").value, 1);
    }

    #[test]
    fn same_name_and_labels_return_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("c", "help");
        let b = r.counter("c", "help");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Different labels are a different series.
        let c = r.counter_with("c", "help", &[("k", "v")]);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn collectors_are_sampled_at_render_time() {
        let r = Registry::new();
        let source = Arc::new(AtomicU64::new(5));
        let s2 = Arc::clone(&source);
        r.register_collector(move |out| {
            out.push(Sample {
                name: "external_total".into(),
                help: "From a component's own atomics.".into(),
                monotonic: true,
                labels: vec![],
                value: s2.load(Ordering::Relaxed),
            });
        });
        assert!(r.render_text().contains("external_total 5"));
        source.store(9, Ordering::Relaxed);
        assert!(r.render_text().contains("external_total 9"));
    }
}
