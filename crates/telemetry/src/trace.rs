//! Causal event tracing: hop records, the ring-buffer sink and the
//! [`Tracer`] handle components carry.
//!
//! A hop is one observable step of an event's life. Components record
//! hops against the event's [`TraceId`]; the sink keeps the most recent
//! `capacity` records (overwriting the oldest — tracing must never block
//! or grow without bound) and can reassemble any event's journey on
//! demand.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use smc_types::{SharedClock, TraceId};

/// One observable step in an event's journey through the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// The event entered the system (stamped at the publisher or bus).
    Published,
    /// A publisher-side coalescing buffer released the event to the bus
    /// (the dequeue half of the batching wait pair — the leg from
    /// [`Hop::Published`] to here is pure linger in the batch buffer).
    BatchQueued,
    /// The bus's matcher selected at least one subscriber.
    Matched,
    /// A cell-side proxy queued the event for downlink to its device.
    ProxyEnqueued,
    /// The reliable channel accepted the message into its outbound
    /// queue (the enqueue half of the outbound wait/service pair — the
    /// leg from here to [`Hop::TxSent`] is pure queue wait).
    OutQueued,
    /// The reliable channel put the message's fragments on the wire.
    TxSent,
    /// The reliable channel re-sent unacked fragments (one hop per
    /// retransmission round).
    TxRetransmit,
    /// The far side acknowledged every fragment of the message.
    RxAcked,
    /// The message entered the durability path (the enqueue half of the
    /// WAL wait/service pair — the leg from here to
    /// [`Hop::WalAppended`] is append work).
    WalQueued,
    /// The message was made durable in the write-ahead log.
    WalAppended,
    /// The event reached its subscriber.
    Delivered,
    /// The event left the system without being delivered.
    Dropped {
        /// Why (`"unmatched"`, `"expired"`, `"policy-deny"`, …).
        reason: &'static str,
    },
}

impl Hop {
    /// Stable short name (used in journeys and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            Hop::Published => "published",
            Hop::BatchQueued => "batch-queued",
            Hop::Matched => "matched",
            Hop::ProxyEnqueued => "proxy-enqueued",
            Hop::OutQueued => "out-queued",
            Hop::TxSent => "tx-sent",
            Hop::TxRetransmit => "tx-retransmit",
            Hop::RxAcked => "rx-acked",
            Hop::WalQueued => "wal-queued",
            Hop::WalAppended => "wal-appended",
            Hop::Delivered => "delivered",
            Hop::Dropped { .. } => "dropped",
        }
    }

    /// The pipeline stage a leg *arriving* at this hop belongs to, and
    /// whether that leg is queue wait or service work.
    ///
    /// The classification is static per hop kind: the time between two
    /// consecutive hops is attributed to whatever the event was doing
    /// *until* the later hop fired. Enqueue hops ([`Hop::OutQueued`],
    /// [`Hop::WalQueued`], [`Hop::ProxyEnqueued`]) close a service leg;
    /// the dequeue hops that pair with them ([`Hop::TxSent`],
    /// [`Hop::TxRetransmit`]) close a wait leg. Every hop maps to
    /// exactly one stage, so a journey's wait + service time always sums
    /// to its end-to-end latency.
    pub fn stage(&self) -> (&'static str, StageKind) {
        match self {
            Hop::Published => ("publish", StageKind::Service),
            Hop::BatchQueued => ("batch-queue", StageKind::Wait),
            Hop::Matched => ("match", StageKind::Service),
            Hop::ProxyEnqueued => ("fan-out", StageKind::Service),
            Hop::OutQueued => ("enqueue", StageKind::Service),
            Hop::TxSent => ("outbound-queue", StageKind::Wait),
            Hop::TxRetransmit => ("retransmit-wait", StageKind::Wait),
            Hop::RxAcked => ("ack", StageKind::Service),
            Hop::WalQueued => ("enqueue", StageKind::Service),
            Hop::WalAppended => ("wal-append", StageKind::Service),
            Hop::Delivered => ("deliver", StageKind::Service),
            Hop::Dropped { .. } => ("drop", StageKind::Service),
        }
    }
}

/// Whether a journey leg was queue wait or service work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// The event sat in a queue (outbound queue, retransmit timer).
    Wait,
    /// A component actively worked on the event.
    Service,
}

impl StageKind {
    /// Stable short name (`"wait"` / `"service"`).
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Wait => "wait",
            StageKind::Service => "service",
        }
    }
}

/// One journey leg with its stage attribution: the time spent *reaching*
/// `hop` from the previous hop, classified as queue wait or service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegAttribution {
    /// The hop that closed this leg.
    pub hop: Hop,
    /// Stage name from [`Hop::stage`].
    pub stage: &'static str,
    /// Wait or service.
    pub kind: StageKind,
    /// When the hop fired (µs on the tracer's clock).
    pub at_micros: u64,
    /// Time since the previous hop (0 for the first hop).
    pub delta_micros: u64,
}

impl std::fmt::Display for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hop::Dropped { reason } => write!(f, "dropped({reason})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A timestamped hop, as stored in the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Which event this hop belongs to.
    pub trace: TraceId,
    /// What happened.
    pub hop: Hop,
    /// When (microseconds on the recording [`Tracer`]'s clock).
    pub at_micros: u64,
    /// Global insertion index — total order over the sink's lifetime,
    /// ties on `at_micros` resolve by it.
    pub order: u64,
}

/// Slots per lazily-initialized ring segment.
const SEGMENT_SLOTS: usize = 1024;

type Segment = Box<[Mutex<Option<HopRecord>>]>;

/// A bounded, lock-light ring buffer of [`HopRecord`]s.
///
/// Writers claim a slot with one atomic increment and hold only that
/// slot's mutex while storing — concurrent writers touch different
/// slots and never contend. When the ring wraps, the oldest records are
/// overwritten ([`TraceSink::overwritten`] counts them); queries see the
/// most recent `capacity` hops.
///
/// Slots are allocated in [`SEGMENT_SLOTS`]-sized segments on first
/// touch, so creating a large sink is cheap and a lightly-used one never
/// pays for its full capacity.
#[derive(Debug)]
pub struct TraceSink {
    segments: Vec<std::sync::OnceLock<Segment>>,
    capacity: usize,
    cursor: AtomicU64,
    dropped: AtomicU64,
    /// Raw trace ids that lost at least one record to ring wrap-around,
    /// so [`TraceSink::journey`] can report truncation explicitly
    /// instead of returning a silently shortened leg list.
    evicted: Mutex<HashSet<u64>>,
    truncated_journeys: AtomicU64,
    /// Set when `evicted` hit [`EVICTED_TRACES_CAP`] and was cleared;
    /// from then on every journey in a wrapped sink is conservatively
    /// reported truncated.
    evicted_saturated: AtomicBool,
}

/// Bound on the evicted-trace set — above this the accounting degrades
/// to "assume truncated" rather than growing without limit.
const EVICTED_TRACES_CAP: usize = 1 << 20;

/// Default ring capacity (records, not events — a traced event typically
/// contributes 4–8 hops).
pub const DEFAULT_SINK_CAPACITY: usize = 65_536;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_SINK_CAPACITY)
    }
}

impl TraceSink {
    /// A sink holding the most recent `capacity` hop records.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        let capacity = capacity.max(1);
        let segments = capacity.div_ceil(SEGMENT_SLOTS);
        TraceSink {
            segments: (0..segments).map(|_| std::sync::OnceLock::new()).collect(),
            capacity,
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: Mutex::new(HashSet::new()),
            truncated_journeys: AtomicU64::new(0),
            evicted_saturated: AtomicBool::new(false),
        }
    }

    fn segment_len(&self, seg: usize) -> usize {
        (self.capacity - seg * SEGMENT_SLOTS).min(SEGMENT_SLOTS)
    }

    fn slot(&self, index: usize) -> &Mutex<Option<HopRecord>> {
        let seg = index / SEGMENT_SLOTS;
        let segment = self.segments[seg].get_or_init(|| {
            (0..self.segment_len(seg))
                .map(|_| Mutex::new(None))
                .collect()
        });
        &segment[index % SEGMENT_SLOTS]
    }

    /// Appends one record (overwriting the oldest when full).
    pub fn record(&self, trace: TraceId, hop: Hop, at_micros: u64) {
        let order = self.cursor.fetch_add(1, Ordering::Relaxed);
        if order >= self.capacity as u64 {
            // This write evicts the record `capacity` slots behind it.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let index = (order % self.capacity as u64) as usize;
        let evicted = self.slot(index).lock().replace(HopRecord {
            trace,
            hop,
            at_micros,
            order,
        });
        if let Some(prev) = evicted {
            // The overwritten record's journey is now incomplete; mark
            // its trace so journey() can say so instead of silently
            // returning a shortened leg list.
            let mut set = self.evicted.lock();
            if set.insert(prev.trace.raw()) {
                self.truncated_journeys.fetch_add(1, Ordering::Relaxed);
            }
            if set.len() > EVICTED_TRACES_CAP {
                set.clear();
                self.evicted_saturated.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever appended.
    pub fn appended(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records lost to ring wrap-around (counted as each overwrite
    /// happens, not derived from the cursor).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.appended().saturating_sub(self.capacity as u64)
    }

    /// Distinct traces that have lost at least one record to ring
    /// wrap-around — journeys that would read incomplete.
    pub fn truncated_journeys(&self) -> u64 {
        self.truncated_journeys.load(Ordering::Relaxed)
    }

    /// Whether `trace`'s journey is known (or, past the accounting
    /// bound, assumed) to have lost records to wrap-around.
    pub fn is_truncated(&self, trace: TraceId) -> bool {
        if self.evicted_saturated.load(Ordering::Relaxed) && self.overwritten() > 0 {
            return true;
        }
        self.evicted.lock().contains(&trace.raw())
    }

    /// Exports the sink's own counters through `registry` as a
    /// collector: `smc_trace_hops_appended_total` and
    /// `smc_trace_dropped_hops_total` (hops silently lost to ring
    /// wrap-around — nonzero means journeys may be incomplete and the
    /// sink capacity should grow).
    pub fn register_with(self: &Arc<Self>, registry: &crate::Registry) {
        let sink = Arc::clone(self);
        registry.register_collector(move |out| {
            out.push(crate::Sample {
                name: "smc_trace_hops_appended_total".into(),
                help: "Hop records appended to the trace sink.".into(),
                monotonic: true,
                labels: vec![],
                value: sink.appended(),
            });
            out.push(crate::Sample {
                name: "smc_trace_dropped_hops_total".into(),
                help: "Hop records lost to trace-ring wrap-around.".into(),
                monotonic: true,
                labels: vec![],
                value: sink.dropped(),
            });
            out.push(crate::Sample {
                name: "smc_trace_truncated_journeys_total".into(),
                help: "Distinct traces whose journeys lost records to ring wrap-around.".into(),
                monotonic: true,
                labels: vec![],
                value: sink.truncated_journeys(),
            });
        });
    }

    fn collect_matching(&self, mut keep: impl FnMut(&HopRecord) -> bool) -> Vec<HopRecord> {
        let mut out = Vec::new();
        for seg in &self.segments {
            // Untouched segments hold no records by construction.
            if let Some(slots) = seg.get() {
                out.extend(slots.iter().filter_map(|s| *s.lock()).filter(&mut keep));
            }
        }
        out.sort_by_key(|r| r.order);
        out
    }

    /// A snapshot of every live record, in insertion order.
    pub fn records(&self) -> Vec<HopRecord> {
        self.collect_matching(|_| true)
    }

    /// Reassembles one event's hop-by-hop journey.
    pub fn journey(&self, trace: TraceId) -> Journey {
        let hops = self.collect_matching(|r| r.trace == trace);
        Journey {
            trace,
            hops,
            truncated: self.is_truncated(trace),
        }
    }
}

/// One event's reassembled journey: its hops in order, with per-hop
/// latencies derivable from the timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    /// The event's trace id.
    pub trace: TraceId,
    /// The hops recorded for it, in insertion order.
    pub hops: Vec<HopRecord>,
    /// `true` when the ring overwrote at least one of this trace's
    /// records — the leg list below is missing its oldest steps.
    pub truncated: bool,
}

impl Journey {
    /// Whether any hops were captured (the ring may have overwritten an
    /// old event's records).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// `(hop, at_micros, delta_micros_from_previous_hop)` triples.
    pub fn legs(&self) -> Vec<(Hop, u64, u64)> {
        let mut prev: Option<u64> = None;
        self.hops
            .iter()
            .map(|r| {
                let delta = prev.map_or(0, |p| r.at_micros.saturating_sub(p));
                prev = Some(r.at_micros);
                (r.hop, r.at_micros, delta)
            })
            .collect()
    }

    /// Every leg with its queue-wait / service classification.
    ///
    /// Each leg's delta is attributed to exactly one stage (see
    /// [`Hop::stage`]), so summing the wait legs and the service legs
    /// reconstructs the journey's end-to-end latency exactly.
    pub fn attribution(&self) -> Vec<LegAttribution> {
        self.legs()
            .into_iter()
            .map(|(hop, at_micros, delta_micros)| {
                let (stage, kind) = hop.stage();
                LegAttribution {
                    hop,
                    stage,
                    kind,
                    at_micros,
                    delta_micros,
                }
            })
            .collect()
    }

    /// Total time spent in queue-wait legs.
    pub fn wait_micros(&self) -> u64 {
        self.attribution()
            .iter()
            .filter(|l| l.kind == StageKind::Wait)
            .map(|l| l.delta_micros)
            .sum()
    }

    /// Total time spent in service legs.
    pub fn service_micros(&self) -> u64 {
        self.attribution()
            .iter()
            .filter(|l| l.kind == StageKind::Service)
            .map(|l| l.delta_micros)
            .sum()
    }

    /// End-to-end latency: last hop minus first hop.
    pub fn total_micros(&self) -> u64 {
        match (self.hops.first(), self.hops.last()) {
            (Some(first), Some(last)) => last.at_micros.saturating_sub(first.at_micros),
            _ => 0,
        }
    }
}

impl std::fmt::Display for Journey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "journey {}:", self.trace)?;
        if self.hops.is_empty() {
            return writeln!(f, "  (no hops captured — ring overwrote or never traced)");
        }
        if self.truncated {
            writeln!(f, "  (truncated — the ring overwrote earlier hops)")?;
        }
        for (hop, at, delta) in self.legs() {
            writeln!(f, "  {at:>12} µs  {hop:<20} (+{delta} µs)")?;
        }
        Ok(())
    }
}

/// The handle instrumented components carry.
///
/// Cheap to clone; the disabled tracer (the default) records nothing and
/// costs one branch per hop, which is what keeps the untraced path's
/// overhead negligible.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

struct TracerInner {
    sink: Arc<TraceSink>,
    clock: SharedClock,
    /// Contention/occupancy probes; `None` keeps probe calls at the
    /// same one-branch cost as hop recording on a disabled tracer.
    probes: Option<Arc<crate::ProbeSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("capacity", &inner.sink.capacity())
                .field("appended", &inner.sink.appended())
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A tracer recording into `sink`, timestamping from `clock`.
    pub fn new(sink: Arc<TraceSink>, clock: SharedClock) -> Tracer {
        Tracer(Some(Arc::new(TracerInner {
            sink,
            clock,
            probes: None,
        })))
    }

    /// A tracer that additionally feeds contention/occupancy probes
    /// into `probes` (see [`ProbeSink`](crate::ProbeSink)).
    pub fn with_probes(
        sink: Arc<TraceSink>,
        clock: SharedClock,
        probes: Arc<crate::ProbeSink>,
    ) -> Tracer {
        Tracer(Some(Arc::new(TracerInner {
            sink,
            clock,
            probes: Some(probes),
        })))
    }

    /// The no-op tracer (also `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// Whether hops are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a hop for `trace` now. No-op when disabled or when
    /// `trace` is [`TraceId::NONE`] (an untraced event).
    pub fn record(&self, trace: TraceId, hop: Hop) {
        if let Some(inner) = &self.0 {
            if trace.is_some() {
                inner.sink.record(trace, hop, inner.clock.now_micros());
            }
        }
    }

    /// The sink this tracer writes to, if enabled.
    pub fn sink(&self) -> Option<&Arc<TraceSink>> {
        self.0.as_ref().map(|i| &i.sink)
    }

    /// The probe sink this tracer feeds, if probes are enabled.
    pub fn probes(&self) -> Option<&Arc<crate::ProbeSink>> {
        self.0.as_ref().and_then(|i| i.probes.as_ref())
    }

    /// Whether contention/occupancy probes are being recorded.
    pub fn probes_enabled(&self) -> bool {
        self.probes().is_some()
    }

    /// A probe timestamp, or `None` when probes are off — one branch on
    /// the disabled path, no clock read.
    pub fn probe_start(&self) -> Option<u64> {
        match &self.0 {
            Some(inner) if inner.probes.is_some() => Some(inner.clock.now_micros()),
            _ => None,
        }
    }

    /// Closes a control-mutex hold-time measurement opened by
    /// [`Tracer::probe_start`]. No-op when probes are off.
    pub fn probe_control_hold(&self, started: Option<u64>) {
        if let (Some(inner), Some(t0)) = (&self.0, started) {
            if let Some(probes) = &inner.probes {
                probes.control_hold(inner.clock.now_micros().saturating_sub(t0));
            }
        }
    }

    /// Records a proxy queue depth observed at enqueue. No-op when
    /// probes are off.
    pub fn probe_queue_depth(&self, depth: u64) {
        if let Some(inner) = &self.0 {
            if let Some(probes) = &inner.probes {
                probes.queue_depth(depth);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_types::{ManualClock, ServiceId};

    fn tid(n: u64) -> TraceId {
        TraceId::from_raw(n)
    }

    #[test]
    fn journey_reassembles_in_order_with_deltas() {
        let sink = TraceSink::with_capacity(16);
        sink.record(tid(7), Hop::Published, 100);
        sink.record(tid(8), Hop::Published, 150);
        sink.record(tid(7), Hop::Matched, 130);
        sink.record(tid(7), Hop::Delivered, 400);
        let j = sink.journey(tid(7));
        assert_eq!(j.hops.len(), 3);
        assert_eq!(
            j.legs()
                .iter()
                .map(|(h, _, d)| (h.name(), *d))
                .collect::<Vec<_>>(),
            vec![("published", 0), ("matched", 30), ("delivered", 270)]
        );
        assert!(j.to_string().contains("delivered"));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_losses() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10u64 {
            sink.record(tid(1), Hop::TxSent, i);
        }
        assert_eq!(sink.appended(), 10);
        assert_eq!(sink.overwritten(), 6);
        assert_eq!(sink.dropped(), 6);
        let records = sink.records();
        assert_eq!(records.len(), 4);
        // The survivors are the four most recent.
        assert_eq!(
            records.iter().map(|r| r.at_micros).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn journey_at_exactly_capacity_is_not_truncated() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..8u64 {
            sink.record(tid(1), Hop::TxSent, i);
        }
        let j = sink.journey(tid(1));
        assert_eq!(j.hops.len(), 8);
        assert!(!j.truncated, "a full-but-unwrapped ring lost nothing");
        assert_eq!(sink.truncated_journeys(), 0);
        assert!(!j.to_string().contains("truncated"));
    }

    #[test]
    fn journey_at_capacity_plus_one_is_marked_truncated() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..9u64 {
            sink.record(tid(1), Hop::TxSent, i);
        }
        let j = sink.journey(tid(1));
        assert_eq!(j.hops.len(), 8, "only the most recent survive");
        assert!(j.truncated, "the 9th record evicted the 1st");
        assert_eq!(sink.truncated_journeys(), 1);
        assert!(j.to_string().contains("truncated"));

        // An unaffected trace stays clean even though the ring wrapped.
        sink.record(tid(2), Hop::Published, 100);
        assert!(sink.journey(tid(1)).truncated);
        // tid(2) only evicted a tid(1) record, never one of its own.
        assert!(!sink.journey(tid(2)).truncated);
        assert_eq!(sink.truncated_journeys(), 1, "distinct traces, not records");
    }

    #[test]
    fn truncated_journeys_export_through_the_registry() {
        let sink = Arc::new(TraceSink::with_capacity(4));
        let registry = crate::Registry::new();
        sink.register_with(&registry);
        for i in 0..4u64 {
            sink.record(tid(1), Hop::TxSent, i);
        }
        assert!(registry
            .render_text()
            .contains("smc_trace_truncated_journeys_total 0"));
        sink.record(tid(1), Hop::TxSent, 4);
        assert!(registry
            .render_text()
            .contains("smc_trace_truncated_journeys_total 1"));
    }

    #[test]
    fn disabled_tracer_and_none_trace_record_nothing() {
        let sink = Arc::new(TraceSink::with_capacity(8));
        let clock: SharedClock = Arc::new(ManualClock::new());
        let t = Tracer::new(Arc::clone(&sink), clock);
        t.record(TraceId::NONE, Hop::Published);
        assert_eq!(sink.appended(), 0);
        let off = Tracer::disabled();
        off.record(tid(5), Hop::Published);
        assert!(!off.is_enabled());
    }

    #[test]
    fn sink_exports_dropped_hops_through_the_registry() {
        let sink = Arc::new(TraceSink::with_capacity(4));
        let registry = crate::Registry::new();
        sink.register_with(&registry);
        for i in 0..7u64 {
            sink.record(tid(1), Hop::TxSent, i);
        }
        let text = registry.render_text();
        assert!(text.contains("smc_trace_hops_appended_total 7"));
        assert!(text.contains("smc_trace_dropped_hops_total 3"));
        let dropped = registry
            .gather()
            .into_iter()
            .find(|s| s.name == "smc_trace_dropped_hops_total")
            .unwrap();
        assert_eq!(dropped.value, 3);
        assert!(dropped.monotonic);
    }

    #[test]
    fn attribution_splits_wait_from_service_and_sums_to_total() {
        let sink = TraceSink::with_capacity(16);
        sink.record(tid(3), Hop::Published, 100);
        sink.record(tid(3), Hop::Matched, 110); // +10 service
        sink.record(tid(3), Hop::ProxyEnqueued, 125); // +15 service
        sink.record(tid(3), Hop::OutQueued, 130); // +5 service
        sink.record(tid(3), Hop::TxSent, 180); // +50 WAIT
        sink.record(tid(3), Hop::TxRetransmit, 300); // +120 WAIT
        sink.record(tid(3), Hop::Delivered, 320); // +20 service
        let j = sink.journey(tid(3));
        assert_eq!(j.total_micros(), 220);
        assert_eq!(j.wait_micros(), 170, "outbound-queue 50 + retransmit 120");
        assert_eq!(j.service_micros(), 50);
        assert_eq!(j.wait_micros() + j.service_micros(), j.total_micros());
        let legs = j.attribution();
        assert_eq!(legs.len(), 7);
        assert_eq!(legs[0].stage, "publish");
        assert_eq!(legs[0].delta_micros, 0, "the first leg opens the journey");
        assert_eq!(legs[4].stage, "outbound-queue");
        assert_eq!(legs[4].kind, StageKind::Wait);
        assert_eq!(legs[5].stage, "retransmit-wait");
        assert_eq!(legs[5].kind, StageKind::Wait);
    }

    #[test]
    fn every_hop_has_a_stage_and_new_hops_have_names() {
        assert_eq!(Hop::OutQueued.name(), "out-queued");
        assert_eq!(Hop::WalQueued.name(), "wal-queued");
        assert_eq!(Hop::WalQueued.stage().0, "enqueue");
        assert_eq!(Hop::WalAppended.stage(), ("wal-append", StageKind::Service));
        assert_eq!(Hop::BatchQueued.name(), "batch-queued");
        assert_eq!(Hop::BatchQueued.stage(), ("batch-queue", StageKind::Wait));
        assert_eq!(StageKind::Wait.name(), "wait");
        assert_eq!(StageKind::Service.name(), "service");
    }

    /// A coalesced publish's linger shows up as wait, not service: the
    /// `BatchQueued` hop fires at flush time and closes the leg opened
    /// by `Published`, so wait + service still sums to the total.
    #[test]
    fn batch_linger_is_attributed_as_wait() {
        let sink = TraceSink::with_capacity(16);
        sink.record(tid(4), Hop::Published, 100);
        sink.record(tid(4), Hop::BatchQueued, 140); // +40 WAIT (linger)
        sink.record(tid(4), Hop::Matched, 150); // +10 service
        sink.record(tid(4), Hop::Delivered, 170); // +20 service
        let j = sink.journey(tid(4));
        assert_eq!(j.total_micros(), 70);
        assert_eq!(j.wait_micros(), 40, "the linger is the only wait");
        assert_eq!(j.service_micros(), 30);
        assert_eq!(j.wait_micros() + j.service_micros(), j.total_micros());
        let legs = j.attribution();
        assert_eq!(legs[1].stage, "batch-queue");
        assert_eq!(legs[1].kind, StageKind::Wait);
        assert_eq!(legs[1].delta_micros, 40);
    }

    #[test]
    fn empty_journey_attributes_nothing() {
        let sink = TraceSink::with_capacity(4);
        let j = sink.journey(tid(99));
        assert_eq!(j.total_micros(), 0);
        assert_eq!(j.wait_micros(), 0);
        assert_eq!(j.service_micros(), 0);
        assert!(j.attribution().is_empty());
    }

    #[test]
    fn probe_helpers_are_inert_without_a_probe_sink() {
        let sink = Arc::new(TraceSink::with_capacity(8));
        let clock: SharedClock = Arc::new(ManualClock::new());
        let t = Tracer::new(Arc::clone(&sink), clock);
        assert!(!t.probes_enabled());
        assert_eq!(t.probe_start(), None);
        t.probe_control_hold(None);
        t.probe_queue_depth(5);
        let off = Tracer::disabled();
        assert_eq!(off.probe_start(), None);
        off.probe_queue_depth(5);
    }

    #[test]
    fn probe_helpers_feed_the_probe_sink() {
        let sink = Arc::new(TraceSink::with_capacity(8));
        let manual = Arc::new(ManualClock::new());
        let probes = Arc::new(crate::ProbeSink::new());
        let t = Tracer::with_probes(
            Arc::clone(&sink),
            manual.clone() as SharedClock,
            Arc::clone(&probes),
        );
        assert!(t.probes_enabled());
        let hold = t.probe_start();
        assert_eq!(hold, Some(0));
        manual.advance_micros(40);
        t.probe_control_hold(hold);
        t.probe_queue_depth(12);
        assert_eq!(probes.control_hold_snapshot(), (40, 1, 40));
        assert_eq!(probes.queue_depth_snapshot(), (12, 1, 12));
    }

    #[test]
    fn tracer_timestamps_from_injected_clock() {
        let sink = Arc::new(TraceSink::with_capacity(8));
        let manual = Arc::new(ManualClock::new());
        let t = Tracer::new(Arc::clone(&sink), manual.clone() as SharedClock);
        let trace = TraceId::for_event(ServiceId::from_raw(3), 1);
        manual.advance_micros(250);
        t.record(trace, Hop::Published);
        manual.advance_micros(50);
        t.record(trace, Hop::Delivered);
        let j = sink.journey(trace);
        assert_eq!(
            j.hops.iter().map(|r| r.at_micros).collect::<Vec<_>>(),
            vec![250, 300]
        );
    }
}
