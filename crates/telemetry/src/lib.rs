//! First-party observability for the SMC: causal event traces and a
//! metrics registry with Prometheus-style text exposition.
//!
//! The workspace is offline — no `tracing`, no `prometheus` — so this
//! crate provides the two primitives the paper's evaluation needs,
//! vendor-style:
//!
//! * **Event tracing** ([`trace`]): every stamped event has a
//!   [`TraceId`](smc_types::TraceId) derivable from its identity;
//!   instrumented components append timestamped [`Hop`] records to a
//!   bounded, lock-light ring-buffer [`TraceSink`]. A sink can replay any
//!   event's hop-by-hop [`Journey`] with per-hop latencies — the "where
//!   did this event spend its time" question Fig. 4 asks in aggregate.
//! * **Metrics** ([`metrics`]): named counters, gauges and log₂-bucketed
//!   histograms in a [`Registry`] whose [`Registry::render_text`] emits
//!   the `# HELP`/`# TYPE` exposition format, so soak logs and future
//!   scrape endpoints speak a standard dialect.
//!
//! Both halves are deliberately deterministic: a [`Tracer`] timestamps
//! from an injected [`SharedClock`](smc_types::SharedClock), so the
//! virtual-time chaos harness produces byte-identical journeys run after
//! run.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod critical;
pub mod export;
pub mod metrics;
pub mod probe;
pub mod slo;
pub mod trace;
pub mod ward;

pub use critical::{CriticalPath, StageRow, TailExemplar, TailReservoir};
pub use export::DeltaExporter;
pub use metrics::{
    parse_text, Counter, Exemplar, ExemplarEntry, Gauge, Histogram, ParsedSample, Registry, Sample,
};
pub use probe::ProbeSink;
pub use slo::{SloConfig, SloTracker, SloWindowBurn};
pub use trace::{
    Hop, HopRecord, Journey, LegAttribution, StageKind, TraceSink, Tracer, DEFAULT_SINK_CAPACITY,
};
pub use ward::{CellFreshness, StitchedHop, StitchedJourney, WardRegistry};
