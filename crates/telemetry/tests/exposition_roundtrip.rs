//! Property: the text exposition survives a parse round-trip. For any
//! randomized registry — counters, gauges, histograms, collector
//! samples, hostile label values — `parse_text(render_text(r))`
//! succeeds and reproduces every series name, label set and value.

use std::collections::BTreeMap;

use proptest::prelude::*;
use smc_telemetry::{parse_text, ParsedSample, Registry, Sample};

/// Values stay under 2^53 so the parser's f64 compares exactly.
const MAX_VALUE: u64 = 1 << 53;

#[derive(Debug, Clone)]
enum Spec {
    Counter {
        labels: Labels,
        value: u64,
    },
    Gauge {
        labels: Labels,
        value: u64,
    },
    Histogram {
        labels: Labels,
        observations: Vec<u64>,
    },
    Collector {
        labels: Labels,
        value: u64,
        monotonic: bool,
    },
}

type Labels = Vec<(String, String)>;

fn arb_label_value() -> impl Strategy<Value = String> {
    // `.` is printable ASCII (quotes and backslashes included); the
    // fixed alternative pins the escaper's worst case every run.
    prop_oneof![".{0,8}", Just("a\"b\\c\nd".to_owned())]
}

fn arb_labels() -> impl Strategy<Value = Labels> {
    // Distinct keys per instrument (duplicate keys are not a shape the
    // registry emits).
    proptest::collection::vec(("[a-z][a-z0-9_]{0,6}", arb_label_value()), 0..3).prop_map(|pairs| {
        let dedup: BTreeMap<String, String> = pairs.into_iter().collect();
        dedup.into_iter().collect()
    })
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (arb_labels(), 0..MAX_VALUE).prop_map(|(labels, value)| Spec::Counter { labels, value }),
        (arb_labels(), 0..MAX_VALUE).prop_map(|(labels, value)| Spec::Gauge { labels, value }),
        (
            arb_labels(),
            proptest::collection::vec(0u64..1_000_000, 0..6)
        )
            .prop_map(|(labels, observations)| Spec::Histogram {
                labels,
                observations
            }),
        (arb_labels(), 0..MAX_VALUE, any::<bool>()).prop_map(|(labels, value, monotonic)| {
            Spec::Collector {
                labels,
                value,
                monotonic,
            }
        }),
    ]
}

/// Distinct family names per spec: a kind prefix plus the index, so
/// random draws can never collide across kinds or with histogram
/// `_bucket`/`_sum`/`_count` suffixes.
fn family_name(i: usize, spec: &Spec) -> String {
    match spec {
        Spec::Counter { .. } => format!("ctr_{i}_total"),
        Spec::Gauge { .. } => format!("gauge_{i}"),
        Spec::Histogram { .. } => format!("hist_{i}"),
        Spec::Collector { .. } => format!("coll_{i}"),
    }
}

fn as_refs(labels: &Labels) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

fn build(specs: &[Spec]) -> Registry {
    let registry = Registry::default();
    for (i, spec) in specs.iter().enumerate() {
        let name = family_name(i, spec);
        match spec {
            Spec::Counter { labels, value } => {
                registry
                    .counter_with(&name, "a counter", &as_refs(labels))
                    .add(*value);
            }
            Spec::Gauge { labels, value } => {
                registry
                    .gauge_with(&name, "a gauge", &as_refs(labels))
                    .set(*value);
            }
            Spec::Histogram {
                labels,
                observations,
            } => {
                let h = registry.histogram_with(&name, "a histogram", &as_refs(labels));
                for &o in observations {
                    h.observe(o);
                }
            }
            Spec::Collector {
                labels,
                value,
                monotonic,
            } => {
                let sample = Sample {
                    name: name.clone(),
                    help: "a collector".to_owned(),
                    monotonic: *monotonic,
                    labels: labels.clone(),
                    value: *value,
                };
                registry.register_collector(move |out| out.push(sample.clone()));
            }
        }
    }
    registry
}

fn find<'a>(parsed: &'a [ParsedSample], name: &str, labels: &Labels) -> Option<&'a ParsedSample> {
    parsed.iter().find(|p| {
        p.name == name
            && p.labels.iter().filter(|(k, _)| k != "le").count() == labels.len()
            && labels.iter().all(|l| p.labels.contains(l))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_text_parses_back_to_the_same_series(
        specs in proptest::collection::vec(arb_spec(), 0..8)
    ) {
        let registry = build(&specs);
        let text = registry.render_text();
        let parsed = parse_text(&text)
            .unwrap_or_else(|| panic!("exposition must parse:\n{text}"));

        for (i, spec) in specs.iter().enumerate() {
            let name = family_name(i, spec);
            match spec {
                Spec::Counter { labels, value }
                | Spec::Gauge { labels, value }
                | Spec::Collector { labels, value, .. } => {
                    let p = find(&parsed, &name, labels).unwrap_or_else(|| {
                        panic!("series {name} {labels:?} missing from:\n{text}")
                    });
                    prop_assert_eq!(p.value, *value as f64);
                }
                Spec::Histogram { labels, observations } => {
                    let count = find(&parsed, &format!("{name}_count"), labels)
                        .expect("histogram count series");
                    prop_assert_eq!(count.value, observations.len() as f64);
                    let sum = find(&parsed, &format!("{name}_sum"), labels)
                        .expect("histogram sum series");
                    prop_assert_eq!(sum.value, observations.iter().sum::<u64>() as f64);
                    // Buckets are cumulative and end at +Inf == count.
                    let bucket_name = format!("{name}_bucket");
                    let buckets: Vec<&ParsedSample> = parsed
                        .iter()
                        .filter(|p| p.name == bucket_name
                            && labels.iter().all(|l| p.labels.contains(l)))
                        .collect();
                    prop_assert!(!buckets.is_empty());
                    prop_assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
                    let last = buckets.last().expect("at least one bucket");
                    prop_assert_eq!(
                        last.labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.as_str()),
                        Some("+Inf")
                    );
                    prop_assert_eq!(last.value, observations.len() as f64);
                }
            }
        }

        // No phantom series: every parsed family traces back to a spec.
        let families: BTreeMap<String, ()> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (family_name(i, s), ()))
            .collect();
        for p in &parsed {
            let base = p
                .name
                .strip_suffix("_bucket")
                .or_else(|| p.name.strip_suffix("_sum"))
                .or_else(|| p.name.strip_suffix("_count"))
                .unwrap_or(&p.name);
            prop_assert!(
                families.contains_key(base) || families.contains_key(&p.name),
                "unexpected series {} in:\n{}", p.name, text
            );
        }
    }
}
