//! Property: ward-rolled counters never go backwards, no matter where a
//! cell crashes between exports.
//!
//! A `CoreCrash` rebuilds the cell's registry (counters restart from
//! zero) and may or may not take the cell-side [`DeltaExporter`] with
//! it. Either way the exporter ships only non-negative deltas — a
//! surviving exporter saturates the reset, a rebuilt one re-counts from
//! the observed value — and the observer's [`WardRegistry`] only ever
//! adds them, so the rolled-up series is monotone by construction. This
//! proptest drives that argument over arbitrary increment schedules and
//! crash points.

use proptest::prelude::*;

use smc_telemetry::{DeltaExporter, Registry, WardRegistry};
use smc_types::TelemetryMsg;

/// The ward-rolled reading of `smc_cell_published_total`.
fn ward_value(ward: &WardRegistry) -> u64 {
    ward.registry()
        .gather()
        .into_iter()
        .find(|s| {
            s.name == "smc_cell_published_total"
                && s.labels.iter().any(|(k, v)| k == "cell" && v == "ward")
        })
        .map(|s| s.value)
        .unwrap_or(0)
}

proptest! {
    #[test]
    fn ward_counters_never_go_backwards_across_core_crashes(
        increments in proptest::collection::vec(0u64..50, 1..40),
        crash_points in proptest::collection::vec(any::<bool>(), 1..40),
        exporter_dies_too in any::<bool>(),
        steady_increment in 0u64..10,
    ) {
        let ward = WardRegistry::new();

        // Cell 1 crashes at the chosen points; cell 2 publishes
        // steadily so the ward roll-up always sums two cells.
        let mut registry1 = Registry::new();
        let mut exporter1 = DeltaExporter::new();
        let registry2 = Registry::new();
        let mut exporter2 = DeltaExporter::new();
        // Export sequence numbers live with the harness (like the WAL
        // journal), so they survive a core crash.
        let (mut seq1, mut seq2) = (0u64, 0u64);

        let mut last_ward = 0u64;
        for (step, &inc) in increments.iter().enumerate() {
            if crash_points.get(step).copied().unwrap_or(false) {
                // CoreCrash: instruments rebuild from zero…
                registry1 = Registry::new();
                if exporter_dies_too {
                    // …and so may the exporter's baseline.
                    exporter1 = DeltaExporter::new();
                }
            }
            registry1
                .counter("smc_cell_published_total", "published events")
                .add(inc);
            registry2
                .counter("smc_cell_published_total", "published events")
                .add(steady_increment);

            let now = (step as u64 + 1) * 1_000;
            for (cell, registry, exporter, seq) in [
                (1u64, &registry1, &mut exporter1, &mut seq1),
                (2u64, &registry2, &mut exporter2, &mut seq2),
            ] {
                let series = exporter.export(&registry.gather());
                *seq += 1;
                ward.apply(
                    &TelemetryMsg::MetricDelta { cell, export_seq: *seq, series },
                    now,
                    now,
                );
                let value = ward_value(&ward);
                prop_assert!(
                    value >= last_ward,
                    "ward counter went backwards at step {step}: {value} < {last_ward}"
                );
                last_ward = value;
            }
        }
    }

    /// The wire round-trip preserves the guarantee: deltas that travel
    /// through `to_event`/`from_event` fold identically.
    #[test]
    fn ward_folding_survives_the_wire_encoding(
        increments in proptest::collection::vec(1u64..100, 1..20),
        crash_at in 0usize..20,
    ) {
        let direct = WardRegistry::new();
        let wired = WardRegistry::new();
        let mut registry = Registry::new();
        let mut exporter = DeltaExporter::new();

        for (step, &inc) in increments.iter().enumerate() {
            if step == crash_at {
                registry = Registry::new();
                exporter = DeltaExporter::new();
            }
            registry
                .counter("smc_cell_published_total", "published events")
                .add(inc);
            let msg = TelemetryMsg::MetricDelta {
                cell: 1,
                export_seq: step as u64 + 1,
                series: exporter.export(&registry.gather()),
            };
            let now = (step as u64 + 1) * 1_000;
            let decoded = TelemetryMsg::from_event(&msg.to_event(now)).expect("round-trip");
            direct.apply(&msg, now, now);
            wired.apply(&decoded, now, now);
        }
        prop_assert_eq!(ward_value(&direct), ward_value(&wired));
    }
}
