//! The durability layer of the SMC core: an append-only, checksummed,
//! segment-based write-ahead log plus a periodic snapshot.
//!
//! The paper's delivery guarantees (§II-C: exactly-once, per-sender
//! FIFO, queue-until-acked) are promises about *state* — receive
//! cursors, outbound proxy queues, subscriptions, membership. While that
//! state lives only in memory, the guarantees end at the first core
//! crash. This crate makes the state outlive the process:
//!
//! * [`Wal`] frames [`WalRecord`]s as `[len][crc32][payload]` into
//!   numbered segments behind a [`WalBackend`], optionally fsyncing each
//!   append, and compacts them with [`CoreSnapshot`]s;
//! * [`Wal::open`] recovers: decode the latest snapshot, replay every
//!   segment in order, skip checksum-corrupt records, stop at a torn
//!   tail — never panicking on damaged storage;
//! * [`WalChannelJournal`] adapts a [`Wal`] to the transport layer's
//!   [`ChannelJournal`] hooks, so a `ReliableChannel` journals cursors
//!   and outbound queues as it runs;
//! * backends: [`FileBackend`] (real files, `fsync`), [`MemBackend`]
//!   (deterministic, with injectable torn-tail / corrupt-record / fsync
//!   faults for the virtual-time harness), and [`NoopBackend`] (retains
//!   nothing — exists so tests can prove the oracle catches a core that
//!   recovers without a log).
//!
//! Crash-consistency argument, in one paragraph: the channel journals a
//! delivery — payload included, for channels that retain rx
//! (`RxDeliver`) — *before* delivering or acking a message, journals an
//! outbound enqueue *before* the message can reach the wire, and
//! journals consumption (`RxConsumed`) only after the application
//! finished routing. So at every crash point, anything a peer saw
//! acknowledged is in the log *with its payload* (exactly-once delivery
//! into the core holds on replay, and recovery re-routes messages the
//! crash caught between ack and routing), and anything accepted for
//! sending is either in the log or was never sent (queue-until-acked
//! holds). Checkpoints use [`Wal::snapshot_with`]: the active segment is
//! rotated *first* to pin a boundary, the state is captured after, and
//! only pre-boundary segments are removed — a record racing the
//! checkpoint either made it into the captured state or survives in a
//! retained segment, and replaying it on top is safe because every
//! [`CoreSnapshot::apply`] fold is idempotent. Trimming records
//! (`OutAck`, `OutForget`, `RxConsumed`) may be lost with the tail —
//! recovery then resends or re-routes an already-handled message:
//! receivers' restored cursors suppress the resend, and re-routing is
//! the documented at-least-once downlink window.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use smc_transport::ChannelJournal;
use smc_types::codec::{from_bytes, to_bytes};
use smc_types::{CoreSnapshot, Error, Result, ServiceId, WalRecord};

/// Channel discriminator for the bus/device channel's journal records.
pub const CHAN_BUS: u8 = 0;
/// Channel discriminator for the discovery channel's journal records.
pub const CHAN_DISCOVERY: u8 = 1;
/// Channel discriminator for the peer-supervision channel's journal
/// records — heartbeat-leases, claims and remote repair commands get
/// the same durable exactly-once treatment as application traffic.
pub const CHAN_SUPERVISION: u8 = 2;
/// Channel discriminator for the telemetry-plane channel's journal
/// records — metric deltas, trace exports and SLO reports survive
/// partitions as a durable backlog that drains after heal, so the
/// observer's ward view converges instead of losing history.
pub const CHAN_TELEMETRY: u8 = 3;

/// Upper bound on one framed record's payload — far above any event the
/// bus carries, low enough that a torn length prefix is recognised
/// instead of driving a huge read.
pub const MAX_RECORD_LEN: usize = 1024 * 1024;

const RECORD_HEADER_LEN: usize = 8;

// --- crc32 -----------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3, as used by gzip/zlib) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- backend trait ---------------------------------------------------------

/// Storage abstraction under the [`Wal`]: numbered append-only segments
/// plus one atomically-replaced snapshot blob.
///
/// Implementations decide what "durable" means — real files with `fsync`
/// ([`FileBackend`]), deterministic memory with injectable faults
/// ([`MemBackend`]), or nothing at all ([`NoopBackend`]).
pub trait WalBackend: Send + Sync + std::fmt::Debug {
    /// Ids of all existing segments, ascending.
    ///
    /// # Errors
    ///
    /// I/O failure listing the storage.
    fn segments(&self) -> Result<Vec<u64>>;
    /// Full contents of segment `id`.
    ///
    /// # Errors
    ///
    /// I/O failure or unknown segment.
    fn read_segment(&self, id: u64) -> Result<Vec<u8>>;
    /// Creates empty segment `id` (idempotent).
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn create_segment(&self, id: u64) -> Result<()>;
    /// Appends `data` to segment `id`.
    ///
    /// # Errors
    ///
    /// I/O failure or unknown segment.
    fn append(&self, id: u64, data: &[u8]) -> Result<()>;
    /// Makes segment `id`'s appended data durable (fsync).
    ///
    /// # Errors
    ///
    /// I/O failure — the caller treats the appended data as *not*
    /// durable and propagates the error.
    fn sync(&self, id: u64) -> Result<()>;
    /// Deletes segment `id` (idempotent).
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn remove_segment(&self, id: u64) -> Result<()>;
    /// The current snapshot blob, if one was ever written.
    ///
    /// # Errors
    ///
    /// I/O failure (a missing snapshot is `Ok(None)`).
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>>;
    /// Atomically replaces the snapshot blob.
    ///
    /// # Errors
    ///
    /// I/O failure; on error the previous snapshot must survive.
    fn write_snapshot(&self, data: &[u8]) -> Result<()>;
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{context}: {e}"))
}

// --- file backend ----------------------------------------------------------

/// A [`WalBackend`] over real files in one directory: `seg-NNNNNNNN.wal`
/// segments and a `snapshot.bin` blob replaced via write-to-temp+rename.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the WAL directory at `dir`.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create wal dir", e))?;
        Ok(FileBackend { dir })
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:08}.wal"))
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    /// Fsyncs the WAL directory itself. Creating, removing or renaming a
    /// file only becomes durable once its *directory entry* is synced —
    /// without this, a power cut can surface the old directory state
    /// (e.g. segment deletions persisted but the snapshot rename not),
    /// losing durable state wholesale.
    fn sync_dir(&self) -> Result<()> {
        #[cfg(unix)]
        {
            let dir = fs::File::open(&self.dir).map_err(|e| io_err("open wal dir", e))?;
            dir.sync_all().map_err(|e| io_err("fsync wal dir", e))?;
        }
        Ok(())
    }
}

impl WalBackend for FileBackend {
    fn segments(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("list wal dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list wal dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(id) = id.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn read_segment(&self, id: u64) -> Result<Vec<u8>> {
        fs::read(self.segment_path(id)).map_err(|e| io_err("read segment", e))
    }

    fn create_segment(&self, id: u64) -> Result<()> {
        fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.segment_path(id))
            .map(|_| ())
            .map_err(|e| io_err("create segment", e))?;
        self.sync_dir()
    }

    fn append(&self, id: u64, data: &[u8]) -> Result<()> {
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(self.segment_path(id))
            .map_err(|e| io_err("open segment", e))?;
        file.write_all(data)
            .map_err(|e| io_err("append segment", e))
    }

    fn sync(&self, id: u64) -> Result<()> {
        let file = fs::File::open(self.segment_path(id)).map_err(|e| io_err("open segment", e))?;
        file.sync_data().map_err(|e| io_err("fsync segment", e))
    }

    fn remove_segment(&self, id: u64) -> Result<()> {
        match fs::remove_file(self.segment_path(id)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove segment", e)),
        }
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>> {
        match fs::read(self.snapshot_path()) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read snapshot", e)),
        }
    }

    fn write_snapshot(&self, data: &[u8]) -> Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err("create snapshot", e))?;
            file.write_all(data)
                .map_err(|e| io_err("write snapshot", e))?;
            file.sync_data().map_err(|e| io_err("fsync snapshot", e))?;
        }
        fs::rename(&tmp, self.snapshot_path()).map_err(|e| io_err("rename snapshot", e))?;
        self.sync_dir()
    }
}

// --- memory backend --------------------------------------------------------

#[derive(Debug, Default)]
struct MemState {
    segments: BTreeMap<u64, Vec<u8>>,
    snapshot: Option<Vec<u8>>,
    /// `Some(n)`: the next `n` fsyncs succeed, every one after fails.
    fsyncs_until_failure: Option<u64>,
}

/// A deterministic in-memory [`WalBackend`] with injectable faults.
///
/// Cloning shares the underlying storage, so a harness can keep a handle
/// across a simulated crash and hand a clone to the recovering core —
/// exactly how a real process would find its files again.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    state: Arc<Mutex<MemState>>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Injects a torn tail write into the newest segment: a record
    /// header claiming more bytes than follow — what a power cut
    /// mid-`write` leaves behind.
    pub fn inject_torn_tail(&self) {
        let mut state = self.state.lock();
        if let Some(data) = state.segments.values_mut().next_back() {
            data.extend_from_slice(&1000u32.to_le_bytes());
            data.extend_from_slice(&0u32.to_le_bytes());
            data.extend_from_slice(&[0xEE; 10]);
        }
    }

    /// Flips one byte inside the payload of the last complete record of
    /// the newest non-empty segment, leaving its stored checksum stale.
    pub fn corrupt_tail_record(&self) {
        let mut state = self.state.lock();
        if let Some(data) = state.segments.values_mut().rev().find(|d| !d.is_empty()) {
            // Walk the frames to find the last record's payload offset.
            let mut pos = 0usize;
            let mut last_payload = None;
            while data.len() - pos >= RECORD_HEADER_LEN {
                let len =
                    u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if len > MAX_RECORD_LEN || pos + RECORD_HEADER_LEN + len > data.len() {
                    break;
                }
                last_payload = Some(pos + RECORD_HEADER_LEN);
                pos += RECORD_HEADER_LEN + len;
            }
            if let Some(offset) = last_payload {
                data[offset] ^= 0xFF;
            }
        }
    }

    /// Makes every fsync after the next `n` fail with an I/O error.
    pub fn fail_fsync_after(&self, n: u64) {
        self.state.lock().fsyncs_until_failure = Some(n);
    }

    /// Clears an injected fsync fault.
    pub fn heal_fsync(&self) {
        self.state.lock().fsyncs_until_failure = None;
    }
}

impl WalBackend for MemBackend {
    fn segments(&self) -> Result<Vec<u64>> {
        Ok(self.state.lock().segments.keys().copied().collect())
    }

    fn read_segment(&self, id: u64) -> Result<Vec<u8>> {
        self.state
            .lock()
            .segments
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("wal segment {id}")))
    }

    fn create_segment(&self, id: u64) -> Result<()> {
        self.state.lock().segments.entry(id).or_default();
        Ok(())
    }

    fn append(&self, id: u64, data: &[u8]) -> Result<()> {
        let mut state = self.state.lock();
        match state.segments.get_mut(&id) {
            Some(segment) => {
                segment.extend_from_slice(data);
                Ok(())
            }
            None => Err(Error::NotFound(format!("wal segment {id}"))),
        }
    }

    fn sync(&self, _id: u64) -> Result<()> {
        let mut state = self.state.lock();
        match &mut state.fsyncs_until_failure {
            Some(0) => Err(Error::Io("injected fsync failure".into())),
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }

    fn remove_segment(&self, id: u64) -> Result<()> {
        self.state.lock().segments.remove(&id);
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>> {
        Ok(self.state.lock().snapshot.clone())
    }

    fn write_snapshot(&self, data: &[u8]) -> Result<()> {
        self.state.lock().snapshot = Some(data.to_vec());
        Ok(())
    }
}

// --- noop backend ----------------------------------------------------------

/// A [`WalBackend`] that retains nothing.
///
/// Recovery from it always finds an empty log — the "durability layer
/// disabled" configuration the acceptance tests use to prove the chaos
/// oracle actually detects a core that forgets its delivery state.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopBackend;

impl WalBackend for NoopBackend {
    fn segments(&self) -> Result<Vec<u64>> {
        Ok(Vec::new())
    }

    fn read_segment(&self, _id: u64) -> Result<Vec<u8>> {
        Ok(Vec::new())
    }

    fn create_segment(&self, _id: u64) -> Result<()> {
        Ok(())
    }

    fn append(&self, _id: u64, _data: &[u8]) -> Result<()> {
        Ok(())
    }

    fn sync(&self, _id: u64) -> Result<()> {
        Ok(())
    }

    fn remove_segment(&self, _id: u64) -> Result<()> {
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>> {
        Ok(None)
    }

    fn write_snapshot(&self, _data: &[u8]) -> Result<()> {
        Ok(())
    }
}

// --- the log engine --------------------------------------------------------

/// Tuning knobs for the [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_max_bytes: usize,
    /// Fsync after every append (the durable default). Disabling trades
    /// the crash-consistency guarantee for throughput.
    pub sync_each_append: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 256 * 1024,
            sync_each_append: true,
        }
    }
}

/// What [`Wal::open`] rebuilt from storage.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The state to resume from: latest snapshot plus every replayed
    /// record folded in.
    pub snapshot: CoreSnapshot,
    /// Log records successfully replayed.
    pub replayed: u64,
    /// Records dropped for checksum or decode failures (including an
    /// undecodable snapshot blob).
    pub skipped: u64,
    /// Whether a torn tail ended a segment early.
    pub truncated: bool,
    /// Wall-clock duration of recovery, in microseconds. Reporting only
    /// — never feed it into a deterministic trace.
    pub recovery_micros: u64,
}

/// Counters describing a [`Wal`]'s activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalMetrics {
    /// Records appended.
    pub records_appended: u64,
    /// Framed bytes appended (headers included).
    pub bytes_appended: u64,
    /// Fsyncs performed.
    pub fsyncs: u64,
    /// Snapshots written.
    pub snapshots: u64,
}

#[derive(Debug)]
struct WalInner {
    active: u64,
    active_bytes: usize,
}

/// The result of folding a backend's snapshot and segments into one
/// [`CoreSnapshot`] — shared between [`Wal::open`] (which then starts a
/// fresh active segment) and [`Wal::recover_state`] (a pure read).
struct BackendFold {
    snapshot: CoreSnapshot,
    replayed: u64,
    skipped: u64,
    truncated: bool,
    last_segment: Option<u64>,
}

fn fold_backend(backend: &dyn WalBackend) -> Result<BackendFold> {
    let mut snapshot = CoreSnapshot::default();
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    let mut truncated = false;

    if let Some(blob) = backend.read_snapshot()? {
        match decode_snapshot(&blob) {
            Some(snap) => snapshot = snap,
            None => skipped += 1,
        }
    }

    let segment_ids = backend.segments()?;
    for &id in &segment_ids {
        let data = backend.read_segment(id)?;
        let mut pos = 0usize;
        while data.len() - pos >= RECORD_HEADER_LEN {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN || pos + RECORD_HEADER_LEN + len > data.len() {
                // Torn tail: the header (or payload) never finished
                // hitting storage. Nothing after it in this segment
                // is trustworthy.
                truncated = true;
                break;
            }
            let payload = &data[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
            pos += RECORD_HEADER_LEN + len;
            if crc32(payload) != crc {
                skipped += 1;
                continue;
            }
            match from_bytes::<WalRecord>(payload) {
                Ok(record) => {
                    snapshot.apply(&record);
                    replayed += 1;
                }
                Err(_) => skipped += 1,
            }
        }
        if data.len() > pos {
            // Trailing sub-header bytes are also a torn tail.
            truncated = true;
        }
    }

    Ok(BackendFold {
        snapshot,
        replayed,
        skipped,
        truncated,
        last_segment: segment_ids.last().copied(),
    })
}

/// The write-ahead log: checksummed record framing and snapshot
/// compaction over a [`WalBackend`].
#[derive(Debug)]
pub struct Wal {
    backend: Arc<dyn WalBackend>,
    config: WalConfig,
    inner: Mutex<WalInner>,
    records_appended: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: AtomicU64,
    snapshots: AtomicU64,
    /// Append wait/service probe (clock + sink), swapped in via
    /// [`Wal::set_probes`]; `None` keeps appends untimed.
    probes: smc_types::SnapshotCell<Option<WalProbes>>,
}

/// The clock and sink a probed WAL times its appends with.
#[derive(Debug, Clone)]
struct WalProbes {
    clock: smc_types::SharedClock,
    sink: Arc<smc_telemetry::ProbeSink>,
}

impl Wal {
    /// Opens the log, running recovery: decodes the latest snapshot,
    /// replays every segment in id order (skipping corrupt records,
    /// stopping a segment at a torn tail), then starts a fresh active
    /// segment so damaged tails are never appended to.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures. Damaged *contents* (bad
    /// checksums, torn tails, undecodable snapshots) are not errors —
    /// they are tallied in [`Recovered`] and recovery continues.
    pub fn open(backend: Arc<dyn WalBackend>, config: WalConfig) -> Result<(Wal, Recovered)> {
        let started = Instant::now();
        let fold = fold_backend(backend.as_ref())?;

        // Always start a new active segment: a damaged tail stays frozen
        // in its old segment instead of being appended past.
        let active = fold.last_segment.map_or(1, |last| last + 1);
        backend.create_segment(active)?;

        let wal = Wal {
            backend,
            config,
            inner: Mutex::new(WalInner {
                active,
                active_bytes: 0,
            }),
            records_appended: AtomicU64::new(0),
            bytes_appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            probes: smc_types::SnapshotCell::default(),
        };
        let recovered = Recovered {
            snapshot: fold.snapshot,
            replayed: fold.replayed,
            skipped: fold.skipped,
            truncated: fold.truncated,
            recovery_micros: started.elapsed().as_micros() as u64,
        };
        Ok((wal, recovered))
    }

    /// Re-reads durable state without disturbing the log: the latest
    /// snapshot plus every decodable record folded in, exactly as
    /// [`Wal::open`] would compute it, but with no new segment created
    /// and no mutation of the active one. This is the source of truth
    /// for anti-entropy reconciliation and component restarts — callers
    /// diff live state against it and repair divergence.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures; damaged contents are skipped,
    /// as during open.
    pub fn recover_state(&self) -> Result<CoreSnapshot> {
        Ok(fold_backend(self.backend.as_ref())?.snapshot)
    }

    /// Appends one record, rotating segments as configured and fsyncing
    /// if `sync_each_append` is set.
    ///
    /// # Errors
    ///
    /// Backend append/fsync failures — on error the record must be
    /// treated as *not* durable (the channel layer then refuses to ack
    /// the state transition it describes).
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        let payload = to_bytes(record);
        if payload.len() > MAX_RECORD_LEN {
            return Err(Error::Invalid(format!(
                "wal record of {} bytes",
                payload.len()
            )));
        }
        let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);

        // Queue-wait vs service split: time-to-lock is how long this
        // append sat behind concurrent appenders, time-under-lock is the
        // append's own work (framing above is untimed — it is identical
        // for every caller and lock-free).
        let probes = self.probes.load();
        let queued_at = probes.as_ref().as_ref().map(|p| p.clock.now_micros());
        let mut inner = self.inner.lock();
        let locked_at = probes.as_ref().as_ref().map(|p| p.clock.now_micros());
        if inner.active_bytes > 0
            && inner.active_bytes + framed.len() > self.config.segment_max_bytes
        {
            let next = inner.active + 1;
            self.backend.create_segment(next)?;
            inner.active = next;
            inner.active_bytes = 0;
        }
        self.backend.append(inner.active, &framed)?;
        inner.active_bytes += framed.len();
        self.records_appended.fetch_add(1, Ordering::Relaxed);
        self.bytes_appended
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        if self.config.sync_each_append {
            self.backend.sync(inner.active)?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(p), Some(t0), Some(t1)) = (probes.as_ref(), queued_at, locked_at) {
            let done = p.clock.now_micros();
            p.sink
                .wal_append(t1.saturating_sub(t0), done.saturating_sub(t1));
        }
        Ok(())
    }

    /// Times every append's lock wait and service duration on `clock`,
    /// feeding `sink` (`smc_probe_wal_append_*`). Probes default off;
    /// installing them costs one snapshot load per append.
    pub fn set_probes(&self, sink: Arc<smc_telemetry::ProbeSink>, clock: smc_types::SharedClock) {
        self.probes.store(Arc::new(Some(WalProbes { clock, sink })));
    }

    /// Writes the snapshot produced by `capture` and compacts the log,
    /// correctly even while other threads keep appending.
    ///
    /// The race this guards against: naively capturing state and then
    /// deleting "all old segments" loses any record journalled between
    /// the capture and the deletion — it is in neither the snapshot nor
    /// the surviving log. Instead the active segment is rotated *first*,
    /// pinning a boundary: every record appended before the rotation
    /// sits in a segment below the boundary, and — because callers
    /// journal and advance the state the capture reads under one lock —
    /// its effect is visible to `capture`, which runs after. Only
    /// pre-boundary segments are removed, so a record that raced the
    /// capture survives in a retained segment; replaying it on top of
    /// the snapshot is safe because [`CoreSnapshot::apply`] is
    /// idempotent.
    ///
    /// `capture` runs *without* the append lock held (holding it would
    /// deadlock with journalling threads that hold channel locks across
    /// their appends) and should read the channel/bus state directly.
    ///
    /// # Errors
    ///
    /// Backend I/O failures, or the error `capture` returns; on failure
    /// the previous snapshot and all segments remain current (the
    /// rotation may already have happened, which is harmless).
    pub fn snapshot_with<F>(&self, capture: F) -> Result<()>
    where
        F: FnOnce() -> Result<CoreSnapshot>,
    {
        let boundary = {
            let mut inner = self.inner.lock();
            let next = inner.active + 1;
            self.backend.create_segment(next)?;
            inner.active = next;
            inner.active_bytes = 0;
            next
        };
        let snapshot = capture()?;
        let payload = to_bytes(&snapshot);
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.backend.write_snapshot(&framed)?;
        for id in self.backend.segments()? {
            if id < boundary {
                self.backend.remove_segment(id)?;
            }
        }
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// [`Wal::snapshot_with`] for a pre-built snapshot — only safe when
    /// no other thread can append concurrently (recovery, tests, the
    /// step-driven harness between ticks).
    ///
    /// # Errors
    ///
    /// Backend I/O failures; on a snapshot-write failure the log is
    /// untouched and the previous snapshot remains current.
    pub fn snapshot(&self, snapshot: &CoreSnapshot) -> Result<()> {
        self.snapshot_with(|| Ok(snapshot.clone()))
    }

    /// A snapshot of the log's activity counters.
    pub fn metrics(&self) -> WalMetrics {
        WalMetrics {
            records_appended: self.records_appended.load(Ordering::Relaxed),
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
        }
    }

    /// The backend this log writes to.
    pub fn backend(&self) -> &Arc<dyn WalBackend> {
        &self.backend
    }

    /// Exports this log's counters into `registry` as `smc_wal_*` series,
    /// sampled at render time.
    pub fn register_with(self: &Arc<Self>, registry: &smc_telemetry::Registry) {
        let wal = Arc::clone(self);
        registry.register_collector(move |out| {
            let m = wal.metrics();
            let counter = |name: &str, help: &str, value: u64| smc_telemetry::Sample {
                name: name.to_string(),
                help: help.to_string(),
                monotonic: true,
                labels: Vec::new(),
                value,
            };
            out.push(counter(
                "smc_wal_records_appended_total",
                "Records appended to the write-ahead log.",
                m.records_appended,
            ));
            out.push(counter(
                "smc_wal_bytes_appended_total",
                "Framed bytes appended to the write-ahead log.",
                m.bytes_appended,
            ));
            out.push(counter(
                "smc_wal_fsyncs_total",
                "Fsyncs performed by the write-ahead log.",
                m.fsyncs,
            ));
            out.push(counter(
                "smc_wal_snapshots_total",
                "Snapshots written by the write-ahead log.",
                m.snapshots,
            ));
        });
    }
}

fn decode_snapshot(blob: &[u8]) -> Option<CoreSnapshot> {
    if blob.len() < 4 {
        return None;
    }
    let crc = u32::from_le_bytes(blob[..4].try_into().expect("4 bytes"));
    let payload = &blob[4..];
    if crc32(payload) != crc {
        return None;
    }
    from_bytes::<CoreSnapshot>(payload).ok()
}

// --- channel journal adapter -----------------------------------------------

/// Adapts a shared [`Wal`] to one channel's [`ChannelJournal`] hooks,
/// tagging every record with the channel discriminator (one SMC core
/// journals several channels — bus and discovery — into one log).
#[derive(Debug)]
pub struct WalChannelJournal {
    wal: Arc<Wal>,
    chan: u8,
    retain_rx: bool,
}

impl WalChannelJournal {
    /// Journals channel `chan`'s state transitions into `wal`, recording
    /// deliveries as bare cursor advances. Suitable for channels whose
    /// inbound traffic regenerates itself after a crash (discovery lease
    /// chatter); a message lost between ack and routing is simply sent
    /// again by the peer's next refresh.
    pub fn new(wal: Arc<Wal>, chan: u8) -> Self {
        WalChannelJournal {
            wal,
            chan,
            retain_rx: false,
        }
    }

    /// Like [`WalChannelJournal::new`], but retaining each delivered
    /// payload (`RxDeliver`) until the application confirms it routed the
    /// message (`RxConsumed`). Required for channels carrying events that
    /// exist nowhere else once acknowledged — the bus channel — so a
    /// crash between ack and routing cannot lose them.
    pub fn with_rx_retention(wal: Arc<Wal>, chan: u8) -> Self {
        WalChannelJournal {
            wal,
            chan,
            retain_rx: true,
        }
    }
}

impl ChannelJournal for WalChannelJournal {
    fn on_deliver(&self, peer: ServiceId, epoch: u64, seq: u64, payload: &[u8]) -> Result<()> {
        if self.retain_rx {
            self.wal.append(&WalRecord::RxDeliver {
                chan: self.chan,
                peer,
                epoch,
                seq,
                payload: payload.to_vec(),
            })
        } else {
            self.wal.append(&WalRecord::RxCursor {
                chan: self.chan,
                peer,
                epoch,
                expected: seq + 1,
            })
        }
    }

    fn retains_rx(&self) -> bool {
        self.retain_rx
    }

    fn on_consumed(&self, peer: ServiceId, seq: u64) -> Result<()> {
        if !self.retain_rx {
            return Ok(());
        }
        self.wal.append(&WalRecord::RxConsumed {
            chan: self.chan,
            peer,
            seq,
        })
    }

    fn on_enqueue(&self, peer: ServiceId, seq: u64, payload: &[u8]) -> Result<()> {
        self.wal.append(&WalRecord::OutEnqueue {
            chan: self.chan,
            peer,
            seq,
            payload: payload.to_vec(),
        })
    }

    fn on_requeue(&self, peer: ServiceId, prior_seq: u64, seq: u64) -> Result<()> {
        self.wal.append(&WalRecord::OutRequeue {
            chan: self.chan,
            peer,
            prior_seq,
            seq,
        })
    }

    fn on_acked(&self, peer: ServiceId, seq: u64) -> Result<()> {
        self.wal.append(&WalRecord::OutAck {
            chan: self.chan,
            peer,
            seq,
        })
    }

    fn on_forget(&self, peer: ServiceId) -> Result<()> {
        self.wal.append(&WalRecord::OutForget {
            chan: self.chan,
            peer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> ServiceId {
        ServiceId::from_raw(n)
    }

    fn cursor(peer: u64, expected: u64) -> WalRecord {
        WalRecord::RxCursor {
            chan: CHAN_BUS,
            peer: sid(peer),
            epoch: 7,
            expected,
        }
    }

    fn open_mem(backend: &MemBackend) -> (Wal, Recovered) {
        Wal::open(Arc::new(backend.clone()), WalConfig::default()).expect("open")
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reopen_replays_appended_records() {
        let backend = MemBackend::new();
        let (wal, first) = open_mem(&backend);
        assert_eq!(first.replayed, 0);
        wal.append(&cursor(1, 5)).unwrap();
        wal.append(&cursor(1, 6)).unwrap();
        wal.append(&WalRecord::OutEnqueue {
            chan: CHAN_BUS,
            peer: sid(2),
            seq: 1,
            payload: vec![9; 32],
        })
        .unwrap();
        drop(wal);

        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.replayed, 3);
        assert_eq!(recovered.skipped, 0);
        assert!(!recovered.truncated);
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 6)]
        );
        assert_eq!(
            recovered.snapshot.outbound_for(CHAN_BUS),
            vec![(sid(2), vec![(1, vec![9; 32])])]
        );
    }

    #[test]
    fn recover_state_reads_durable_truth_without_touching_log() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        wal.append(&cursor(1, 5)).unwrap();
        wal.append(&WalRecord::MemberJoined {
            info: smc_types::ServiceInfo::new(sid(9), "sensor.spo2"),
        })
        .unwrap();

        // A pure read: appended records are visible, and the read can
        // repeat without perturbing later appends or reopen.
        let truth = wal.recover_state().expect("recover");
        assert_eq!(truth.cursors_for(CHAN_BUS), vec![(sid(1), 7, 5)]);
        assert_eq!(truth.members.len(), 1);
        assert_eq!(truth.members[0].id, sid(9));

        wal.append(&cursor(1, 6)).unwrap();
        let truth = wal.recover_state().expect("recover again");
        assert_eq!(truth.cursors_for(CHAN_BUS), vec![(sid(1), 7, 6)]);

        drop(wal);
        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.replayed, 3, "recover_state left the log intact");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        wal.append(&cursor(1, 5)).unwrap();
        wal.append(&cursor(1, 6)).unwrap();
        drop(wal);
        backend.inject_torn_tail();

        let (wal, recovered) = open_mem(&backend);
        assert!(recovered.truncated, "a torn tail must be reported");
        assert_eq!(recovered.replayed, 2, "records before the tear survive");
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 6)]
        );

        // New appends land in a fresh segment and survive another reopen.
        wal.append(&cursor(1, 7)).unwrap();
        drop(wal);
        let (_, again) = open_mem(&backend);
        assert_eq!(again.snapshot.cursors_for(CHAN_BUS), vec![(sid(1), 7, 7)]);
    }

    #[test]
    fn corrupt_record_is_skipped() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        wal.append(&cursor(1, 5)).unwrap();
        wal.append(&cursor(1, 6)).unwrap();
        drop(wal);
        backend.corrupt_tail_record();

        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.skipped, 1, "the corrupt record is dropped");
        assert_eq!(recovered.replayed, 1, "the intact record still replays");
        assert!(!recovered.truncated);
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 5)]
        );
    }

    #[test]
    fn fsync_failure_propagates_to_append() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        backend.fail_fsync_after(1);
        wal.append(&cursor(1, 5)).unwrap();
        let err = wal
            .append(&cursor(1, 6))
            .expect_err("fsync fault must fail the append");
        assert!(matches!(err, Error::Io(_)));
        backend.heal_fsync();
        wal.append(&cursor(1, 6)).unwrap();
    }

    #[test]
    fn segments_rotate_and_all_replay() {
        let backend = MemBackend::new();
        let config = WalConfig {
            segment_max_bytes: 64,
            sync_each_append: true,
        };
        let (wal, _) = Wal::open(Arc::new(backend.clone()), config.clone()).unwrap();
        for i in 1..=20 {
            wal.append(&cursor(1, i)).unwrap();
        }
        drop(wal);
        assert!(
            backend.segments().unwrap().len() > 1,
            "64-byte segments must have rotated: {:?}",
            backend.segments().unwrap()
        );
        let (_, recovered) = Wal::open(Arc::new(backend.clone()), config).unwrap();
        assert_eq!(recovered.replayed, 20);
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 20)]
        );
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        for i in 1..=5 {
            wal.append(&cursor(1, i)).unwrap();
        }
        let mut snap = CoreSnapshot::default();
        snap.apply(&cursor(1, 5));
        wal.snapshot(&snap).unwrap();
        assert_eq!(
            backend.segments().unwrap().len(),
            1,
            "compaction removes old segments"
        );
        wal.append(&cursor(1, 6)).unwrap();
        assert_eq!(wal.metrics().snapshots, 1);
        drop(wal);

        let (_, recovered) = open_mem(&backend);
        assert_eq!(
            recovered.replayed, 1,
            "only the post-snapshot record replays"
        );
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 6)]
        );
    }

    #[test]
    fn corrupt_snapshot_recovers_empty_not_panicking() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        let mut snap = CoreSnapshot::default();
        snap.apply(&cursor(1, 5));
        wal.snapshot(&snap).unwrap();
        drop(wal);
        // Flip a payload byte so the snapshot checksum no longer holds.
        {
            let mut blob = backend.read_snapshot().unwrap().unwrap();
            let last = blob.len() - 1;
            blob[last] ^= 0xFF;
            backend.write_snapshot(&blob).unwrap();
        }
        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.skipped, 1, "the corrupt snapshot is counted");
        assert!(recovered.snapshot.cursors_for(CHAN_BUS).is_empty());
    }

    #[test]
    fn noop_backend_retains_nothing() {
        let backend = Arc::new(NoopBackend);
        let (wal, _) = Wal::open(backend.clone(), WalConfig::default()).unwrap();
        wal.append(&cursor(1, 5)).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(backend, WalConfig::default()).unwrap();
        assert_eq!(recovered.replayed, 0);
        assert_eq!(recovered.snapshot, CoreSnapshot::default());
    }

    #[test]
    fn metrics_count_appends_and_fsyncs() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        wal.append(&cursor(1, 1)).unwrap();
        wal.append(&cursor(1, 2)).unwrap();
        let m = wal.metrics();
        assert_eq!(m.records_appended, 2);
        assert_eq!(m.fsyncs, 2);
        assert!(m.bytes_appended > 2 * RECORD_HEADER_LEN as u64);
    }

    #[test]
    fn file_backend_round_trips() {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smc-wal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let backend = Arc::new(FileBackend::open(&dir).unwrap());
        let (wal, _) = Wal::open(backend.clone(), WalConfig::default()).unwrap();
        wal.append(&cursor(1, 5)).unwrap();
        let mut snap = CoreSnapshot::default();
        snap.apply(&cursor(2, 9));
        wal.snapshot(&snap).unwrap();
        wal.append(&cursor(1, 6)).unwrap();
        drop(wal);

        let (_, recovered) = Wal::open(backend, WalConfig::default()).unwrap();
        assert_eq!(recovered.replayed, 1);
        let mut cursors = recovered.snapshot.cursors_for(CHAN_BUS);
        cursors.sort_unstable_by_key(|&(id, _, _)| id);
        assert_eq!(cursors, vec![(sid(1), 7, 6), (sid(2), 7, 9)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_channel_journal_tags_records() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        let wal = Arc::new(wal);
        let bus = WalChannelJournal::new(Arc::clone(&wal), CHAN_BUS);
        let disco = WalChannelJournal::new(Arc::clone(&wal), CHAN_DISCOVERY);
        bus.on_deliver(sid(1), 3, 9, &[1, 2]).unwrap();
        disco.on_enqueue(sid(2), 1, &[5, 6]).unwrap();
        bus.on_acked(sid(3), 4).unwrap();
        disco.on_forget(sid(2)).unwrap();
        drop(bus);
        drop(disco);
        drop(wal);

        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.replayed, 4);
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 3, 10)],
            "a cursor-only deliver advances past the delivered seq"
        );
        assert!(
            recovered.snapshot.pending_rx_for(CHAN_BUS).is_empty(),
            "cursor-only journals retain no payloads"
        );
        assert!(recovered.snapshot.cursors_for(CHAN_DISCOVERY).is_empty());
        assert!(recovered.snapshot.outbound_for(CHAN_DISCOVERY).is_empty());
    }

    #[test]
    fn rx_retaining_journal_keeps_payloads_until_consumed() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        let wal = Arc::new(wal);
        let bus = WalChannelJournal::with_rx_retention(Arc::clone(&wal), CHAN_BUS);
        assert!(bus.retains_rx());
        bus.on_deliver(sid(1), 3, 9, &[7, 7]).unwrap();
        drop(bus);
        drop(wal);

        // Crash between ack and routing: the payload must still be here.
        let (wal, recovered) = open_mem(&backend);
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 3, 10)]
        );
        assert_eq!(
            recovered.snapshot.pending_rx_for(CHAN_BUS),
            vec![(sid(1), 3, 9, vec![7, 7])],
            "acked-but-unrouted message survives with its payload"
        );
        let bus = WalChannelJournal::with_rx_retention(Arc::new(wal), CHAN_BUS);
        bus.on_consumed(sid(1), 9).unwrap();

        let (_, recovered) = open_mem(&backend);
        assert!(
            recovered.snapshot.pending_rx_for(CHAN_BUS).is_empty(),
            "consumption releases the retained payload"
        );
    }

    #[test]
    fn snapshot_with_retains_records_appended_during_capture() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        let wal = Arc::new(wal);
        for i in 1..=3 {
            wal.append(&cursor(1, i)).unwrap();
        }
        // The capture closure plays a journalling thread that slips a
        // record in during the checkpoint window (after the boundary
        // rotation, before old segments are removed) which the captured
        // state does NOT include — the race REVIEW found: with
        // capture-then-delete-everything this record would vanish.
        let racer = Arc::clone(&wal);
        wal.snapshot_with(|| {
            racer.append(&cursor(1, 4)).unwrap();
            let mut snap = CoreSnapshot::default();
            snap.apply(&cursor(1, 3));
            Ok(snap)
        })
        .unwrap();

        let (_, recovered) = open_mem(&backend);
        assert_eq!(
            recovered.replayed, 1,
            "the racing record survives compaction in a retained segment"
        );
        assert_eq!(
            recovered.snapshot.cursors_for(CHAN_BUS),
            vec![(sid(1), 7, 4)],
            "replay on top of the snapshot lands the racing record's effect"
        );
    }

    #[test]
    fn snapshot_with_capture_error_leaves_log_intact() {
        let backend = MemBackend::new();
        let (wal, _) = open_mem(&backend);
        for i in 1..=3 {
            wal.append(&cursor(1, i)).unwrap();
        }
        let err = wal
            .snapshot_with(|| Err(Error::Invalid("capture failed".into())))
            .expect_err("capture error propagates");
        assert!(matches!(err, Error::Invalid(_)));
        assert_eq!(wal.metrics().snapshots, 0);
        drop(wal);

        let (_, recovered) = open_mem(&backend);
        assert_eq!(recovered.replayed, 3, "no segment was removed");
    }
}
