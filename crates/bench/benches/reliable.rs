//! Criterion microbenches: the reliability layer — per-message cost of
//! acknowledged exactly-once delivery over an ideal in-memory link, with
//! and without fragmentation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smc_transport::{Incoming, LinkConfig, ReliableChannel, ReliableConfig, SimNetwork};

fn pair(mtu: usize) -> (Arc<ReliableChannel>, Arc<ReliableChannel>, SimNetwork) {
    let mut link = LinkConfig::ideal();
    link.mtu = mtu;
    let net = SimNetwork::with_seed(link, 1);
    let config = ReliableConfig {
        poll_interval: Duration::from_millis(1),
        ..ReliableConfig::default()
    };
    let a = ReliableChannel::new(Arc::new(net.endpoint()), config.clone());
    let b = ReliableChannel::new(Arc::new(net.endpoint()), config);
    (a, b, net)
}

fn pump(a: &ReliableChannel, b: &ReliableChannel, payload: usize) {
    a.send(b.local_id(), vec![0xCD; payload]).expect("send");
    loop {
        match b.recv(Some(Duration::from_secs(10))).expect("recv") {
            Incoming::Reliable { .. } => break,
            Incoming::Unreliable { .. } => {}
        }
    }
}

fn bench_reliable_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable_delivery");
    for &payload in &[64usize, 1024, 8192] {
        let (a, b, _net) = pair(1400);
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::new("mtu1400", payload),
            &payload,
            |bench, _| {
                bench.iter(|| pump(&a, &b, payload));
            },
        );
    }
    group.finish();
}

fn bench_fragmentation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragmentation");
    let payload = 8192usize;
    for &mtu in &[256usize, 1400, 16384] {
        let (a, b, _net) = pair(mtu);
        group.bench_with_input(BenchmarkId::new("mtu", mtu), &mtu, |bench, _| {
            bench.iter(|| pump(&a, &b, payload));
        });
    }
    group.finish();
}

fn bench_window_ablation(c: &mut Criterion) {
    // DESIGN choice: per-peer send window (default 64). Measures the
    // throughput cost of small windows on a lossy link, where in-flight
    // depth hides retransmission latency.
    let mut group = c.benchmark_group("window_ablation");
    group.sample_size(20);
    for &window in &[1usize, 8, 64] {
        let mut link = LinkConfig::ideal().with_loss(0.05);
        link.mtu = 1400;
        let net = SimNetwork::with_seed(link, 99);
        let config = ReliableConfig {
            window,
            initial_rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(40),
            poll_interval: Duration::from_millis(2),
            ..ReliableConfig::default()
        };
        let a = ReliableChannel::new(Arc::new(net.endpoint()), config.clone());
        let b = ReliableChannel::new(Arc::new(net.endpoint()), config);
        group.bench_with_input(BenchmarkId::new("burst16", window), &window, |bench, _| {
            bench.iter(|| {
                for _ in 0..16 {
                    a.send(b.local_id(), vec![0xEE; 256]).expect("send");
                }
                let mut got = 0;
                while got < 16 {
                    if let Incoming::Reliable { .. } =
                        b.recv(Some(Duration::from_secs(10))).expect("recv")
                    {
                        got += 1;
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reliable_roundtrip,
    bench_fragmentation_cost,
    bench_window_ablation
);
criterion_main!(benches);
