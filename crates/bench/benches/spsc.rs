//! Criterion microbench for the SPSC ring connecting shard publishers
//! to their workers: single-thread push/pop round trips, the batched
//! `pop_into` drain, and a cross-thread ping through a full pipeline.
//!
//! The ring is the only structure on the sharded hot path that every
//! event crosses exactly once, so its per-item cost bounds the sharding
//! overhead: anything the ring costs here is what a shard pays over
//! calling `publish_batch` directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use smc_types::spsc;

/// Push/pop one item at a time through a warm ring — the uncontended
/// per-event cost a shard publisher pays.
fn push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_push_pop");
    group.throughput(Throughput::Elements(1));
    group.bench_function("u64", |b| {
        let (mut tx, mut rx) = spsc::ring::<u64>(1024);
        b.iter(|| {
            tx.push(std::hint::black_box(7)).expect("ring has room");
            std::hint::black_box(rx.pop().expect("just pushed"));
        });
    });
    group.finish();
}

/// Fill a burst then drain it with one `pop_into` — the worker-side
/// batched dequeue that amortises the tail load across the burst.
fn batched_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_pop_into");
    for burst in [8usize, 64, 256] {
        group.throughput(Throughput::Elements(burst as u64));
        group.bench_with_input(BenchmarkId::from_parameter(burst), &burst, |b, &burst| {
            let (mut tx, mut rx) = spsc::ring::<u64>(1024);
            let mut out = Vec::with_capacity(burst);
            b.iter(|| {
                for i in 0..burst as u64 {
                    tx.push(i).expect("ring has room");
                }
                out.clear();
                let n = rx.pop_into(&mut out, burst);
                assert_eq!(n, burst);
                std::hint::black_box(&out);
            });
        });
    }
    group.finish();
}

/// Stream items across a real thread boundary — producer and consumer
/// running concurrently, the shard deployment shape.
fn cross_thread(c: &mut Criterion) {
    const ITEMS: u64 = 16_384;
    let mut group = c.benchmark_group("spsc_cross_thread");
    group.throughput(Throughput::Elements(ITEMS));
    group.bench_function("stream_16k", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = spsc::ring::<u64>(1024);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..ITEMS {
                        let mut item = i;
                        while let Err(back) = tx.push(item) {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                });
                let mut seen = 0u64;
                let mut buf = Vec::with_capacity(256);
                while seen < ITEMS {
                    buf.clear();
                    let n = rx.pop_into(&mut buf, 256);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    seen += n as u64;
                }
                assert_eq!(seen, ITEMS);
            });
        });
    });
    group.finish();
}

criterion_group!(benches, push_pop, batched_drain, cross_thread);
criterion_main!(benches);
