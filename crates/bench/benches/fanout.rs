//! Criterion microbench for the publish hot path: one `publish` against
//! a pre-built subscription set, swept over fan-out width.
//!
//! Complements `src/bin/publish_throughput.rs` (which measures
//! multi-threaded end-to-end throughput against the locked baseline):
//! this one isolates the single-publish latency of the snapshot path —
//! one atomic route load, allocation-free matching, one shared encode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use smc_core::{DeliveryFrame, EventBus, EventSink};
use smc_match::EngineKind;
use smc_types::{Event, Filter, Result, ServiceId};

#[derive(Default)]
struct CountingSink {
    delivered: AtomicU64,
}

impl EventSink for CountingSink {
    fn deliver(&self, _event: &Event) -> Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
        // Touch the shared encoded buffer like a proxy enqueue would.
        let _ = frame.encoded();
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn bench_event() -> Event {
    Event::builder("bench.reading")
        .publisher(ServiceId::from_raw(0x9000))
        .seq(1)
        .attr("bpm", 120i64)
        .payload(vec![0xEE; 64])
        .build()
}

fn publish_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish_fanout");
    for fanout in [1usize, 8, 32, 128] {
        let bus = EventBus::new(EngineKind::FastForward);
        for i in 0..fanout {
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type("bench.reading"),
                Arc::new(CountingSink::default()) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
        }
        let event = bench_event();
        group.throughput(Throughput::Elements(fanout as u64));
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| bus.publish(event.clone()).expect("publish"));
        });
    }
    group.finish();
}

fn publish_unmatched(c: &mut Criterion) {
    // The cheapest possible publish: nothing matches. Measures the fixed
    // per-publish overhead of the snapshot load + match + metrics.
    let bus = EventBus::new(EngineKind::FastForward);
    for i in 0..32usize {
        bus.subscribe(
            ServiceId::from_raw(0x100 + i as u64),
            Filter::for_type("bench.other"),
            Arc::new(CountingSink::default()) as Arc<dyn EventSink>,
        )
        .expect("subscribe");
    }
    let event = bench_event();
    c.bench_function("publish_unmatched_32subs", |b| {
        b.iter(|| bus.publish(event.clone()).expect("publish"));
    });
}

criterion_group!(benches, publish_fanout, publish_unmatched);
criterion_main!(benches);
