//! Criterion microbenches: wire-codec encode/decode cost — the
//! translation work the paper identifies as the Siena bus's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smc_types::codec::{from_bytes, to_bytes};
use smc_types::{Event, Filter, Op, Packet, ServiceId};

fn event(payload: usize) -> Event {
    Event::builder("smc.sensor.reading")
        .attr("sensor", "heart-rate")
        .attr("bpm", 72i64)
        .attr("quality", 0.98f64)
        .publisher(ServiceId::from_raw(0xAB))
        .seq(42)
        .timestamp_micros(1_234_567)
        .payload(vec![0x5Au8; payload])
        .build()
}

fn bench_event_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_codec");
    for &payload in &[0usize, 500, 2000, 5000] {
        let ev = event(payload);
        let bytes = to_bytes(&ev);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", payload), &payload, |b, _| {
            b.iter(|| to_bytes(std::hint::black_box(&ev)))
        });
        group.bench_with_input(BenchmarkId::new("decode", payload), &payload, |b, _| {
            b.iter(|| from_bytes::<Event>(std::hint::black_box(&bytes)).expect("decode"))
        });
    }
    group.finish();
}

fn bench_packet_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");
    let packets = vec![
        ("publish", Packet::publish(event(500))),
        (
            "subscribe",
            Packet::Subscribe {
                request_id: 7,
                filter: Filter::for_type("smc.sensor.reading").with(("bpm", Op::Gt, 120i64)),
            },
        ),
        (
            "heartbeat",
            Packet::Heartbeat {
                member: ServiceId::from_raw(0xAB),
                seq: 9,
            },
        ),
    ];
    for (name, packet) in packets {
        let bytes = to_bytes(&packet);
        group.bench_function(BenchmarkId::new("roundtrip", name), |b| {
            b.iter(|| {
                let bytes = to_bytes(std::hint::black_box(&packet));
                from_bytes::<Packet>(&bytes).expect("decode")
            })
        });
        let _ = bytes;
    }
    group.finish();
}

criterion_group!(benches, bench_event_codec, bench_packet_codec);
criterion_main!(benches);
