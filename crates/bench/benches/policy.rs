//! Criterion microbenches: obligation-policy evaluation cost as the
//! policy store grows — the per-event management overhead a cell pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smc_policy::{ActionSpec, Expr, ObligationPolicy, Policy, PolicyService};
use smc_types::{Event, Filter, Op};

fn service_with(policies: usize) -> PolicyService {
    let service = PolicyService::new();
    for i in 0..policies {
        service
            .add(Policy::Obligation(
                ObligationPolicy::new(
                    format!("p{i}"),
                    Filter::for_type("smc.sensor.reading").with((
                        "sensor",
                        Op::Eq,
                        format!("sensor-{}", i % 8),
                    )),
                )
                .when(Expr::parse(&format!("bpm > {}", 60 + i % 100)).expect("fixture"))
                .then(ActionSpec::Log("hit".into())),
            ))
            .expect("add");
    }
    service
}

fn bench_on_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_on_event");
    let event = Event::builder("smc.sensor.reading")
        .attr("sensor", "sensor-3")
        .attr("bpm", 120i64)
        .build();
    for &n in &[4usize, 32, 128] {
        let service = service_with(n);
        group.bench_with_input(BenchmarkId::new("policies", n), &n, |b, _| {
            b.iter(|| service.on_event(std::hint::black_box(&event)))
        });
    }
    group.finish();
}

fn bench_authorisation_check(c: &mut Criterion) {
    let service = PolicyService::new();
    for p in smc_policy::ehealth_baseline() {
        service.add(p).expect("add");
    }
    c.bench_function("policy_check", |b| {
        b.iter(|| {
            service.check(
                std::hint::black_box("sensor"),
                smc_policy::ActionClass::Publish,
                std::hint::black_box("smc.sensor.reading"),
            )
        })
    });
}

criterion_group!(benches, bench_on_event, bench_authorisation_check);
criterion_main!(benches);
