//! Criterion microbenches: matching-engine cost per event, across
//! engines, subscription counts and payload sizes — the per-component
//! view behind Fig 4's end-to-end curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smc_match::{EngineKind, Matcher};
use smc_types::{Event, Filter, Op, ServiceId, Subscription, SubscriptionId};

fn build_engine(kind: EngineKind, subs: usize) -> Box<dyn Matcher> {
    let mut engine = kind.build();
    for i in 0..subs {
        // A spread of realistic management filters.
        let filter = match i % 4 {
            0 => Filter::for_type("smc.sensor.reading").with(("bpm", Op::Gt, (50 + i) as i64)),
            1 => Filter::for_type("smc.alarm").with(("severity", Op::Ge, (i % 5) as i64)),
            2 => Filter::for_type("smc.sensor.reading").with((
                "sensor",
                Op::Eq,
                format!("sensor-{}", i % 8),
            )),
            _ => Filter::any().with(("member.device_type", Op::Prefix, "sensor.")),
        };
        engine
            .subscribe(Subscription::new(
                SubscriptionId(i as u64),
                ServiceId::from_raw(i as u64),
                filter,
            ))
            .expect("subscribe");
    }
    engine
}

fn event(payload: usize) -> Event {
    Event::builder("smc.sensor.reading")
        .attr("sensor", "sensor-3")
        .attr("bpm", 120i64)
        .publisher(ServiceId::from_raw(999))
        .seq(1)
        .payload(vec![0u8; payload])
        .build()
}

fn bench_engines_by_subs(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_by_subscriptions");
    for &subs in &[4usize, 16, 64, 256] {
        for kind in EngineKind::ALL {
            let mut engine = build_engine(kind, subs);
            let ev = event(0);
            group.bench_with_input(BenchmarkId::new(kind.as_str(), subs), &subs, |b, _| {
                b.iter(|| engine.matching_subscribers(std::hint::black_box(&ev)))
            });
        }
    }
    group.finish();
}

fn bench_engines_by_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_by_payload");
    for &payload in &[0usize, 500, 2000, 5000] {
        for kind in [EngineKind::Siena, EngineKind::FastForward] {
            let mut engine = build_engine(kind, 16);
            let ev = event(payload);
            group.bench_with_input(
                BenchmarkId::new(kind.as_str(), payload),
                &payload,
                |b, _| b.iter(|| engine.matching_subscribers(std::hint::black_box(&ev))),
            );
        }
    }
    group.finish();
}

fn bench_subscribe_unsubscribe(c: &mut Criterion) {
    let mut group = c.benchmark_group("subscription_churn");
    for kind in EngineKind::ALL {
        group.bench_function(kind.as_str(), |b| {
            let mut engine = build_engine(kind, 64);
            let mut next = 1_000u64;
            b.iter(|| {
                let id = SubscriptionId(next);
                next += 1;
                engine
                    .subscribe(Subscription::new(
                        id,
                        ServiceId::from_raw(1),
                        Filter::for_type("smc.alarm").with(("severity", Op::Ge, 3i64)),
                    ))
                    .expect("subscribe");
                engine.unsubscribe(id).expect("unsubscribe");
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines_by_subs,
    bench_engines_by_payload,
    bench_subscribe_unsubscribe
);
criterion_main!(benches);
