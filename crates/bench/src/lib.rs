//! Benchmark harness reproducing the paper's evaluation (§V).
//!
//! The testbed mirrors the paper's: the event bus runs on a simulated
//! PDA ([`CpuProfile::ipaq_hx4700`]) linked to the measurement endpoints
//! over the 1.5 ms / 575 KB/s IP-over-USB profile
//! ([`LinkConfig::usb_ip_link`]). Each figure harness builds the same bus
//! twice — once per matching engine — so the Siena-vs-C comparison is an
//! emergent property of genuinely different code paths, not a constant.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_core::{RemoteClient, SmcCell, SmcConfig};
use smc_discovery::{AgentConfig, DiscoveryConfig};
use smc_match::EngineKind;
use smc_transport::{CpuProfile, LinkConfig, ReliableChannel, ReliableConfig, SimNetwork};
use smc_types::{Event, Filter, Result, ServiceId, ServiceInfo};

/// How long harnesses wait on any single blocking step.
pub const HARNESS_TIMEOUT: Duration = Duration::from_secs(30);

/// Reliability tuning used by every harness endpoint.
pub fn bench_reliable() -> ReliableConfig {
    ReliableConfig {
        // Generous RTO: the measured link is lossless, and a pipelined
        // burst can legitimately take seconds to drain — premature
        // retransmission would pollute the throughput measurement.
        initial_rto: Duration::from_secs(3),
        max_rto: Duration::from_secs(6),
        poll_interval: Duration::from_millis(5),
        window: 64,
        ..ReliableConfig::default()
    }
}

/// A reproduction of the paper's two-machine testbed.
#[derive(Debug)]
pub struct Testbed {
    /// The simulated radio/serial environment.
    pub net: SimNetwork,
    /// The cell under test (bus on the "PDA").
    pub cell: Arc<SmcCell>,
    /// The publishing endpoint (on the "laptop").
    pub publisher: Arc<RemoteClient>,
    /// The subscribing endpoint (on the "laptop").
    pub subscriber: Arc<RemoteClient>,
}

/// Knobs of a testbed run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The matching engine for the bus.
    pub engine: EngineKind,
    /// The link profile between endpoints and the bus.
    pub link: LinkConfig,
    /// The CPU cost model of the bus host.
    pub cpu: CpuProfile,
    /// Random seed for the simulated network.
    pub seed: u64,
}

impl TestbedConfig {
    /// The paper's testbed with the given engine.
    pub fn paper(engine: EngineKind) -> Self {
        TestbedConfig {
            engine,
            link: LinkConfig::usb_ip_link(),
            cpu: CpuProfile::ipaq_hx4700(),
            seed: 42,
        }
    }

    /// An idealised testbed (no link delays, native CPU) for sanity runs.
    pub fn ideal(engine: EngineKind) -> Self {
        TestbedConfig {
            engine,
            link: LinkConfig::ideal(),
            cpu: CpuProfile::native(),
            seed: 42,
        }
    }
}

impl Testbed {
    /// Brings up the cell and both endpoints, subscribes the subscriber
    /// to the benchmark event type, and installs the link profile on the
    /// measured paths (joins happen over an ideal link so setup is fast).
    ///
    /// # Errors
    ///
    /// Propagates join/subscribe failures.
    pub fn start(config: &TestbedConfig) -> Result<Testbed> {
        let net = SimNetwork::with_seed(LinkConfig::ideal(), config.seed);
        let smc_config = SmcConfig {
            engine: config.engine,
            cpu_profile: config.cpu.clone(),
            discovery: DiscoveryConfig {
                beacon_interval: Duration::from_millis(25),
                lease: Duration::from_secs(600),
                grace: Duration::from_secs(600),
                ..DiscoveryConfig::default()
            },
            reliable: bench_reliable(),
            ..SmcConfig::default()
        };
        let cell = SmcCell::start(
            Arc::new(net.endpoint()),
            Arc::new(net.endpoint()),
            smc_config,
        );
        let connect = |device_type: &str| {
            RemoteClient::connect(
                ServiceInfo::new(ServiceId::NIL, device_type).with_role("bench"),
                ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable()),
                AgentConfig::default(),
                HARNESS_TIMEOUT,
            )
        };
        let publisher = connect("bench.publisher")?;
        let subscriber = connect("bench.subscriber")?;
        subscriber.subscribe(Filter::for_type("bench.event"), HARNESS_TIMEOUT)?;

        // Install the measured link on publisher→bus and bus→subscriber,
        // and make it the network default so `max_datagram` (which the
        // reliability layer sizes fragments from) reflects the profile's
        // MTU — crucial for small-MTU radios like ZigBee.
        let bus = cell.bus_endpoint();
        net.set_link_between(publisher.local_id(), bus, config.link.clone());
        net.set_link_between(subscriber.local_id(), bus, config.link.clone());
        net.set_default_link(config.link.clone());

        Ok(Testbed {
            net,
            cell,
            publisher,
            subscriber,
        })
    }

    /// Builds one benchmark event with `payload` bytes of body.
    pub fn event(payload: usize) -> Event {
        Event::builder("bench.event")
            .payload(vec![0xA5u8; payload])
            .build()
    }

    /// Measures end-to-end response time (publish → delivery at the
    /// subscriber) for `samples` events of `payload` bytes each,
    /// one-at-a-time (no pipelining), returning the per-event times.
    ///
    /// # Errors
    ///
    /// Propagates publish/receive failures.
    pub fn measure_response(&self, payload: usize, samples: usize) -> Result<Vec<Duration>> {
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            self.publisher.publish_nowait(Self::event(payload))?;
            let _ = self.subscriber.next_event(HARNESS_TIMEOUT)?;
            times.push(start.elapsed());
        }
        Ok(times)
    }

    /// Measures sustained payload throughput: the publisher pipelines
    /// `events` events of `payload` bytes; the clock stops when the last
    /// one reaches the subscriber. Returns payload kilobytes per second.
    ///
    /// # Errors
    ///
    /// Propagates publish/receive failures.
    pub fn measure_throughput(&self, payload: usize, events: usize) -> Result<f64> {
        let start = Instant::now();
        for _ in 0..events {
            self.publisher.publish_nowait(Self::event(payload))?;
        }
        for _ in 0..events {
            let _ = self.subscriber.next_event(HARNESS_TIMEOUT)?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        Ok((payload * events) as f64 / 1024.0 / elapsed)
    }

    /// Tears the testbed down.
    pub fn shutdown(&self) {
        self.publisher.shutdown();
        self.subscriber.shutdown();
        self.cell.shutdown();
        self.net.shutdown();
    }
}

/// Summary statistics over duration samples.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct Stats {
    pub mean_ms: f64,
    pub min_ms: f64,
    pub max_ms: f64,
    pub p95_ms: f64,
}

/// Computes [`Stats`] over a sample set.
///
/// # Panics
///
/// Panics on an empty sample set.
pub fn stats(samples: &[Duration]) -> Stats {
    assert!(!samples.is_empty(), "no samples");
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    Stats {
        mean_ms: mean,
        min_ms: ms[0],
        max_ms: *ms.last().expect("non-empty"),
        p95_ms: ms[((ms.len() - 1) as f64 * 0.95) as usize],
    }
}

/// Parses `--key value` style harness arguments with defaults.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    args: Vec<String>,
}

impl HarnessArgs {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        HarnessArgs {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// The value following `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_computed() {
        let s = stats(&[
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ]);
        assert!((s.mean_ms - 20.0).abs() < 1e-9);
        assert_eq!(s.min_ms, 10.0);
        assert_eq!(s.max_ms, 30.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn stats_empty_panics() {
        let _ = stats(&[]);
    }

    #[test]
    fn testbed_round_trips_ideal() {
        let bed = Testbed::start(&TestbedConfig::ideal(EngineKind::FastForward)).unwrap();
        let times = bed.measure_response(100, 3).unwrap();
        assert_eq!(times.len(), 3);
        let kbps = bed.measure_throughput(500, 20).unwrap();
        assert!(kbps > 0.0);
        bed.shutdown();
    }

    #[test]
    fn testbed_round_trips_paper_profile() {
        let mut cfg = TestbedConfig::paper(EngineKind::Siena);
        // Soften the CPU model so the test stays quick.
        cfg.cpu = CpuProfile {
            copy_rounds: 10,
            dispatch_spin: 100,
        };
        let bed = Testbed::start(&cfg).unwrap();
        let times = bed.measure_response(1000, 2).unwrap();
        // Two link hops of ≥0.6 ms each plus transmission.
        assert!(
            times.iter().all(|t| *t >= Duration::from_millis(1)),
            "{times:?}"
        );
        bed.shutdown();
    }
}
