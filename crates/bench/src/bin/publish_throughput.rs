//! Publish-path throughput bench: the lock-free snapshot bus against a
//! reconstruction of the pre-snapshot locked hot path, measured in the
//! same process and the same run.
//!
//! ```text
//! cargo run --release -p smc-bench --bin publish_throughput -- \
//!     [--events 20000] [--smoke] [--gate]
//! ```
//!
//! The sweep crosses publisher count × fan-out. For every cell the
//! arms do the same semantic work — match the event, skip the
//! publisher, hand each interested subscriber a deliverable packet —
//! but the baseline arm pays the old costs (three lock acquisitions per
//! publish, one event clone plus one full packet encode per subscriber)
//! while the snapshot arm publishes through the bus's batched hot path
//! ([`EventBus::publish_batch`]): one route-snapshot load, one matcher
//! scratch pass, one encode arena and one metrics flush per burst of
//! [`PUBLISH_BATCH`] events. The singular (per-event) snapshot path is
//! measured too and reported as `singular_speedup`, so the amortisation
//! win stays visible.
//!
//! Writes `results/BENCH_perf.json`. With `--gate`, the committed
//! `results/BENCH_perf.json` is read *first* and the run fails if the
//! fresh overall speedup drops below [`GATE_FRACTION`] of the committed
//! one — the CI regression gate.
//!
//! Fan-out 1 is tracked separately as `fanout1_ratio`. The singular
//! snapshot path historically ran 0.70–0.94× the locked path there (one
//! subscriber never amortises the shared encode); batching is exactly
//! the fix for that unamortised per-publish cost, so the gated floor
//! ([`FANOUT1_FLOOR`]) now demands the batched arm *wins* at fan-out 1
//! rather than merely not collapsing.
//!
//! A second, sharded sweep (`shards` × the same work) pushes the same
//! load through [`ShardedBus`] workers and records events/second plus
//! each cell's scaling against its own one-shard row — the multi-core
//! story. Raw throughput is machine-bound, so only the *scaling* ratio
//! is diffed by the sentinel, and only when the committed baseline
//! carries the dimension.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use parking_lot::Mutex;

use smc_bench::HarnessArgs;
use smc_core::{DeliveryFrame, EventBus, EventSink, ShardConfig, ShardedBus};
use smc_match::{EngineKind, Matcher};
use smc_telemetry::{CriticalPath, Hop, StageRow, TraceSink, Tracer};
use smc_types::codec::to_bytes;
use smc_types::{
    system_clock, Event, Filter, Packet, Result, ServiceId, Subscription, SubscriptionId, TraceId,
};

/// The regression gate: a fresh run must reach at least this fraction of
/// the committed overall speedup.
const GATE_FRACTION: f64 = 0.85;

/// The gate fraction when the fresh run and the committed baseline ran
/// at different `events_per_publisher` scales (a smoke run gated
/// against a full-run baseline): per-cell throughput is much noisier at
/// smoke scale, so the overall ratio gets more headroom. The sentinel
/// applies the same like-for-like rule per cell.
const SCALE_MISMATCH_GATE_FRACTION: f64 = 0.70;

/// Hard floor for the tracked fan-out-1 ratio. The singular snapshot
/// path lost here (0.70–0.94×, the unamortised shared encode); the
/// batched hot path amortises that fixed cost across the burst, so the
/// floor demands an outright win.
const FANOUT1_FLOOR: f64 = 1.0;

/// Events per coalesced publish on the batched snapshot arm — the
/// burst size one snapshot load, scratch pass, encode arena and
/// metrics flush are amortised over.
const PUBLISH_BATCH: usize = 64;

/// Repetitions per arm per sweep cell; each cell reports the best run.
/// Throughput noise on a shared host is one-sided — scheduler stalls
/// only ever slow a run down — so max-of-N is the low-variance
/// estimator, and it is what keeps the fan-out-1 floor from flapping
/// on single-core CI runners.
const MEASURE_REPS: usize = 2;

/// Counts deliveries and delivered bytes; the snapshot arm's sink takes
/// a reference-counted handle on the shared encoded frame, exactly as a
/// proxy enqueue does.
#[derive(Default)]
struct CountingSink {
    delivered: AtomicU64,
    bytes: AtomicU64,
}

impl EventSink for CountingSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(event.payload().len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
        let encoded = frame.encoded();
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn prefers_encoded(&self) -> bool {
        // Pay the wire encode exactly as a proxy enqueue does, so the
        // batched arm exercises the shared encode arena.
        true
    }
}

/// The pre-snapshot hot path, reconstructed for the baseline arm: the
/// matcher, the sink map and the tracer each behind their own mutex, a
/// fresh allocation for the match result, and one event clone plus one
/// packet encode per subscriber.
struct LockedBus {
    engine: Mutex<Box<dyn Matcher>>,
    sinks: Mutex<HashMap<ServiceId, Arc<CountingSink>>>,
    tracer: Mutex<Tracer>,
}

impl LockedBus {
    fn new(kind: EngineKind) -> Self {
        LockedBus {
            engine: Mutex::new(kind.build()),
            sinks: Mutex::new(HashMap::new()),
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    fn subscribe(&self, id: u64, subscriber: ServiceId, filter: Filter, sink: Arc<CountingSink>) {
        self.engine
            .lock()
            .subscribe(Subscription::new(SubscriptionId(id), subscriber, filter))
            .expect("baseline subscribe");
        self.sinks.lock().insert(subscriber, sink);
    }

    fn publish(&self, event: &Event) -> usize {
        let trace = TraceId::for_event(event.publisher(), event.seq());
        self.tracer.lock().record(trace, Hop::Published);
        let targets = self.engine.lock().matching_subscribers(event);
        let sinks = self.sinks.lock();
        let mut delivered = 0;
        for subscriber in targets {
            if subscriber == event.publisher() {
                continue;
            }
            if let Some(sink) = sinks.get(&subscriber) {
                let packet = Packet::Deliver {
                    event: event.clone(),
                    trace,
                };
                let bytes = to_bytes(&packet);
                sink.delivered.fetch_add(1, Ordering::Relaxed);
                sink.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                delivered += 1;
            }
        }
        delivered
    }
}

/// Records a [`Hop::Delivered`] per frame so the attribution pass can
/// split publish → match → deliver in wall-clock time; pays the shared
/// encode exactly as a proxy enqueue does.
struct AttributingSink {
    tracer: Tracer,
}

impl EventSink for AttributingSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        self.tracer.record(
            TraceId::for_event(event.publisher(), event.seq()),
            Hop::Delivered,
        );
        Ok(())
    }

    fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
        let _ = frame.encoded();
        self.tracer.record(frame.trace(), Hop::Delivered);
        Ok(())
    }
}

const EVENT_TYPE: &str = "bench.reading";

fn bench_event(publisher: u64) -> Event {
    Event::builder(EVENT_TYPE)
        .publisher(ServiceId::from_raw(0x9000 + publisher))
        .seq(1)
        .attr("bpm", 120i64)
        .payload(vec![0xEE; 64])
        .build()
}

/// Total deliveries recorded across `sinks`.
fn total_delivered(sinks: &[Arc<CountingSink>]) -> u64 {
    sinks
        .iter()
        .map(|s| s.delivered.load(Ordering::Relaxed))
        .sum()
}

/// Extracts `"speedup_total"` and `"events_per_publisher"` from a
/// committed results file, if present (hand-rolled: the repo carries no
/// JSON parser dependency). The scale disambiguates smoke-vs-full gate
/// comparisons.
fn read_committed_speedup(path: &str) -> Option<(f64, u64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = |key: &str| -> Option<f64> {
        let k = format!("\"{key}\":");
        let at = text.find(&k)? + k.len();
        let rest = text[at..].trim_start();
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let speedup = field("speedup_total")?;
    let scale = field("events_per_publisher").unwrap_or(0.0) as u64;
    Some((speedup, scale))
}

fn main() {
    let args = HarnessArgs::from_env();
    let smoke = args.has("smoke");
    let gate = args.has("gate");
    let events_each: usize = args.get("events", if smoke { 4_000 } else { 20_000 });
    let publisher_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
    // The smoke sweep keeps the full fan-out axis: fan-out 1 so the
    // tracked single-subscriber ratio is exercised on every CI run, and
    // the rest so the gated geomean stays comparable to the committed
    // full-run baseline (smoke only trims events and publisher counts).
    let fanout_sweep: &[usize] = &[1, 8, 32];

    let committed_speedup = if gate {
        read_committed_speedup("results/BENCH_perf.json")
    } else {
        None
    };

    eprintln!("# publish throughput sweep ({events_each} events/publisher, smoke: {smoke})");
    eprintln!(
        "{:>10} {:>7} {:>16} {:>16} {:>16} {:>9}",
        "publishers", "fanout", "locked_ev/s", "singular_ev/s", "batched_ev/s", "speedup"
    );

    // The attribution pass runs far fewer events than the timed arms:
    // it only needs stable stage *shares*, not throughput.
    let attr_events: usize = args.get("attr-events", if smoke { 200 } else { 1_000 });

    struct Row {
        publishers: usize,
        fanout: usize,
        locked: f64,
        singular: f64,
        batched: f64,
        /// Batched snapshot arm vs the locked baseline — the gated one.
        speedup: f64,
        /// Per-event snapshot arm vs the locked baseline — advisory.
        singular_speedup: f64,
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut stage_tables: Vec<Vec<StageRow>> = Vec::new();
    let best_of = |measure: &dyn Fn() -> f64| {
        (0..MEASURE_REPS)
            .map(|_| measure())
            .fold(f64::MIN, f64::max)
    };
    for &publishers in publisher_sweep {
        for &fanout in fanout_sweep {
            let locked = best_of(&|| measure_locked(publishers, fanout, events_each));
            let singular = best_of(&|| measure_snapshot(publishers, fanout, events_each));
            let batched = best_of(&|| measure_batched(publishers, fanout, events_each));
            let speedup = batched / locked.max(1.0);
            let singular_speedup = singular / locked.max(1.0);
            let stages = attribute_snapshot(publishers, fanout, attr_events);
            let deliver_share = stages
                .iter()
                .find(|s| s.stage == "deliver")
                .map(|s| s.share_milli)
                .unwrap_or(0);
            eprintln!(
                "{publishers:>10} {fanout:>7} {locked:>16.0} {singular:>16.0} {batched:>16.0} \
                 {speedup:>8.2}x deliver={}m",
                deliver_share
            );
            rows.push(Row {
                publishers,
                fanout,
                locked,
                singular,
                batched,
                speedup,
                singular_speedup,
            });
            stage_tables.push(stages);
        }
    }

    // The sharded sweep: the same coalesced hot path, spread across
    // worker threads by publisher id. Raw events/second is recorded per
    // cell along with its scaling against the one-shard row — on a
    // single-core host the scaling hovers near 1.0 and that is the
    // honest answer, so `cores` is recorded beside it.
    let shard_sweep: &[usize] = &[1, 2, 4];
    let shard_publishers = 4usize;
    let shard_fanout = 8usize;
    let shard_events = if smoke { events_each / 2 } else { events_each };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# sharded sweep ({shard_publishers} publishers, fan-out {shard_fanout}, {cores} core(s))"
    );
    let mut shard_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in shard_sweep {
        let throughput =
            best_of(&|| measure_sharded(shards, shard_publishers, shard_fanout, shard_events));
        let scale = shard_rows
            .first()
            .map_or(1.0, |(_, one, _)| throughput / one.max(1.0));
        eprintln!("  shards={shards}: {throughput:>12.0} ev/s  scale_vs_one_shard={scale:.2}x");
        shard_rows.push((shards, throughput, scale));
    }

    // Overall figure: geometric mean of the per-cell speedups where the
    // snapshot path is meant to win (fan-out > 1), so no single cell
    // dominates. Fan-out-1 cells carry a known, accepted gap and get
    // their own tracked ratio instead of dragging the gated number.
    let gated: Vec<f64> = rows
        .iter()
        .filter(|r| r.fanout > 1)
        .map(|r| r.speedup)
        .collect();
    assert!(!gated.is_empty(), "sweep must cover fan-out > 1");
    let speedup_total = (gated.iter().map(|s| s.ln()).sum::<f64>() / gated.len() as f64).exp();
    let fanout1: Vec<f64> = rows
        .iter()
        .filter(|r| r.fanout == 1)
        .map(|r| r.speedup)
        .collect();
    assert!(
        !fanout1.is_empty(),
        "sweep must exercise the fan-out-1 snapshot path"
    );
    let fanout1_ratio = (fanout1.iter().map(|s| s.ln()).sum::<f64>() / fanout1.len() as f64).exp();
    let shared = payload_sharing_proof();
    let arena_shared = arena_sharing_proof();
    eprintln!("overall speedup (geomean, fan-out > 1): {speedup_total:.2}x");
    eprintln!("fan-out-1 ratio (batched arm, floor {FANOUT1_FLOOR}x): {fanout1_ratio:.2}x");
    eprintln!("payload buffer shared across fan-out: {shared}");
    eprintln!("encode arena shared across a batch: {arena_shared}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"publish_throughput\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"events_per_publisher\": {events_each}, \"engine\": \"fastforward\", \
         \"payload_bytes\": 64, \"publish_batch\": {PUBLISH_BATCH}, \"cores\": {cores}, \
         \"smoke\": {smoke}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let stages: Vec<String> = stage_tables[i]
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\": \"{}\", \"kind\": \"{}\", \"count\": {}, \
                     \"total_micros\": {}, \"share_milli\": {}, \"p50_micros\": {}, \
                     \"p95_micros\": {}, \"p99_micros\": {}}}",
                    s.stage,
                    s.kind.name(),
                    s.count,
                    s.total_micros,
                    s.share_milli,
                    s.p50_micros,
                    s.p95_micros,
                    s.p99_micros
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"publishers\": {}, \"fanout\": {}, \
             \"locked_events_per_sec\": {:.0}, \
             \"snapshot_events_per_sec\": {:.0}, \
             \"batched_events_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"singular_speedup\": {:.3}, \
             \"stages\": [{}]}}{comma}",
            row.publishers,
            row.fanout,
            row.locked,
            row.singular,
            row.batched,
            row.speedup,
            row.singular_speedup,
            stages.join(", ")
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"multicore\": [\n");
    for (i, (shards, throughput, scale)) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"publishers\": {shard_publishers}, \
             \"fanout\": {shard_fanout}, \"events_per_sec\": {throughput:.0}, \
             \"scale_vs_one_shard\": {scale:.3}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_total\": {speedup_total:.3},");
    let _ = writeln!(json, "  \"gate_fraction\": {GATE_FRACTION},");
    let _ = writeln!(json, "  \"fanout1_ratio\": {fanout1_ratio:.3},");
    let _ = writeln!(json, "  \"fanout1_floor\": {FANOUT1_FLOOR},");
    let _ = writeln!(json, "  \"payload_buffer_shared_across_fanout\": {shared},");
    let _ = writeln!(
        json,
        "  \"encode_arena_shared_across_batch\": {arena_shared}"
    );
    json.push_str("}\n");

    let path = std::path::Path::new("results");
    let target = if path.is_dir() {
        path.join("BENCH_perf.json")
    } else {
        std::path::PathBuf::from("BENCH_perf.json")
    };
    std::fs::write(&target, &json).expect("write BENCH_perf.json");
    eprintln!("wrote {}", target.display());

    if !shared {
        eprintln!("FAIL: fan-out did not share one payload buffer");
        std::process::exit(1);
    }
    if !arena_shared {
        eprintln!("FAIL: a coalesced batch did not share one encode arena");
        std::process::exit(1);
    }
    if fanout1_ratio < FANOUT1_FLOOR {
        eprintln!(
            "FAIL: fan-out-1 ratio {fanout1_ratio:.2}x fell below the {FANOUT1_FLOOR}x floor \
             (the batched hot path must amortise the per-publish cost a single subscriber \
             cannot; losing here is a real regression)"
        );
        std::process::exit(1);
    }
    if let Some((committed, committed_scale)) = committed_speedup {
        let like_for_like = committed_scale == events_each as u64;
        let fraction = if like_for_like {
            GATE_FRACTION
        } else {
            eprintln!(
                "gate: committed baseline ran {committed_scale} events/publisher, this run \
                 {events_each} — scale mismatch, gating at the relaxed \
                 {SCALE_MISMATCH_GATE_FRACTION} fraction"
            );
            SCALE_MISMATCH_GATE_FRACTION
        };
        let floor = committed * fraction;
        if speedup_total < floor {
            eprintln!(
                "FAIL: speedup {speedup_total:.2}x below {fraction} × committed \
                 {committed:.2}x = {floor:.2}x"
            );
            std::process::exit(1);
        }
        eprintln!("gate ok: {speedup_total:.2}x ≥ {fraction} × {committed:.2}x");
    }
}

/// One sweep cell on the baseline arm; returns events/second.
fn measure_locked(publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(LockedBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                i as u64,
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink),
            );
            sink
        })
        .collect();
    let barrier = Arc::new(Barrier::new(publishers + 1));
    // The scope closure returns the Instant taken at barrier release;
    // `scope` itself returns only after every publisher joined, so the
    // elapsed time spans exactly the publishing work.
    let started = {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    barrier.wait();
                    for _ in 0..events_each {
                        bus.publish(&event);
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "baseline arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sweep cell on the snapshot arm; returns events/second.
fn measure_snapshot(publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let barrier = Arc::new(Barrier::new(publishers + 1));
    let started = {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    barrier.wait();
                    for _ in 0..events_each {
                        bus.publish(event.clone()).expect("publish");
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "snapshot arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sweep cell on the batched snapshot arm: the same publishers and
/// subscriptions, but each thread publishes bursts of [`PUBLISH_BATCH`]
/// events through [`EventBus::publish_batch`]; returns events/second.
fn measure_batched(publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let barrier = Arc::new(Barrier::new(publishers + 1));
    let started = {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    let burst: Vec<Event> = (0..PUBLISH_BATCH).map(|_| event.clone()).collect();
                    barrier.wait();
                    let mut left = events_each;
                    while left > 0 {
                        let n = left.min(PUBLISH_BATCH);
                        bus.publish_batch(&burst[..n]).expect("publish batch");
                        left -= n;
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "batched arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sharded sweep cell: `publishers` threads pushing through their
/// pinned [`ShardPublisher`] handles into a `shards`-worker
/// [`ShardedBus`]; returns events/second including the final flush.
fn measure_sharded(shards: usize, publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let sharded = ShardedBus::with_config(
        Arc::clone(&bus),
        ShardConfig {
            shards,
            ring_capacity: 2048,
            max_batch: PUBLISH_BATCH,
        },
    );
    let barrier = Arc::new(Barrier::new(publishers + 1));
    let started = {
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                // Publisher ids 0..publishers spread round-robin over
                // the shards (shard = id % shards).
                let mut handle = sharded.publisher(ServiceId::from_raw(0x9000 + p as u64));
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    barrier.wait();
                    for _ in 0..events_each {
                        handle.publish(event.clone()).expect("sharded publish");
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    sharded.flush();
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "sharded arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sweep cell's wall-clock stage attribution on the snapshot arm:
/// a separate, traced pass over `events_each` events per publisher
/// (distinct seqs, so every publish is its own journey), folded through
/// [`CriticalPath`]. Published→Matched lands in "match" (snapshot load
/// plus match), Matched→Delivered in "deliver" (the shared encode plus
/// per-subscriber delivery) — at fan-out 1 the unamortised encode shows
/// up here, which is exactly the 0.70–0.94× gap's home.
fn attribute_snapshot(publishers: usize, fanout: usize, events_each: usize) -> Vec<StageRow> {
    let capacity = publishers * events_each * (fanout + 2) + 64;
    let ring = Arc::new(TraceSink::with_capacity(capacity));
    let tracer = Tracer::new(Arc::clone(&ring), system_clock());
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    bus.set_tracer(tracer.clone());
    for i in 0..fanout {
        bus.subscribe(
            ServiceId::from_raw(0x100 + i as u64),
            Filter::for_type(EVENT_TYPE),
            Arc::new(AttributingSink {
                tracer: tracer.clone(),
            }) as Arc<dyn EventSink>,
        )
        .expect("subscribe");
    }
    let barrier = Arc::new(Barrier::new(publishers + 1));
    {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    barrier.wait();
                    for seq in 1..=events_each {
                        let event = Event::builder(EVENT_TYPE)
                            .publisher(ServiceId::from_raw(0x9000 + p as u64))
                            .seq(seq as u64)
                            .attr("bpm", 120i64)
                            .payload(vec![0xEE; 64])
                            .build();
                        bus.publish(event).expect("publish");
                    }
                });
            }
            barrier.wait();
        });
    }
    let mut cp = CriticalPath::new();
    cp.fold_window(&ring.records());
    cp.table()
}

/// Retains every delivered event (as a proxy queue would) and proves the
/// payload buffer is the publisher's own, shared across the whole
/// fan-out — the zero-copy claim.
fn payload_sharing_proof() -> bool {
    #[derive(Default)]
    struct RetainingSink {
        events: Mutex<Vec<Event>>,
    }
    impl EventSink for RetainingSink {
        fn deliver(&self, event: &Event) -> Result<()> {
            self.events.lock().push(event.clone());
            Ok(())
        }
    }
    let bus = EventBus::new(EngineKind::FastForward);
    let sinks: Vec<Arc<RetainingSink>> = (0..32)
        .map(|i| {
            let sink = Arc::new(RetainingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let event = bench_event(0);
    let original = event.payload_shared().clone();
    bus.publish(event).expect("publish");
    sinks.iter().all(|s| {
        let events = s.events.lock();
        events.len() == 1 && events[0].payload_shared().ptr_eq(&original)
    })
}

/// Proves one coalesced publish encodes the whole burst into a single
/// arena: every frame's wire bytes, across every subscriber, are slices
/// of the same backing allocation ([`SharedBytes::same_buffer`]).
///
/// [`SharedBytes::same_buffer`]: smc_types::SharedBytes::same_buffer
fn arena_sharing_proof() -> bool {
    use smc_types::SharedBytes;

    #[derive(Default)]
    struct EncodedSink {
        frames: Mutex<Vec<SharedBytes>>,
    }
    impl EventSink for EncodedSink {
        fn deliver(&self, _event: &Event) -> Result<()> {
            Ok(())
        }
        fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
            self.frames.lock().push(frame.encoded());
            Ok(())
        }
        fn prefers_encoded(&self) -> bool {
            true
        }
    }
    let bus = EventBus::new(EngineKind::FastForward);
    let sinks: Vec<Arc<EncodedSink>> = (0..4)
        .map(|i| {
            let sink = Arc::new(EncodedSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let burst: Vec<Event> = (0..8).map(|p| bench_event(p as u64)).collect();
    bus.publish_batch(&burst).expect("publish batch");
    let first = sinks[0].frames.lock().first().cloned();
    let Some(first) = first else { return false };
    sinks.iter().all(|s| {
        let frames = s.frames.lock();
        frames.len() == 8 && frames.iter().all(|f| SharedBytes::same_buffer(f, &first))
    })
}
