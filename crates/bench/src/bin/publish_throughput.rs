//! Publish-path throughput bench: the lock-free snapshot bus against a
//! reconstruction of the pre-snapshot locked hot path, measured in the
//! same process and the same run.
//!
//! ```text
//! cargo run --release -p smc-bench --bin publish_throughput -- \
//!     [--events 20000] [--smoke] [--gate]
//! ```
//!
//! The sweep crosses publisher count × fan-out. For every cell both
//! arms do the same semantic work — match the event, skip the
//! publisher, hand each interested subscriber a deliverable packet —
//! but the baseline arm pays the old costs (three lock acquisitions per
//! publish, one event clone plus one full packet encode per subscriber)
//! while the snapshot arm pays the new ones (one atomic snapshot load,
//! one shared encode per publish).
//!
//! Writes `results/BENCH_perf.json`. With `--gate`, the committed
//! `results/BENCH_perf.json` is read *first* and the run fails if the
//! fresh overall speedup drops below [`GATE_FRACTION`] of the committed
//! one — the CI regression gate.
//!
//! Fan-out 1 is tracked separately: the snapshot path is known to run
//! 0.70–0.94× the old locked path there (one subscriber never amortises
//! the shared encode), so its ratio is excluded from the gated geomean
//! but recorded as `fanout1_ratio` — and pinned against *catastrophic*
//! regression by [`FANOUT1_FLOOR`] — so the gap stays visible instead of
//! silently widening or dragging the gate.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use parking_lot::Mutex;

use smc_bench::HarnessArgs;
use smc_core::{DeliveryFrame, EventBus, EventSink};
use smc_match::{EngineKind, Matcher};
use smc_telemetry::{CriticalPath, Hop, StageRow, TraceSink, Tracer};
use smc_types::codec::to_bytes;
use smc_types::{
    system_clock, Event, Filter, Packet, Result, ServiceId, Subscription, SubscriptionId, TraceId,
};

/// The regression gate: a fresh run must reach at least this fraction of
/// the committed overall speedup.
const GATE_FRACTION: f64 = 0.85;

/// Hard floor for the tracked fan-out-1 ratio. The known gap sits at
/// 0.70–0.94×; falling below this means the single-subscriber path
/// regressed far beyond the accepted trade-off.
const FANOUT1_FLOOR: f64 = 0.5;

/// Counts deliveries and delivered bytes; the snapshot arm's sink takes
/// a reference-counted handle on the shared encoded frame, exactly as a
/// proxy enqueue does.
#[derive(Default)]
struct CountingSink {
    delivered: AtomicU64,
    bytes: AtomicU64,
}

impl EventSink for CountingSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(event.payload().len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
        let encoded = frame.encoded();
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// The pre-snapshot hot path, reconstructed for the baseline arm: the
/// matcher, the sink map and the tracer each behind their own mutex, a
/// fresh allocation for the match result, and one event clone plus one
/// packet encode per subscriber.
struct LockedBus {
    engine: Mutex<Box<dyn Matcher>>,
    sinks: Mutex<HashMap<ServiceId, Arc<CountingSink>>>,
    tracer: Mutex<Tracer>,
}

impl LockedBus {
    fn new(kind: EngineKind) -> Self {
        LockedBus {
            engine: Mutex::new(kind.build()),
            sinks: Mutex::new(HashMap::new()),
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    fn subscribe(&self, id: u64, subscriber: ServiceId, filter: Filter, sink: Arc<CountingSink>) {
        self.engine
            .lock()
            .subscribe(Subscription::new(SubscriptionId(id), subscriber, filter))
            .expect("baseline subscribe");
        self.sinks.lock().insert(subscriber, sink);
    }

    fn publish(&self, event: &Event) -> usize {
        let trace = TraceId::for_event(event.publisher(), event.seq());
        self.tracer.lock().record(trace, Hop::Published);
        let targets = self.engine.lock().matching_subscribers(event);
        let sinks = self.sinks.lock();
        let mut delivered = 0;
        for subscriber in targets {
            if subscriber == event.publisher() {
                continue;
            }
            if let Some(sink) = sinks.get(&subscriber) {
                let packet = Packet::Deliver {
                    event: event.clone(),
                    trace,
                };
                let bytes = to_bytes(&packet);
                sink.delivered.fetch_add(1, Ordering::Relaxed);
                sink.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                delivered += 1;
            }
        }
        delivered
    }
}

/// Records a [`Hop::Delivered`] per frame so the attribution pass can
/// split publish → match → deliver in wall-clock time; pays the shared
/// encode exactly as a proxy enqueue does.
struct AttributingSink {
    tracer: Tracer,
}

impl EventSink for AttributingSink {
    fn deliver(&self, event: &Event) -> Result<()> {
        self.tracer.record(
            TraceId::for_event(event.publisher(), event.seq()),
            Hop::Delivered,
        );
        Ok(())
    }

    fn deliver_frame(&self, frame: &DeliveryFrame<'_>) -> Result<()> {
        let _ = frame.encoded();
        self.tracer.record(frame.trace(), Hop::Delivered);
        Ok(())
    }
}

const EVENT_TYPE: &str = "bench.reading";

fn bench_event(publisher: u64) -> Event {
    Event::builder(EVENT_TYPE)
        .publisher(ServiceId::from_raw(0x9000 + publisher))
        .seq(1)
        .attr("bpm", 120i64)
        .payload(vec![0xEE; 64])
        .build()
}

/// Total deliveries recorded across `sinks`.
fn total_delivered(sinks: &[Arc<CountingSink>]) -> u64 {
    sinks
        .iter()
        .map(|s| s.delivered.load(Ordering::Relaxed))
        .sum()
}

/// Extracts `"speedup_total": <f64>` from a committed results file, if
/// present (hand-rolled: the repo carries no JSON parser dependency).
fn read_committed_speedup(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"speedup_total\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = HarnessArgs::from_env();
    let smoke = args.has("smoke");
    let gate = args.has("gate");
    let events_each: usize = args.get("events", if smoke { 4_000 } else { 20_000 });
    let publisher_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
    // The smoke sweep keeps the full fan-out axis: fan-out 1 so the
    // tracked single-subscriber ratio is exercised on every CI run, and
    // the rest so the gated geomean stays comparable to the committed
    // full-run baseline (smoke only trims events and publisher counts).
    let fanout_sweep: &[usize] = &[1, 8, 32];

    let committed_speedup = if gate {
        read_committed_speedup("results/BENCH_perf.json")
    } else {
        None
    };

    eprintln!("# publish throughput sweep ({events_each} events/publisher, smoke: {smoke})");
    eprintln!(
        "{:>10} {:>7} {:>16} {:>16} {:>9}",
        "publishers", "fanout", "locked_ev/s", "snapshot_ev/s", "speedup"
    );

    // The attribution pass runs far fewer events than the timed arms:
    // it only needs stable stage *shares*, not throughput.
    let attr_events: usize = args.get("attr-events", if smoke { 200 } else { 1_000 });

    let mut rows: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
    let mut stage_tables: Vec<Vec<StageRow>> = Vec::new();
    for &publishers in publisher_sweep {
        for &fanout in fanout_sweep {
            let locked = measure_locked(publishers, fanout, events_each);
            let snapshot = measure_snapshot(publishers, fanout, events_each);
            let speedup = snapshot / locked.max(1.0);
            let stages = attribute_snapshot(publishers, fanout, attr_events);
            let deliver_share = stages
                .iter()
                .find(|s| s.stage == "deliver")
                .map(|s| s.share_milli)
                .unwrap_or(0);
            eprintln!(
                "{publishers:>10} {fanout:>7} {locked:>16.0} {snapshot:>16.0} {speedup:>8.2}x \
                 deliver={}m",
                deliver_share
            );
            rows.push((publishers, fanout, locked, snapshot, speedup));
            stage_tables.push(stages);
        }
    }

    // Overall figure: geometric mean of the per-cell speedups where the
    // snapshot path is meant to win (fan-out > 1), so no single cell
    // dominates. Fan-out-1 cells carry a known, accepted gap and get
    // their own tracked ratio instead of dragging the gated number.
    let gated: Vec<f64> = rows.iter().filter(|r| r.1 > 1).map(|r| r.4).collect();
    assert!(!gated.is_empty(), "sweep must cover fan-out > 1");
    let speedup_total = (gated.iter().map(|s| s.ln()).sum::<f64>() / gated.len() as f64).exp();
    let fanout1: Vec<f64> = rows.iter().filter(|r| r.1 == 1).map(|r| r.4).collect();
    assert!(
        !fanout1.is_empty(),
        "sweep must exercise the fan-out-1 snapshot path"
    );
    let fanout1_ratio = (fanout1.iter().map(|s| s.ln()).sum::<f64>() / fanout1.len() as f64).exp();
    let shared = payload_sharing_proof();
    eprintln!("overall speedup (geomean, fan-out > 1): {speedup_total:.2}x");
    eprintln!("fan-out-1 ratio (tracked, known 0.70-0.94x): {fanout1_ratio:.2}x");
    eprintln!("payload buffer shared across fan-out: {shared}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"publish_throughput\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"events_per_publisher\": {events_each}, \"engine\": \"fastforward\", \
         \"payload_bytes\": 64, \"smoke\": {smoke}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, (publishers, fanout, locked, snapshot, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let stages: Vec<String> = stage_tables[i]
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\": \"{}\", \"kind\": \"{}\", \"count\": {}, \
                     \"total_micros\": {}, \"share_milli\": {}, \"p50_micros\": {}, \
                     \"p95_micros\": {}, \"p99_micros\": {}}}",
                    s.stage,
                    s.kind.name(),
                    s.count,
                    s.total_micros,
                    s.share_milli,
                    s.p50_micros,
                    s.p95_micros,
                    s.p99_micros
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"publishers\": {publishers}, \"fanout\": {fanout}, \
             \"locked_events_per_sec\": {locked:.0}, \
             \"snapshot_events_per_sec\": {snapshot:.0}, \"speedup\": {speedup:.3}, \
             \"stages\": [{}]}}{comma}",
            stages.join(", ")
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_total\": {speedup_total:.3},");
    let _ = writeln!(json, "  \"gate_fraction\": {GATE_FRACTION},");
    let _ = writeln!(json, "  \"fanout1_ratio\": {fanout1_ratio:.3},");
    let _ = writeln!(json, "  \"fanout1_floor\": {FANOUT1_FLOOR},");
    let _ = writeln!(json, "  \"payload_buffer_shared_across_fanout\": {shared}");
    json.push_str("}\n");

    let path = std::path::Path::new("results");
    let target = if path.is_dir() {
        path.join("BENCH_perf.json")
    } else {
        std::path::PathBuf::from("BENCH_perf.json")
    };
    std::fs::write(&target, &json).expect("write BENCH_perf.json");
    eprintln!("wrote {}", target.display());

    if !shared {
        eprintln!("FAIL: fan-out did not share one payload buffer");
        std::process::exit(1);
    }
    if fanout1_ratio < FANOUT1_FLOOR {
        eprintln!(
            "FAIL: fan-out-1 ratio {fanout1_ratio:.2}x fell below the {FANOUT1_FLOOR}x floor \
             (known gap is 0.70-0.94x; this is a real regression)"
        );
        std::process::exit(1);
    }
    if let Some(committed) = committed_speedup {
        let floor = committed * GATE_FRACTION;
        if speedup_total < floor {
            eprintln!(
                "FAIL: speedup {speedup_total:.2}x below {GATE_FRACTION} × committed \
                 {committed:.2}x = {floor:.2}x"
            );
            std::process::exit(1);
        }
        eprintln!("gate ok: {speedup_total:.2}x ≥ {GATE_FRACTION} × {committed:.2}x");
    }
}

/// One sweep cell on the baseline arm; returns events/second.
fn measure_locked(publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(LockedBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                i as u64,
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink),
            );
            sink
        })
        .collect();
    let barrier = Arc::new(Barrier::new(publishers + 1));
    // The scope closure returns the Instant taken at barrier release;
    // `scope` itself returns only after every publisher joined, so the
    // elapsed time spans exactly the publishing work.
    let started = {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    barrier.wait();
                    for _ in 0..events_each {
                        bus.publish(&event);
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "baseline arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sweep cell on the snapshot arm; returns events/second.
fn measure_snapshot(publishers: usize, fanout: usize, events_each: usize) -> f64 {
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    let sinks: Vec<Arc<CountingSink>> = (0..fanout)
        .map(|i| {
            let sink = Arc::new(CountingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let barrier = Arc::new(Barrier::new(publishers + 1));
    let started = {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    let event = bench_event(p as u64);
                    barrier.wait();
                    for _ in 0..events_each {
                        bus.publish(event.clone()).expect("publish");
                    }
                });
            }
            barrier.wait();
            Instant::now()
        })
    };
    let secs = started.elapsed().as_secs_f64();
    let expected = (publishers * events_each * fanout) as u64;
    assert_eq!(
        total_delivered(&sinks),
        expected,
        "snapshot arm dropped deliveries"
    );
    (publishers * events_each) as f64 / secs
}

/// One sweep cell's wall-clock stage attribution on the snapshot arm:
/// a separate, traced pass over `events_each` events per publisher
/// (distinct seqs, so every publish is its own journey), folded through
/// [`CriticalPath`]. Published→Matched lands in "match" (snapshot load
/// plus match), Matched→Delivered in "deliver" (the shared encode plus
/// per-subscriber delivery) — at fan-out 1 the unamortised encode shows
/// up here, which is exactly the 0.70–0.94× gap's home.
fn attribute_snapshot(publishers: usize, fanout: usize, events_each: usize) -> Vec<StageRow> {
    let capacity = publishers * events_each * (fanout + 2) + 64;
    let ring = Arc::new(TraceSink::with_capacity(capacity));
    let tracer = Tracer::new(Arc::clone(&ring), system_clock());
    let bus = Arc::new(EventBus::new(EngineKind::FastForward));
    bus.set_tracer(tracer.clone());
    for i in 0..fanout {
        bus.subscribe(
            ServiceId::from_raw(0x100 + i as u64),
            Filter::for_type(EVENT_TYPE),
            Arc::new(AttributingSink {
                tracer: tracer.clone(),
            }) as Arc<dyn EventSink>,
        )
        .expect("subscribe");
    }
    let barrier = Arc::new(Barrier::new(publishers + 1));
    {
        let bus = &bus;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for p in 0..publishers {
                scope.spawn(move || {
                    barrier.wait();
                    for seq in 1..=events_each {
                        let event = Event::builder(EVENT_TYPE)
                            .publisher(ServiceId::from_raw(0x9000 + p as u64))
                            .seq(seq as u64)
                            .attr("bpm", 120i64)
                            .payload(vec![0xEE; 64])
                            .build();
                        bus.publish(event).expect("publish");
                    }
                });
            }
            barrier.wait();
        });
    }
    let mut cp = CriticalPath::new();
    cp.fold_window(&ring.records());
    cp.table()
}

/// Retains every delivered event (as a proxy queue would) and proves the
/// payload buffer is the publisher's own, shared across the whole
/// fan-out — the zero-copy claim.
fn payload_sharing_proof() -> bool {
    #[derive(Default)]
    struct RetainingSink {
        events: Mutex<Vec<Event>>,
    }
    impl EventSink for RetainingSink {
        fn deliver(&self, event: &Event) -> Result<()> {
            self.events.lock().push(event.clone());
            Ok(())
        }
    }
    let bus = EventBus::new(EngineKind::FastForward);
    let sinks: Vec<Arc<RetainingSink>> = (0..32)
        .map(|i| {
            let sink = Arc::new(RetainingSink::default());
            bus.subscribe(
                ServiceId::from_raw(0x100 + i as u64),
                Filter::for_type(EVENT_TYPE),
                Arc::clone(&sink) as Arc<dyn EventSink>,
            )
            .expect("subscribe");
            sink
        })
        .collect();
    let event = bench_event(0);
    let original = event.payload_shared().clone();
    bus.publish(event).expect("publish");
    sinks.iter().all(|s| {
        let events = s.events.lock();
        events.len() == 1 && events[0].payload_shared().ptr_eq(&original)
    })
}
