//! Operator surface demo: a live cell under wall-clock time with a
//! sensor publishing through it, a second feed running through the
//! sharded multi-core front, a [`HealthMonitor`] polling the registry
//! on a background cadence, and the [`StatusServer`] exposing
//! `/metrics`, `/health`, `/journey`, `/tails`, `/slo` and `/shards`
//! over plain HTTP.
//!
//! ```text
//! cargo run --release -p smc-bench --bin status_server -- [--secs 10] [--smoke]
//! ```
//!
//! `--secs 0` serves until killed. `--smoke` runs briefly, scrapes its
//! own endpoints, checks the responses and exits non-zero on anything
//! unexpected — the CI health smoke.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_core::{RemoteClient, ShardedBus, SmcCell, SmcConfig};
use smc_discovery::{AgentConfig, DiscoveryConfig};
use smc_health::{
    health_event, HealthConfig, HealthMonitor, ShardGauge, StatusServer, StatusSources,
    SupervisionStatus,
};
use smc_policy::health_quench_policies;
use smc_telemetry::{Registry, SloConfig, SloTracker, TraceSink, Tracer, DEFAULT_SINK_CAPACITY};
use smc_transport::{LinkConfig, ReliableChannel, SimNetwork};
use smc_types::{system_clock, Event, Filter, ServiceId, ServiceInfo, TraceId};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smc\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let secs: u64 = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 10 });

    let clock = system_clock();
    let net = SimNetwork::with_seed(LinkConfig::ideal(), 7);
    let sink = Arc::new(TraceSink::with_capacity(DEFAULT_SINK_CAPACITY));
    let tracer = Tracer::new(Arc::clone(&sink), Arc::clone(&clock));
    let config = SmcConfig {
        discovery: DiscoveryConfig {
            beacon_interval: Duration::from_millis(50),
            lease: Duration::from_secs(600),
            grace: Duration::from_secs(600),
            ..DiscoveryConfig::default()
        },
        tracer: tracer.clone(),
        ..SmcConfig::default()
    };
    let cell = Arc::new(SmcCell::start(
        Arc::new(net.endpoint()),
        Arc::new(net.endpoint()),
        config,
    ));
    for p in health_quench_policies() {
        cell.policy()
            .add(p)
            .expect("install built-in health policies");
    }

    let registry = Registry::default();
    {
        let cell = Arc::clone(&cell);
        smc_core::register_bus_metrics(&registry, move || cell.metrics());
    }
    sink.register_with(&registry);

    let connect = |device_type: &str| {
        RemoteClient::connect(
            ServiceInfo::new(ServiceId::NIL, device_type).with_role("demo"),
            ReliableChannel::new(Arc::new(net.endpoint()), Default::default()),
            AgentConfig::default(),
            CONNECT_TIMEOUT,
        )
        .expect("member joins cell")
    };
    let monitor_client = connect("demo.monitor");
    monitor_client
        .subscribe(Filter::for_type("demo.reading"), CONNECT_TIMEOUT)
        .expect("subscribe");
    let sensor = connect("demo.sensor");
    let sensor_id = sensor.local_id();

    // A sharded front over the cell's bus feeds /shards: one pinned
    // publisher pushing through a two-worker ShardedBus.
    let sharded = ShardedBus::new(Arc::clone(cell.bus()), 2);
    let shard_feed_id = ServiceId::from_raw(0xBEE);
    let mut shard_feed = sharded.publisher(shard_feed_id);
    let shard_gauges: Arc<parking_lot::Mutex<Vec<ShardGauge>>> = Arc::default();

    let mut monitor = HealthMonitor::new(HealthConfig::default());
    let supervision: Arc<parking_lot::Mutex<SupervisionStatus>> = Arc::default();
    let slo: Arc<parking_lot::Mutex<Vec<SloTracker>>> =
        Arc::new(parking_lot::Mutex::new(vec![SloTracker::new(
            SloConfig::new("delivery-latency", 50_000),
        )]));
    let sources = StatusSources {
        registry: registry.clone(),
        sink: Some(Arc::clone(&sink)),
        health: Arc::default(),
        supervision: Some(Arc::clone(&supervision)),
        ward: None,
        clock: Some(Arc::clone(&clock)),
        // `/tails` folds the live sink's window on demand.
        tails: None,
        slo: Some(Arc::clone(&slo)),
        shards: Some(Arc::clone(&shard_gauges)),
    };
    let shared_report = Arc::clone(&sources.health);
    let server = StatusServer::start("127.0.0.1:0", sources).expect("bind status server");
    let addr = server.local_addr();
    eprintln!("status server listening on http://{addr}/");
    eprintln!(
        "  GET /metrics   GET /health   GET /journey?sender=<raw>&seq=<n>   \
         GET /tails   GET /slo   GET /shards"
    );

    let started = Instant::now();
    let mut seq = 0u64;
    let mut published_event_seq: Option<u64> = None;
    while secs == 0 || started.elapsed() < Duration::from_secs(secs) {
        seq += 1;
        let event = Event::builder("demo.reading")
            .attr("sensor", "hr")
            .attr("bpm", 60 + (seq % 40) as i64)
            .build();
        if sensor.publish_nowait(event).is_ok() && published_event_seq.is_none() {
            published_event_seq = Some(seq);
        }
        let _ = shard_feed.publish(
            Event::builder("demo.reading")
                .attr("sensor", "shard-feed")
                .attr("bpm", 70 + (seq % 20) as i64)
                .publisher(shard_feed_id)
                .seq(seq)
                .build(),
        );
        let now = clock.now_micros();
        if monitor.due(now) {
            let transitions = monitor.poll(now, &registry, Some(&sink));
            for t in &transitions {
                eprintln!(
                    "health: {} {} -> {} ({})",
                    t.component,
                    t.from.as_str(),
                    t.to.as_str(),
                    t.detail
                );
                // The monitor feeds the bus exactly as the harness does,
                // so the built-in obligations can react.
                let _ = cell.publish_local(health_event(t, None));
            }
            *shared_report.lock() = monitor.report();
            *shard_gauges.lock() = sharded
                .stats()
                .into_iter()
                .map(|s| ShardGauge {
                    shard: s.shard as u64,
                    depth: s.depth,
                    enqueued: s.enqueued,
                    processed: s.processed,
                    delivered: s.delivered,
                    batches: s.batches,
                    publishers: s.publishers,
                })
                .collect();
            // Feed the SLO tracker the freshest complete journey's
            // end-to-end latency.
            let journey = sink.journey(TraceId::for_event(sensor_id, seq));
            if !journey.is_empty() {
                slo.lock()[0].record(now, journey.total_micros());
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut failures = 0;
    if smoke {
        let metrics = http_get(addr, "/metrics");
        if !(metrics.starts_with("HTTP/1.1 200") && metrics.contains("smc_bus_published_total")) {
            eprintln!("SMOKE FAIL: /metrics missing bus counters:\n{metrics}");
            failures += 1;
        }
        let health = http_get(addr, "/health");
        if !(health.starts_with("HTTP/1.1 200") && health.contains("\"overall\"")) {
            eprintln!("SMOKE FAIL: /health not a report:\n{health}");
            failures += 1;
        }
        let journey = http_get(
            addr,
            &format!(
                "/journey?sender={}&seq={}",
                sensor_id.raw(),
                published_event_seq.unwrap_or(1)
            ),
        );
        if !journey.starts_with("HTTP/1.1 200") {
            eprintln!("SMOKE FAIL: /journey errored:\n{journey}");
            failures += 1;
        }
        let supervision = http_get(addr, "/supervision");
        if !(supervision.starts_with("HTTP/1.1 200") && supervision.contains("\"peers\"")) {
            eprintln!("SMOKE FAIL: /supervision not a report:\n{supervision}");
            failures += 1;
        }
        let tails = http_get(addr, "/tails");
        if !(tails.starts_with("HTTP/1.1 200")
            && tails.contains("\"stages\":")
            && tails.contains("\"tail\":"))
        {
            eprintln!("SMOKE FAIL: /tails not an attribution report:\n{tails}");
            failures += 1;
        }
        let tails_text = http_get(addr, "/tails?format=text");
        if !(tails_text.starts_with("HTTP/1.1 200") && tails_text.contains("critical path")) {
            eprintln!("SMOKE FAIL: /tails?format=text not a flame view:\n{tails_text}");
            failures += 1;
        }
        let slo_page = http_get(addr, "/slo?json");
        if !(slo_page.starts_with("HTTP/1.1 200") && slo_page.contains("\"delivery-latency\"")) {
            eprintln!("SMOKE FAIL: /slo?json missing the tracker:\n{slo_page}");
            failures += 1;
        }
        let shards_page = http_get(addr, "/shards");
        if !(shards_page.starts_with("HTTP/1.1 200")
            && shards_page.contains("\"shard\": 0")
            && shards_page.contains("\"shard\": 1"))
        {
            eprintln!("SMOKE FAIL: /shards missing both shard gauges:\n{shards_page}");
            failures += 1;
        }
        let one_shard = http_get(addr, &format!("/shards?shard={}", shard_feed_id.raw() % 2));
        if !(one_shard.starts_with("HTTP/1.1 200") && one_shard.contains("\"publishers\": 1")) {
            eprintln!("SMOKE FAIL: /shards?shard= lost the pinned publisher:\n{one_shard}");
            failures += 1;
        }
        eprintln!(
            "smoke: /metrics {} bytes, /health {} bytes, /journey {} bytes, \
             /tails {} bytes, /slo {} bytes, /shards {} bytes, {failures} failures",
            metrics.len(),
            health.len(),
            journey.len(),
            tails.len(),
            slo_page.len(),
            shards_page.len()
        );
    }

    drop(shard_feed);
    drop(sharded);
    server.stop();
    sensor.shutdown();
    monitor_client.shutdown();
    cell.shutdown();
    if failures > 0 {
        std::process::exit(1);
    }
}
