//! Observability overhead bench: per-hop latency percentiles and the
//! wall-clock cost of hop tracing, measured on the deterministic chaos
//! harness under the paper prototype's USB/IP link profile.
//!
//! ```text
//! cargo run --release -p smc-bench --bin trace_overhead -- \
//!     [--seeds 6] [--nodes 3] [--secs 8] [--reps 5] [--smoke]
//! ```
//!
//! Two arms run the *same* scenarios: one with the trace sink attached,
//! one without. Virtual-time determinism means both arms do identical
//! protocol work, so the wall-clock ratio isolates what recording hops
//! costs. The traced arm's sink is then mined for every message's
//! journey, and the per-hop leg latencies (virtual µs) are reported as
//! p50/p95/p99.
//!
//! Writes `results/BENCH_observability.json` and exits non-zero if the
//! traced/untraced wall-clock ratio exceeds 1.15×.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use smc_bench::HarnessArgs;
use smc_harness::{run_with_options, ChaosOp, LinkProfileKind, RunOptions, Scenario, ScriptedOp};

/// The gate: tracing must cost less than 15% wall-clock overhead.
const MAX_RATIO: f64 = 1.15;

/// A USB/IP-profiled quiet scenario: every node's link is switched to the
/// paper testbed profile at t=0, then devices publish on schedule.
fn scenario(seed: u64, nodes: usize, secs: u64) -> Scenario {
    let mut s = Scenario::quiet(seed, nodes, Duration::from_secs(secs));
    for node in 0..nodes {
        s.ops.push(ScriptedOp {
            at: Duration::ZERO,
            op: ChaosOp::LinkProfile {
                node,
                profile: LinkProfileKind::UsbIp,
            },
        });
    }
    s.sorted()
}

/// Wall-clock micros for one full arm (all seeds, one repetition).
fn arm_wall(seeds: &[Scenario], trace: bool) -> u64 {
    let started = Instant::now();
    for s in seeds {
        let report = run_with_options(
            s,
            RunOptions {
                trace,
                ..RunOptions::default()
            },
        );
        report.assert_clean();
    }
    started.elapsed().as_micros() as u64
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct HopStats {
    name: &'static str,
    count: usize,
    p50: u64,
    p95: u64,
    p99: u64,
}

fn main() {
    let args = HarnessArgs::from_env();
    let smoke = args.has("smoke");
    let seeds: u64 = args.get("seeds", if smoke { 2 } else { 6 });
    let nodes: usize = args.get("nodes", 3);
    let secs: u64 = args.get("secs", if smoke { 4 } else { 8 });
    let reps: usize = args.get("reps", if smoke { 3 } else { 5 });

    let scenarios: Vec<Scenario> = (0..seeds)
        .map(|i| scenario(0x0B5E + i, nodes, secs))
        .collect();

    // Warm-up both paths once so neither arm pays first-touch costs.
    arm_wall(&scenarios[..1], false);
    arm_wall(&scenarios[..1], true);

    // Interleave the arms and keep each arm's *minimum* wall time: the
    // least-disturbed repetition is the best estimate of intrinsic cost.
    let mut untraced_walls = Vec::with_capacity(reps);
    let mut traced_walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        untraced_walls.push(arm_wall(&scenarios, false));
        traced_walls.push(arm_wall(&scenarios, true));
    }
    let untraced = *untraced_walls.iter().min().expect("reps > 0");
    let traced = *traced_walls.iter().min().expect("reps > 0");
    let ratio = traced as f64 / untraced.max(1) as f64;

    // Mine one traced run per seed for per-hop leg latencies: for every
    // published message, each journey leg's delta (virtual µs since the
    // previous hop) is bucketed under the hop it *arrives* at.
    let mut legs: std::collections::BTreeMap<&'static str, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut journeys = 0u64;
    for s in &scenarios {
        let report = run_with_options(s, RunOptions::default());
        for &dev in &report.device_ids {
            for seq in 1..=report.oracle.published(dev) {
                let Some(journey) = report.journey(dev, seq) else {
                    continue;
                };
                if journey.is_empty() {
                    continue;
                }
                journeys += 1;
                for (hop, _at, delta) in journey.legs().iter().skip(1) {
                    legs.entry(hop.name()).or_default().push(*delta);
                }
            }
        }
    }
    let hop_stats: Vec<HopStats> = legs
        .iter()
        .map(|(name, deltas)| {
            let mut sorted = deltas.clone();
            sorted.sort_unstable();
            HopStats {
                name,
                count: sorted.len(),
                p50: percentile(&sorted, 0.50),
                p95: percentile(&sorted, 0.95),
                p99: percentile(&sorted, 0.99),
            }
        })
        .collect();

    eprintln!(
        "# trace overhead under usb-ip ({seeds} seeds × {secs}s × {nodes} nodes, {reps} reps)"
    );
    eprintln!("untraced: {untraced} µs   traced: {traced} µs   ratio: {ratio:.3}");
    eprintln!(
        "{:>16} {:>8} {:>10} {:>10} {:>10}",
        "hop", "count", "p50_µs", "p95_µs", "p99_µs"
    );
    for h in &hop_stats {
        eprintln!(
            "{:>16} {:>8} {:>10} {:>10} {:>10}",
            h.name, h.count, h.p50, h.p95, h.p99
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"trace_overhead\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"nodes\": {nodes}, \"virtual_secs\": {secs}, \
         \"reps\": {reps}, \"link\": \"usb-ip\", \"smoke\": {smoke}}},"
    );
    let _ = writeln!(json, "  \"untraced_wall_micros\": {untraced},");
    let _ = writeln!(json, "  \"traced_wall_micros\": {traced},");
    let _ = writeln!(json, "  \"overhead_ratio\": {ratio:.4},");
    let _ = writeln!(json, "  \"max_ratio\": {MAX_RATIO},");
    let _ = writeln!(json, "  \"journeys\": {journeys},");
    json.push_str("  \"hops\": [\n");
    for (i, h) in hop_stats.iter().enumerate() {
        let comma = if i + 1 < hop_stats.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"hop\": \"{}\", \"count\": {}, \"p50_micros\": {}, \"p95_micros\": {}, \
             \"p99_micros\": {}}}{comma}",
            h.name, h.count, h.p50, h.p95, h.p99
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new("results");
    let target = if path.is_dir() {
        path.join("BENCH_observability.json")
    } else {
        std::path::PathBuf::from("BENCH_observability.json")
    };
    std::fs::write(&target, &json).expect("write BENCH_observability.json");
    eprintln!("wrote {}", target.display());

    if ratio > MAX_RATIO {
        eprintln!("FAIL: tracing overhead {ratio:.3}× exceeds the {MAX_RATIO}× budget");
        std::process::exit(1);
    }
}
