//! Figure 4(a): end-to-end response time vs payload size, Siena-based
//! bus vs C-based (fast-forwarding) bus, on the paper's PDA testbed
//! profile.
//!
//! ```text
//! cargo run --release -p smc-bench --bin fig4a -- [--samples 30] [--step 500] [--max 5000] [--ideal]
//! ```
//!
//! Prints one row per payload size with the mean/min/max response time in
//! milliseconds for each bus — the series plotted in the paper's Fig 4(a).

use smc_bench::{stats, HarnessArgs, Testbed, TestbedConfig};
use smc_match::EngineKind;

fn main() {
    let args = HarnessArgs::from_env();
    let samples: usize = args.get("samples", 30);
    let step: usize = args.get("step", 500);
    let max: usize = args.get("max", 5000);
    let ideal = args.has("ideal");
    let cpu_scale: f64 = args.get("cpu-scale", 1.0);

    println!("# Fig 4(a) reproduction: response time vs payload size");
    println!(
        "# testbed: {} link, {} cpu, {} samples/point",
        if ideal {
            "ideal"
        } else {
            "usb-ip (1.5ms, 575KB/s)"
        },
        if ideal { "native" } else { "ipaq-hx4700 model" },
        samples
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "payload", "siena_ms", "s_min", "s_max", "c_ms", "c_min", "c_max"
    );

    let payloads: Vec<usize> = std::iter::once(0)
        .chain((1..).map(|i| i * step))
        .take_while(|&p| p <= max)
        .collect();

    let run_engine = |engine: EngineKind| -> Vec<smc_bench::Stats> {
        let mut config = if ideal {
            TestbedConfig::ideal(engine)
        } else {
            TestbedConfig::paper(engine)
        };
        config.cpu = config.cpu.scaled(cpu_scale);
        let bed = Testbed::start(&config).expect("testbed start");
        // Warm-up: populate caches and the reliable-channel session.
        let _ = bed.measure_response(64, 3).expect("warmup");
        let out: Vec<smc_bench::Stats> = payloads
            .iter()
            .map(|&p| stats(&bed.measure_response(p, samples).expect("measure")))
            .collect();
        bed.shutdown();
        out
    };

    let siena = run_engine(EngineKind::Siena);
    let cbus = run_engine(EngineKind::FastForward);

    for (i, &p) in payloads.iter().enumerate() {
        let s = siena[i];
        let c = cbus[i];
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>10.2} {:>12.2} {:>10.2} {:>10.2}",
            p, s.mean_ms, s.min_ms, s.max_ms, c.mean_ms, c.min_ms, c.max_ms
        );
    }

    // Shape checks the paper's figure exhibits.
    let (s0, sl) = (
        siena.first().expect("points"),
        siena.last().expect("points"),
    );
    let (c0, cl) = (cbus.first().expect("points"), cbus.last().expect("points"));
    println!("#");
    println!(
        "# shape: siena rises {:.2}ms -> {:.2}ms; c rises {:.2}ms -> {:.2}ms",
        s0.mean_ms, sl.mean_ms, c0.mean_ms, cl.mean_ms
    );
    println!(
        "# shape: c-based bus {} the siena bus at max payload ({:.2}x faster)",
        if cl.mean_ms < sl.mean_ms {
            "below"
        } else {
            "NOT below"
        },
        sl.mean_ms / cl.mean_ms
    );
}
