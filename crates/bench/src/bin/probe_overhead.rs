//! Contention-probe overhead bench: the wall-clock cost of the PR 9
//! occupancy probes (control-mutex hold times, proxy queue depths, WAL
//! append wait/service splits, snapshot writer-wait spins) on top of an
//! already-traced run.
//!
//! ```text
//! cargo run --release -p smc-bench --bin probe_overhead -- \
//!     [--seeds 6] [--nodes 3] [--secs 8] [--reps 5] [--smoke]
//! ```
//!
//! Two arms run the *same* scenarios, both with the trace sink attached:
//! one with probes off (the PR 8 status quo), one with probes on.
//! Virtual-time determinism means both arms do identical protocol work,
//! so the wall-clock ratio isolates what the probes cost. The probed
//! arm's registry is then sampled for the `smc_probe_*` series so the
//! report shows what the money bought.
//!
//! Writes `results/BENCH_probe_overhead.json` and exits non-zero if the
//! probed/unprobed wall-clock ratio exceeds 1.10×.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use smc_bench::HarnessArgs;
use smc_harness::{run_with_options, ChaosOp, LinkProfileKind, RunOptions, Scenario, ScriptedOp};

/// The gate: probes must cost less than 10% wall-clock overhead on an
/// already-traced run.
const MAX_RATIO: f64 = 1.10;

/// A USB/IP-profiled quiet scenario, identical to the trace-overhead
/// bench's shape so the two reports compose.
fn scenario(seed: u64, nodes: usize, secs: u64) -> Scenario {
    let mut s = Scenario::quiet(seed, nodes, Duration::from_secs(secs));
    for node in 0..nodes {
        s.ops.push(ScriptedOp {
            at: Duration::ZERO,
            op: ChaosOp::LinkProfile {
                node,
                profile: LinkProfileKind::UsbIp,
            },
        });
    }
    s.sorted()
}

/// Wall-clock micros for one full arm (all seeds, one repetition).
fn arm_wall(seeds: &[Scenario], probes: bool) -> u64 {
    let started = Instant::now();
    for s in seeds {
        let report = run_with_options(
            s,
            RunOptions {
                trace: true,
                probes,
                ..RunOptions::default()
            },
        );
        report.assert_clean();
    }
    started.elapsed().as_micros() as u64
}

fn main() {
    let args = HarnessArgs::from_env();
    let smoke = args.has("smoke");
    let seeds: u64 = args.get("seeds", if smoke { 2 } else { 6 });
    let nodes: usize = args.get("nodes", 3);
    let secs: u64 = args.get("secs", if smoke { 4 } else { 8 });
    let reps: usize = args.get("reps", if smoke { 3 } else { 5 });

    let scenarios: Vec<Scenario> = (0..seeds)
        .map(|i| scenario(0x0B5E + i, nodes, secs))
        .collect();

    // Warm-up both paths once so neither arm pays first-touch costs.
    arm_wall(&scenarios[..1], false);
    arm_wall(&scenarios[..1], true);

    // Interleave the arms and keep each arm's *minimum* wall time: the
    // least-disturbed repetition is the best estimate of intrinsic cost.
    let mut unprobed_walls = Vec::with_capacity(reps);
    let mut probed_walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        unprobed_walls.push(arm_wall(&scenarios, false));
        probed_walls.push(arm_wall(&scenarios, true));
    }
    let unprobed = *unprobed_walls.iter().min().expect("reps > 0");
    let probed = *probed_walls.iter().min().expect("reps > 0");
    let ratio = probed as f64 / unprobed.max(1) as f64;

    // Sample one probed run's registry for what the probes observed:
    // every `smc_probe_*` and writer-wait series, so the report shows
    // the occupancy data the overhead pays for.
    let mut series: Vec<(String, u64)> = Vec::new();
    {
        let report = run_with_options(
            &scenarios[0],
            RunOptions {
                trace: true,
                probes: true,
                ..RunOptions::default()
            },
        );
        report.assert_clean();
        for sample in report.registry.gather() {
            if sample.name.starts_with("smc_probe_")
                || sample.name.contains("writer_wait")
                || sample.name.starts_with("smc_trace_tail_")
            {
                series.push((sample.name.clone(), sample.value));
            }
        }
    }

    eprintln!(
        "# probe overhead on a traced run under usb-ip \
         ({seeds} seeds × {secs}s × {nodes} nodes, {reps} reps)"
    );
    eprintln!("unprobed: {unprobed} µs   probed: {probed} µs   ratio: {ratio:.3}");
    for (name, value) in &series {
        eprintln!("{name:>44} {value}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"probe_overhead\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seeds\": {seeds}, \"nodes\": {nodes}, \"virtual_secs\": {secs}, \
         \"reps\": {reps}, \"link\": \"usb-ip\", \"smoke\": {smoke}}},"
    );
    let _ = writeln!(json, "  \"unprobed_wall_micros\": {unprobed},");
    let _ = writeln!(json, "  \"probed_wall_micros\": {probed},");
    let _ = writeln!(json, "  \"overhead_ratio\": {ratio:.4},");
    let _ = writeln!(json, "  \"max_ratio\": {MAX_RATIO},");
    json.push_str("  \"probe_series\": [\n");
    for (i, (name, value)) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"value\": {value}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new("results");
    let target = if path.is_dir() {
        path.join("BENCH_probe_overhead.json")
    } else {
        std::path::PathBuf::from("BENCH_probe_overhead.json")
    };
    std::fs::write(&target, &json).expect("write BENCH_probe_overhead.json");
    eprintln!("wrote {}", target.display());

    if ratio > MAX_RATIO {
        eprintln!("FAIL: probe overhead {ratio:.3}× exceeds the {MAX_RATIO}× budget");
        std::process::exit(1);
    }
}
