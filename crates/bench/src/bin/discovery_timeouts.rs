//! Extension experiment Ext-3 (paper §VI): "maximum timeouts for the
//! discovery service to allow silence from a device until a Purge Member
//! event is launched".
//!
//! Sweeps the silence duration of a device against a fixed lease+grace
//! configuration and reports whether the disconnection was masked (device
//! still a member on return) or the member was purged, plus how long the
//! purge took to be announced.
//!
//! ```text
//! cargo run --release -p smc-bench --bin discovery_timeouts -- [--lease-ms 150] [--grace-ms 250]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_bench::{bench_reliable, HarnessArgs};
use smc_discovery::{AgentConfig, DiscoveryConfig, DiscoveryService, MemberAgent, MembershipEvent};
use smc_transport::{LinkConfig, ReliableChannel, SimNetwork};
use smc_types::{CellId, ServiceId, ServiceInfo};

fn main() {
    let args = HarnessArgs::from_env();
    let lease = Duration::from_millis(args.get("lease-ms", 150));
    let grace = Duration::from_millis(args.get("grace-ms", 250));

    println!("# Ext-3: silence duration vs membership outcome (lease={lease:?}, grace={grace:?})");
    println!(
        "{:>12} {:>10} {:>16}",
        "silence_ms", "outcome", "purge_after_ms"
    );

    let budget = lease + grace;
    let silences: Vec<Duration> = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0]
        .iter()
        .map(|f| budget.mul_f64(*f))
        .collect();

    for silence in silences {
        let net = SimNetwork::with_seed(LinkConfig::ideal(), 5);
        let config = DiscoveryConfig {
            beacon_interval: Duration::from_millis(25),
            lease,
            grace,
            ..DiscoveryConfig::default()
        };
        let service = DiscoveryService::start(
            CellId(1),
            ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable()),
            config,
        );
        let agent = MemberAgent::start(
            ServiceInfo::new(ServiceId::NIL, "bench.device"),
            ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable()),
            AgentConfig {
                max_missed_heartbeats: u32::MAX,
                ..AgentConfig::default()
            },
        );
        agent.wait_joined(Duration::from_secs(10)).expect("join");
        // Drain the Joined event.
        let _ = service.events().recv_timeout(Duration::from_secs(5));

        // Radio silence.
        net.set_partitioned(agent.local_id(), service.local_id(), true);
        let t0 = Instant::now();
        std::thread::sleep(silence);
        net.set_partitioned(agent.local_id(), service.local_id(), false);

        // Observe the outcome for a short settling window.
        let mut purged_after: Option<Duration> = None;
        let settle = Instant::now() + lease + grace + Duration::from_millis(200);
        while Instant::now() < settle {
            match service.events().recv_timeout(Duration::from_millis(25)) {
                Ok(MembershipEvent::Purged(_, _)) => {
                    purged_after = Some(t0.elapsed());
                    break;
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
        match purged_after {
            Some(at) => println!(
                "{:>12.0} {:>10} {:>16.0}",
                silence.as_secs_f64() * 1e3,
                "purged",
                at.as_secs_f64() * 1e3
            ),
            None => {
                println!(
                    "{:>12.0} {:>10} {:>16}",
                    silence.as_secs_f64() * 1e3,
                    "masked",
                    "-"
                )
            }
        }

        agent.shutdown();
        service.shutdown();
        net.shutdown();
    }
    println!("# expectation: silences comfortably below lease+grace are masked; beyond it, purged");
}
