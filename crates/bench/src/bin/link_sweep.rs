//! Ablation: the same event bus over the paper's three target radios.
//!
//! §IV/§VI: the prototype ran over IP-over-USB, with Bluetooth under
//! development and ZigBee the intended target. This harness runs the
//! fig-4(a) measurement on all three link profiles so the migration cost
//! is visible before the hardware exists.
//!
//! ```text
//! cargo run --release -p smc-bench --bin link_sweep -- [--samples 15] [--payload 500]
//! ```

use smc_bench::{stats, HarnessArgs, Testbed, TestbedConfig};
use smc_match::EngineKind;
use smc_transport::{CpuProfile, LinkConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let samples: usize = args.get("samples", 15);
    let payload: usize = args.get("payload", 500);

    println!("# Link ablation: response time of the C-based bus over each radio profile");
    println!("# payload {payload}B, {samples} samples/point, native cpu");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12}",
        "link", "mean_ms", "min_ms", "max_ms", "delivered"
    );

    let links: Vec<(&str, LinkConfig)> = vec![
        ("ideal", LinkConfig::ideal()),
        ("usb-ip", LinkConfig::usb_ip_link()),
        ("bluetooth", LinkConfig::bluetooth_link()),
        ("zigbee", LinkConfig::zigbee_link()),
    ];

    for (name, link) in links {
        let config = TestbedConfig {
            engine: EngineKind::FastForward,
            link,
            cpu: CpuProfile::native(),
            seed: 9,
        };
        let bed = Testbed::start(&config).expect("testbed");
        let _ = bed.measure_response(payload.min(64), 2).expect("warmup");
        // ZigBee's tiny MTU forces fragmentation; lossy profiles force
        // retransmission — both are part of what is being measured.
        let times = bed.measure_response(payload, samples).expect("measure");
        let st = stats(&times);
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>10.2} {:>12}",
            name,
            st.mean_ms,
            st.min_ms,
            st.max_ms,
            times.len()
        );
        bed.shutdown();
    }
    println!("# expectation: ideal < usb-ip < bluetooth < zigbee (bandwidth & latency dominate)");
}
