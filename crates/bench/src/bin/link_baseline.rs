//! Calibrates the simulated testbed link against the figures §V quotes
//! for the raw link: average latency ≈1.5 ms (0.6–2.3 ms over a minute)
//! and sustained raw transfer ≈575 KB/s.
//!
//! ```text
//! cargo run --release -p smc-bench --bin link_baseline -- [--probes 200] [--bulk-kb 512]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_bench::{bench_reliable, HarnessArgs};
use smc_transport::{Incoming, LinkConfig, ReliableChannel, SimNetwork};

fn main() {
    let args = HarnessArgs::from_env();
    let probes: usize = args.get("probes", 200);
    let bulk_kb: usize = args.get("bulk-kb", 512);

    let net = SimNetwork::with_seed(LinkConfig::usb_ip_link(), 7);
    let a = ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable());
    let b = ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable());

    // One-way latency probes via unreliable datagrams (like ping).
    let mut samples_ms: Vec<f64> = Vec::with_capacity(probes);
    for _ in 0..probes {
        let t0 = Instant::now();
        a.send_unreliable(b.local_id(), &[0u8; 8])
            .expect("probe send");
        let _ = b.recv(Some(Duration::from_secs(5))).expect("probe recv");
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let mean: f64 = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    println!("# link latency (one-way, ms): paper reports avg 1.5 (0.6 .. 2.3)");
    println!(
        "latency_ms mean={mean:.2} min={:.2} max={:.2}",
        samples_ms[0],
        samples_ms[samples_ms.len() - 1]
    );

    // Raw bulk transfer: reliable stream of 1 KB messages.
    let total = bulk_kb * 1024;
    let chunk = 1024;
    let t0 = Instant::now();
    for _ in 0..(total / chunk) {
        a.send(b.local_id(), vec![0xAB; chunk]).expect("bulk send");
    }
    let mut received = 0usize;
    while received < total {
        match b.recv(Some(Duration::from_secs(30))) {
            Ok(Incoming::Reliable { payload, .. }) => received += payload.len(),
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let kbps = received as f64 / 1024.0 / t0.elapsed().as_secs_f64();
    println!("# raw link transfer: paper reports ~575 KB/s");
    println!("raw_transfer_kbps {kbps:.1}");

    a.close();
    b.close();
    net.shutdown();
}
