//! Figure 4(b): bus payload throughput vs payload size, Siena-based bus
//! vs C-based (fast-forwarding) bus, on the paper's PDA testbed profile.
//!
//! ```text
//! cargo run --release -p smc-bench --bin fig4b -- [--events 150] [--step 250] [--max 3000] [--ideal]
//! ```
//!
//! Prints payload size vs sustained throughput (KB/s) for each bus — the
//! series in the paper's Fig 4(b). Both sit far below the raw 575 KB/s
//! link capacity, and the C-based bus sustains more.

use smc_bench::{HarnessArgs, Testbed, TestbedConfig};
use smc_match::EngineKind;

fn main() {
    let args = HarnessArgs::from_env();
    let events: usize = args.get("events", 150);
    let step: usize = args.get("step", 250);
    let max: usize = args.get("max", 3000);
    let ideal = args.has("ideal");
    let cpu_scale: f64 = args.get("cpu-scale", 1.0);

    println!("# Fig 4(b) reproduction: payload throughput vs payload size");
    println!(
        "# testbed: {} link, {} cpu, {} events/point",
        if ideal {
            "ideal"
        } else {
            "usb-ip (1.5ms, 575KB/s)"
        },
        if ideal { "native" } else { "ipaq-hx4700 model" },
        events
    );
    println!("{:>8} {:>14} {:>14}", "payload", "siena_kbps", "c_kbps");

    let payloads: Vec<usize> = (1..).map(|i| i * step).take_while(|&p| p <= max).collect();

    let run_engine = |engine: EngineKind| -> Vec<f64> {
        let mut config = if ideal {
            TestbedConfig::ideal(engine)
        } else {
            TestbedConfig::paper(engine)
        };
        config.cpu = config.cpu.scaled(cpu_scale);
        let bed = Testbed::start(&config).expect("testbed start");
        let _ = bed.measure_throughput(64, 10).expect("warmup");
        let out: Vec<f64> = payloads
            .iter()
            .map(|&p| bed.measure_throughput(p, events).expect("measure"))
            .collect();
        bed.shutdown();
        out
    };

    let siena = run_engine(EngineKind::Siena);
    let cbus = run_engine(EngineKind::FastForward);

    for (i, &p) in payloads.iter().enumerate() {
        println!("{:>8} {:>14.2} {:>14.2}", p, siena[i], cbus[i]);
    }

    let last = payloads.len() - 1;
    println!("#");
    println!(
        "# shape: at {}B the c-based bus sustains {:.1} KB/s vs siena {:.1} KB/s ({:.2}x)",
        payloads[last],
        cbus[last],
        siena[last],
        cbus[last] / siena[last]
    );
    println!(
        "# shape: both sit far below the raw link capacity of 575 KB/s: {}",
        if cbus[last] < 575.0 && siena[last] < 575.0 {
            "yes"
        } else {
            "NO"
        }
    );
}
