//! Extension experiment Ext-2 (paper §VI): power savings from
//! Elvin-style quenching.
//!
//! A sensor publishes at a fixed rate for a window with no subscriber,
//! then with one, then without again — once with quenching honoured and
//! once ignoring it. Reports how many radio transmissions the quenched
//! run avoided (each transmission is battery drain on a body-worn
//! device).
//!
//! ```text
//! cargo run --release -p smc-bench --bin quench_bench -- [--rate-hz 100] [--window-ms 500]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_bench::{bench_reliable, HarnessArgs, HARNESS_TIMEOUT};
use smc_core::{RemoteClient, SmcCell, SmcConfig};
use smc_discovery::{AgentConfig, DiscoveryConfig};
use smc_transport::{LinkConfig, ReliableChannel, SimNetwork};
use smc_types::{Event, Filter, Op, ServiceId, ServiceInfo};

struct Run {
    transmitted: u64,
    suppressed: u64,
}

fn run(honour_quench: bool, rate_hz: u64, window: Duration) -> Run {
    let net = SimNetwork::with_seed(LinkConfig::ideal(), 3);
    let smc_config = SmcConfig {
        discovery: DiscoveryConfig {
            beacon_interval: Duration::from_millis(25),
            lease: Duration::from_secs(600),
            grace: Duration::from_secs(600),
            ..DiscoveryConfig::default()
        },
        reliable: bench_reliable(),
        ..SmcConfig::default()
    };
    let cell = SmcCell::start(
        Arc::new(net.endpoint()),
        Arc::new(net.endpoint()),
        smc_config,
    );
    let connect = |device_type: &str| {
        RemoteClient::connect(
            ServiceInfo::new(ServiceId::NIL, device_type).with_role("bench"),
            ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable()),
            AgentConfig::default(),
            HARNESS_TIMEOUT,
        )
        .expect("connect")
    };
    let sensor = connect("bench.sensor");
    sensor
        .advertise(
            Filter::for_type("bench.reading").with(("sensor", Op::Eq, "hr")),
            HARNESS_TIMEOUT,
        )
        .expect("advertise");

    let period = Duration::from_micros(1_000_000 / rate_hz);
    let mut transmitted = 0u64;
    let mut suppressed = 0u64;
    let mut tick = |until: Instant| {
        while Instant::now() < until {
            if honour_quench && sensor.is_quenched() {
                suppressed += 1;
            } else {
                sensor
                    .publish_nowait(
                        Event::builder("bench.reading")
                            .attr("sensor", "hr")
                            .attr("bpm", 70i64)
                            .build(),
                    )
                    .expect("publish");
                transmitted += 1;
            }
            std::thread::sleep(period);
        }
    };

    // Phase 1: nobody listening.
    tick(Instant::now() + window);
    // Phase 2: a monitor subscribes.
    let monitor = connect("bench.monitor");
    let sub = monitor
        .subscribe(Filter::for_type("bench.reading"), HARNESS_TIMEOUT)
        .expect("subscribe");
    tick(Instant::now() + window);
    // Phase 3: the monitor unsubscribes again.
    monitor
        .unsubscribe(sub, HARNESS_TIMEOUT)
        .expect("unsubscribe");
    std::thread::sleep(Duration::from_millis(50)); // quench signal propagates
    tick(Instant::now() + window);

    monitor.shutdown();
    sensor.shutdown();
    cell.shutdown();
    net.shutdown();
    Run {
        transmitted,
        suppressed,
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let rate_hz: u64 = args.get("rate-hz", 100);
    let window = Duration::from_millis(args.get("window-ms", 500));

    println!("# Ext-2: quenching power savings ({rate_hz} Hz sampling, {window:?} phases)");
    let naive = run(false, rate_hz, window);
    let quenched = run(true, rate_hz, window);
    println!("{:>10} {:>14} {:>14}", "mode", "transmitted", "suppressed");
    println!(
        "{:>10} {:>14} {:>14}",
        "ignore", naive.transmitted, naive.suppressed
    );
    println!(
        "{:>10} {:>14} {:>14}",
        "honour", quenched.transmitted, quenched.suppressed
    );
    let total = quenched.transmitted + quenched.suppressed;
    println!(
        "# quenching avoided {:.0}% of radio transmissions",
        100.0 * quenched.suppressed as f64 / total.max(1) as f64
    );
}
