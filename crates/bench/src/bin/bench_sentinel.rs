//! Perf regression sentinel: diffs two `BENCH_perf.json` artifacts and
//! *attributes* any throughput delta to the pipeline stage whose share
//! shifted, instead of just reporting a ratio.
//!
//! ```text
//! cargo run --release -p smc-bench --bin bench_sentinel -- \
//!     [--baseline results/BENCH_perf.json] [--candidate <path>] \
//!     [--out results/BENCH_attribution.json]
//! ```
//!
//! For every sweep cell present in both artifacts the sentinel compares
//! speedups; a cell regressing below [`GATE_FRACTION`] of its baseline
//! must come with an *explanation* — a per-stage share shift of at
//! least [`MIN_SHIFT_MILLI`] ‰ naming where the time went. A regression
//! nobody can attribute is the failure mode this bin exists to catch:
//! it exits non-zero.
//!
//! Per-cell gating only bites when both artifacts ran at the same
//! `events_per_publisher` scale: a smoke sweep diffed against a full
//! baseline has wildly noisy per-cell speedups (the overall geomean is
//! the stable signal), so on a scale mismatch unattributed cells are
//! reported as advisory and only the overall ratio gates.
//!
//! The sentinel also distils the fan-out-1 story the throughput bench
//! only tracks as a ratio: the per-stage breakdown of the candidate's
//! fan-out-1 cells, naming the dominant stage behind the historical
//! 0.70–0.94× singular-path gap. Writes `results/BENCH_attribution.json`.
//!
//! When both artifacts carry the `multicore` dimension (the sharded
//! sweep), each shard count's `scale_vs_one_shard` is diffed too — raw
//! events/second is machine-bound, the scaling ratio is not. A baseline
//! predating the dimension, a scale mismatch, or differing core counts
//! demote the comparison to advisory.

use std::fmt::Write as _;

use smc_bench::HarnessArgs;

/// A cell regressing below this fraction of its baseline speedup needs
/// a stage attribution (mirrors the throughput bench's gate).
const GATE_FRACTION: f64 = 0.85;

/// The smallest per-stage share shift (‰ of the cell's window) that
/// counts as an attribution.
const MIN_SHIFT_MILLI: i64 = 30;

/// One stage row parsed back out of a `"stages"` array.
#[derive(Debug, Clone)]
struct Stage {
    stage: String,
    kind: String,
    share_milli: i64,
    p95_micros: u64,
}

/// One sweep cell parsed back out of a `"results"` array.
#[derive(Debug, Clone)]
struct Cell {
    publishers: u64,
    fanout: u64,
    speedup: f64,
    stages: Vec<Stage>,
}

/// One sharded-sweep row parsed back out of a `"multicore"` array.
#[derive(Debug, Clone, Copy)]
struct ShardCell {
    shards: u64,
    events_per_sec: f64,
    scale_vs_one_shard: f64,
}

/// A parsed `BENCH_perf.json`.
#[derive(Debug)]
struct Perf {
    cells: Vec<Cell>,
    /// Sharded-sweep rows; empty for artifacts predating the dimension.
    multicore: Vec<ShardCell>,
    speedup_total: f64,
    fanout1_ratio: f64,
    /// Sweep scale (`config.events_per_publisher`); 0 when absent.
    events_per_publisher: u64,
    /// Host cores the artifact ran on (`config.cores`); 0 when absent.
    cores: u64,
}

/// The first number following `"key":` in `s`, if any (hand-rolled:
/// the repo carries no JSON parser dependency).
fn num_field(s: &str, key: &str) -> Option<f64> {
    let k = format!("\"{key}\":");
    let at = s.find(&k)? + k.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The string following `"key": "` in `s`, if any.
fn str_field(s: &str, key: &str) -> Option<String> {
    let k = format!("\"{key}\": \"");
    let at = s.find(&k)? + k.len();
    let rest = &s[at..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_perf(path: &str) -> Result<Perf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let speedup_total = num_field(&text, "speedup_total")
        .ok_or_else(|| format!("'{path}' has no \"speedup_total\" — not a BENCH_perf artifact?"))?;
    let fanout1_ratio = num_field(&text, "fanout1_ratio").unwrap_or(0.0);
    let mut cells = Vec::new();
    let mut multicore = Vec::new();
    // Each sweep cell is one line in the "results" array; sharded-sweep
    // rows lead with "shards" in the "multicore" array.
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("{\"shards\":") {
            if let (Some(shards), Some(eps), Some(scale)) = (
                num_field(line, "shards"),
                num_field(line, "events_per_sec"),
                num_field(line, "scale_vs_one_shard"),
            ) {
                multicore.push(ShardCell {
                    shards: shards as u64,
                    events_per_sec: eps,
                    scale_vs_one_shard: scale,
                });
            }
            continue;
        }
        if !line.starts_with("{\"publishers\":") {
            continue;
        }
        let (publishers, fanout, speedup) = match (
            num_field(line, "publishers"),
            num_field(line, "fanout"),
            num_field(line, "speedup"),
        ) {
            (Some(p), Some(f), Some(s)) => (p as u64, f as u64, s),
            _ => continue,
        };
        let mut stages = Vec::new();
        for chunk in line.split("{\"stage\": \"").skip(1) {
            let Some(name_end) = chunk.find('"') else {
                continue;
            };
            let body = &chunk[name_end..];
            stages.push(Stage {
                stage: chunk[..name_end].to_string(),
                kind: str_field(body, "kind").unwrap_or_else(|| "service".into()),
                share_milli: num_field(body, "share_milli").unwrap_or(0.0) as i64,
                p95_micros: num_field(body, "p95_micros").unwrap_or(0.0) as u64,
            });
        }
        cells.push(Cell {
            publishers,
            fanout,
            speedup,
            stages,
        });
    }
    if cells.is_empty() {
        return Err(format!("'{path}' has no sweep rows"));
    }
    Ok(Perf {
        cells,
        multicore,
        speedup_total,
        fanout1_ratio,
        events_per_publisher: num_field(&text, "events_per_publisher").unwrap_or(0.0) as u64,
        cores: num_field(&text, "cores").unwrap_or(0.0) as u64,
    })
}

/// The per-stage share shift (candidate − baseline, ‰) with the largest
/// magnitude, across the union of both cells' stages.
fn max_shift(baseline: &Cell, candidate: &Cell) -> Option<(String, i64)> {
    let share = |cell: &Cell, name: &str| {
        cell.stages
            .iter()
            .find(|s| s.stage == name)
            .map_or(0, |s| s.share_milli)
    };
    let mut names: Vec<&str> = baseline
        .stages
        .iter()
        .chain(&candidate.stages)
        .map(|s| s.stage.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|n| (n.to_string(), share(candidate, n) - share(baseline, n)))
        .max_by_key(|(_, shift)| shift.abs())
}

fn main() {
    let args = HarnessArgs::from_env();
    let baseline_path: String = args.get("baseline", "results/BENCH_perf.json".to_string());
    let candidate_path: String = args.get("candidate", baseline_path.clone());
    let out_path: String = args.get("out", "results/BENCH_attribution.json".to_string());

    let baseline = match parse_perf(&baseline_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    };
    let candidate = match parse_perf(&candidate_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    };

    eprintln!("# bench sentinel: '{candidate_path}' vs baseline '{baseline_path}'");
    let like_for_like = baseline.events_per_publisher == candidate.events_per_publisher;
    if !like_for_like {
        eprintln!(
            "scale mismatch: baseline ran {} events/publisher, candidate {} — per-cell \
             speedups are not comparable, so unattributed cells are advisory and only \
             the overall ratio gates",
            baseline.events_per_publisher, candidate.events_per_publisher
        );
    }
    let total_ratio = candidate.speedup_total / baseline.speedup_total.max(1e-9);
    let total_regressed = total_ratio < GATE_FRACTION;
    eprintln!(
        "overall speedup: baseline {:.2}x  candidate {:.2}x  ratio {:.3}{}",
        baseline.speedup_total,
        candidate.speedup_total,
        total_ratio,
        if total_regressed { "  REGRESSED" } else { "" }
    );

    // Per-cell diff: every regressed cell must name the stage whose
    // share grew to eat the lost throughput.
    let mut cell_reports: Vec<String> = Vec::new();
    let mut unattributed = 0u64;
    for cand in &candidate.cells {
        let Some(base) = baseline
            .cells
            .iter()
            .find(|b| b.publishers == cand.publishers && b.fanout == cand.fanout)
        else {
            continue;
        };
        let ratio = cand.speedup / base.speedup.max(1e-9);
        let regressed = ratio < GATE_FRACTION;
        let shift = max_shift(base, cand);
        let attributed = regressed
            && shift
                .as_ref()
                .map(|(_, s)| s.abs() >= MIN_SHIFT_MILLI)
                .unwrap_or(false);
        if regressed {
            match &shift {
                Some((stage, s)) if attributed => eprintln!(
                    "cell p={} f={}: ratio {ratio:.3} REGRESSED — attributed to stage \
                     '{stage}' (share shifted {s:+}‰)",
                    cand.publishers, cand.fanout
                ),
                _ => {
                    unattributed += 1;
                    eprintln!(
                        "cell p={} f={}: ratio {ratio:.3} REGRESSED — no stage share \
                         shifted ≥{MIN_SHIFT_MILLI}‰: UNATTRIBUTED",
                        cand.publishers, cand.fanout
                    );
                }
            }
        }
        let (shift_stage, shift_milli) = shift.unwrap_or_default();
        cell_reports.push(format!(
            "{{\"publishers\": {}, \"fanout\": {}, \"baseline_speedup\": {:.3}, \
             \"candidate_speedup\": {:.3}, \"ratio\": {ratio:.3}, \"regressed\": {regressed}, \
             \"max_shift_stage\": \"{shift_stage}\", \"max_shift_milli\": {shift_milli}}}",
            cand.publishers, cand.fanout, base.speedup, cand.speedup
        ));
    }

    // The sharded sweep: diff each shard count's scaling against the
    // baseline's. Gated only when the baseline carries the dimension,
    // ran at the same scale, and on the same core count — anything else
    // (an artifact predating the dimension above all) is advisory.
    let multicore_gated = !baseline.multicore.is_empty()
        && like_for_like
        && baseline.cores == candidate.cores
        && baseline.cores > 0;
    let mut multicore_regressions = 0u64;
    let mut shard_reports: Vec<String> = Vec::new();
    if baseline.multicore.is_empty() && !candidate.multicore.is_empty() {
        eprintln!(
            "multicore: baseline has no sharded-sweep dimension — candidate rows are \
             advisory (the next committed baseline will carry them)"
        );
    } else if !multicore_gated && !candidate.multicore.is_empty() {
        eprintln!(
            "multicore: scale or core-count mismatch (baseline {} cores, candidate {}) — \
             scaling diffs are advisory",
            baseline.cores, candidate.cores
        );
    }
    for cand in &candidate.multicore {
        let base = baseline.multicore.iter().find(|b| b.shards == cand.shards);
        let (base_scale, ratio) = match base {
            Some(b) => (
                b.scale_vs_one_shard,
                cand.scale_vs_one_shard / b.scale_vs_one_shard.max(1e-9),
            ),
            None => (0.0, 1.0),
        };
        let regressed = base.is_some() && ratio < GATE_FRACTION;
        if regressed {
            multicore_regressions += 1;
            eprintln!(
                "multicore shards={}: scaling {:.2}x vs baseline {:.2}x (ratio {ratio:.3}) \
                 REGRESSED{}",
                cand.shards,
                cand.scale_vs_one_shard,
                base_scale,
                if multicore_gated { "" } else { " (advisory)" }
            );
        } else {
            eprintln!(
                "multicore shards={}: {:.0} ev/s, scaling {:.2}x{}",
                cand.shards,
                cand.events_per_sec,
                cand.scale_vs_one_shard,
                base.map(|_| format!(" (baseline {base_scale:.2}x, ratio {ratio:.3})"))
                    .unwrap_or_default()
            );
        }
        shard_reports.push(format!(
            "{{\"shards\": {}, \"events_per_sec\": {:.0}, \"scale_vs_one_shard\": {:.3}, \
             \"baseline_scale\": {base_scale:.3}, \"ratio\": {ratio:.3}, \
             \"regressed\": {regressed}}}",
            cand.shards, cand.events_per_sec, cand.scale_vs_one_shard
        ));
    }

    // The fan-out-1 story: average each stage's share across the
    // candidate's fan-out-1 cells and name the dominant one — the
    // bottleneck behind the known 0.70–0.94× single-subscriber gap.
    let f1: Vec<&Cell> = candidate.cells.iter().filter(|c| c.fanout == 1).collect();
    let mut f1_stages: Vec<(String, String, i64, u64)> = Vec::new();
    for cell in &f1 {
        for s in &cell.stages {
            match f1_stages.iter_mut().find(|(n, ..)| *n == s.stage) {
                Some(row) => {
                    row.2 += s.share_milli;
                    row.3 = row.3.max(s.p95_micros);
                }
                None => {
                    f1_stages.push((s.stage.clone(), s.kind.clone(), s.share_milli, s.p95_micros))
                }
            }
        }
    }
    for row in &mut f1_stages {
        row.2 /= f1.len().max(1) as i64;
    }
    f1_stages.sort_by_key(|row| std::cmp::Reverse(row.2));
    let bottleneck = f1_stages.first().cloned();
    if let Some((stage, kind, share, p95)) = &bottleneck {
        eprintln!(
            "fan-out-1 bottleneck: stage '{stage}' ({kind}) holds {share}‰ of the window \
             (p95 {p95} µs) — the per-publish cost batching amortises; the tracked \
             single-subscriber ratio is {:.2}x",
            candidate.fanout1_ratio
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"bench_sentinel\",");
    let _ = writeln!(json, "  \"baseline\": \"{baseline_path}\",");
    let _ = writeln!(json, "  \"candidate\": \"{candidate_path}\",");
    let _ = writeln!(json, "  \"gate_fraction\": {GATE_FRACTION},");
    let _ = writeln!(json, "  \"min_shift_milli\": {MIN_SHIFT_MILLI},");
    let _ = writeln!(
        json,
        "  \"events_per_publisher\": {{\"baseline\": {}, \"candidate\": {}, \
         \"like_for_like\": {like_for_like}}},",
        baseline.events_per_publisher, candidate.events_per_publisher
    );
    let _ = writeln!(
        json,
        "  \"speedup_total\": {{\"baseline\": {:.3}, \"candidate\": {:.3}, \
         \"ratio\": {total_ratio:.3}, \"regressed\": {total_regressed}}},",
        baseline.speedup_total, candidate.speedup_total
    );
    json.push_str("  \"cells\": [\n");
    for (i, row) in cell_reports.iter().enumerate() {
        let comma = if i + 1 < cell_reports.len() { "," } else { "" };
        let _ = writeln!(json, "    {row}{comma}");
    }
    json.push_str("  ],\n");
    json.push_str("  \"multicore\": {\n");
    let _ = writeln!(json, "    \"gated\": {multicore_gated},");
    let _ = writeln!(
        json,
        "    \"cores\": {{\"baseline\": {}, \"candidate\": {}}},",
        baseline.cores, candidate.cores
    );
    json.push_str("    \"cells\": [\n");
    for (i, row) in shard_reports.iter().enumerate() {
        let comma = if i + 1 < shard_reports.len() { "," } else { "" };
        let _ = writeln!(json, "      {row}{comma}");
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"fanout1\": {{");
    let _ = writeln!(json, "    \"known_gap\": \"0.70-0.94x\",");
    let _ = writeln!(
        json,
        "    \"candidate_ratio\": {:.3},",
        candidate.fanout1_ratio
    );
    json.push_str("    \"stages\": [\n");
    for (i, (stage, kind, share, p95)) in f1_stages.iter().enumerate() {
        let comma = if i + 1 < f1_stages.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"stage\": \"{stage}\", \"kind\": \"{kind}\", \
             \"mean_share_milli\": {share}, \"p95_micros\": {p95}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    match &bottleneck {
        Some((stage, kind, share, _)) => {
            let _ = writeln!(
                json,
                "    \"bottleneck\": {{\"stage\": \"{stage}\", \"kind\": \"{kind}\", \
                 \"mean_share_milli\": {share}, \"detail\": \"dominant fan-out-1 stage: \
                 a single subscriber cannot amortise the per-publish shared encode, which \
                 historically put the singular snapshot path at 0.70-0.94x the locked arm; \
                 the gated batched path amortises '{stage}' across each burst\"}}"
            );
        }
        None => {
            let _ = writeln!(json, "    \"bottleneck\": null");
        }
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"unattributed_regressions\": {unattributed}");
    json.push_str("}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(&out_path, &json).expect("write attribution artifact");
    eprintln!("wrote {out_path}");

    if multicore_regressions > 0 && multicore_gated {
        eprintln!(
            "FAIL: {multicore_regressions} sharded-sweep cell(s) scaling below \
             {GATE_FRACTION}x of the committed baseline's scaling"
        );
        std::process::exit(1);
    }
    if unattributed > 0 && like_for_like {
        eprintln!(
            "FAIL: {unattributed} regressed cell(s) beyond {GATE_FRACTION}x with no stage \
             share shift ≥{MIN_SHIFT_MILLI}‰ to explain them"
        );
        std::process::exit(1);
    }
    if unattributed > 0 {
        eprintln!(
            "note: {unattributed} unattributed cell(s) under a scale mismatch — advisory \
             only (rerun both artifacts at the same --events to gate per cell)"
        );
    }
    if total_regressed {
        let explained = candidate
            .cells
            .iter()
            .filter_map(|cand| {
                let base = baseline
                    .cells
                    .iter()
                    .find(|b| b.publishers == cand.publishers && b.fanout == cand.fanout)?;
                max_shift(base, cand)
            })
            .any(|(_, s)| s.abs() >= MIN_SHIFT_MILLI);
        if !explained {
            eprintln!(
                "FAIL: overall speedup ratio {total_ratio:.3} below {GATE_FRACTION} with no \
                 per-stage attribution anywhere in the sweep"
            );
            std::process::exit(1);
        }
    }
}
