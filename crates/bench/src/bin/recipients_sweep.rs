//! Extension experiment Ext-1 (paper §VI): "variation in delays incurred
//! depending on … number of recipients".
//!
//! One publisher, `1..=max` subscribers, fixed payload: measures the mean
//! time from publish until the *last* subscriber receives the event.
//!
//! ```text
//! cargo run --release -p smc-bench --bin recipients_sweep -- [--max 16] [--payload 500] [--samples 20] [--engine ff|siena]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use smc_bench::{bench_reliable, stats, HarnessArgs, HARNESS_TIMEOUT};
use smc_core::{RemoteClient, SmcCell, SmcConfig};
use smc_discovery::{AgentConfig, DiscoveryConfig};
use smc_match::EngineKind;
use smc_transport::{CpuProfile, LinkConfig, ReliableChannel, SimNetwork};
use smc_types::{Event, Filter, ServiceId, ServiceInfo};

fn main() {
    let args = HarnessArgs::from_env();
    let max: usize = args.get("max", 16);
    let payload: usize = args.get("payload", 500);
    let samples: usize = args.get("samples", 20);
    let engine = EngineKind::parse(&args.get("engine", "ff".to_string())).expect("engine name");

    println!("# Ext-1: delivery delay vs number of recipients ({engine} engine, {payload}B)");
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "subscribers", "mean_ms", "min_ms", "max_ms"
    );

    let net = SimNetwork::with_seed(LinkConfig::ideal(), 11);
    let smc_config = SmcConfig {
        engine,
        cpu_profile: CpuProfile::native(),
        discovery: DiscoveryConfig {
            beacon_interval: Duration::from_millis(25),
            lease: Duration::from_secs(600),
            grace: Duration::from_secs(600),
            ..DiscoveryConfig::default()
        },
        reliable: bench_reliable(),
        ..SmcConfig::default()
    };
    let cell = SmcCell::start(
        Arc::new(net.endpoint()),
        Arc::new(net.endpoint()),
        smc_config,
    );
    let connect = |device_type: String| {
        RemoteClient::connect(
            ServiceInfo::new(ServiceId::NIL, device_type).with_role("bench"),
            ReliableChannel::new(Arc::new(net.endpoint()), bench_reliable()),
            AgentConfig::default(),
            HARNESS_TIMEOUT,
        )
        .expect("connect")
    };
    let publisher = connect("bench.publisher".into());
    let link = LinkConfig::usb_ip_link();
    net.set_link_between(publisher.local_id(), cell.bus_endpoint(), link.clone());

    let mut subscribers: Vec<Arc<RemoteClient>> = Vec::new();
    for n in 1..=max {
        let sub = connect(format!("bench.subscriber{n}"));
        sub.subscribe(Filter::for_type("bench.event"), HARNESS_TIMEOUT)
            .expect("subscribe");
        net.set_link_between(sub.local_id(), cell.bus_endpoint(), link.clone());
        subscribers.push(sub);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            publisher
                .publish_nowait(
                    Event::builder("bench.event")
                        .payload(vec![7u8; payload])
                        .build(),
                )
                .expect("publish");
            for s in &subscribers {
                let _ = s.next_event(HARNESS_TIMEOUT).expect("deliver");
            }
            times.push(t0.elapsed());
        }
        let st = stats(&times);
        println!(
            "{:>12} {:>12.2} {:>10.2} {:>10.2}",
            n, st.mean_ms, st.min_ms, st.max_ms
        );
    }

    for s in &subscribers {
        s.shutdown();
    }
    publisher.shutdown();
    cell.shutdown();
    net.shutdown();
}
