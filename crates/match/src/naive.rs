//! Linear-scan engine: the correctness oracle.

use std::sync::Arc;

use smc_types::{Error, Event, Result, ServiceId, Subscription, SubscriptionId};

use crate::engine::{MatchScratch, Matcher, RouteSnapshot};

/// The simplest possible engine: every match evaluates every filter.
///
/// Used as the semantics oracle in equivalence tests and as the baseline in
/// matching benchmarks. For the handful of subscriptions in a body-area
/// network it is actually competitive; it degrades linearly beyond that.
#[derive(Debug, Default)]
pub struct NaiveEngine {
    subs: Vec<Subscription>,
}

impl NaiveEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        NaiveEngine::default()
    }
}

impl Matcher for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn subscribe(&mut self, sub: Subscription) -> Result<()> {
        if self.subs.iter().any(|s| s.id == sub.id) {
            return Err(Error::AlreadyExists(sub.id.to_string()));
        }
        self.subs.push(sub);
        Ok(())
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<Subscription> {
        match self.subs.iter().position(|s| s.id == id) {
            Some(i) => Ok(self.subs.remove(i)),
            None => Err(Error::NotFound(id.to_string())),
        }
    }

    fn matching_subscriptions(&mut self, event: &Event) -> Vec<SubscriptionId> {
        let mut out: Vec<SubscriptionId> = self
            .subs
            .iter()
            .filter(|s| s.filter.matches(event))
            .map(|s| s.id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn matching_subscribers(&mut self, event: &Event) -> Vec<ServiceId> {
        let mut out: Vec<ServiceId> = self
            .subs
            .iter()
            .filter(|s| s.filter.matches(event))
            .map(|s| s.subscriber)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn snapshot(&self) -> Arc<dyn RouteSnapshot> {
        Arc::new(NaiveSnapshot {
            subs: self.subs.clone(),
        })
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

/// A frozen copy of the subscription list (see [`Matcher::snapshot`]).
#[derive(Debug)]
struct NaiveSnapshot {
    subs: Vec<Subscription>,
}

impl RouteSnapshot for NaiveSnapshot {
    fn matching_subscribers_into(
        &self,
        event: &Event,
        _scratch: &mut MatchScratch,
        out: &mut Vec<ServiceId>,
    ) {
        out.clear();
        out.extend(
            self.subs
                .iter()
                .filter(|s| s.filter.matches(event))
                .map(|s| s.subscriber),
        );
        out.sort_unstable();
        out.dedup();
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_types::{Filter, Op};

    fn sub(id: u64, svc: u64, filter: Filter) -> Subscription {
        Subscription::new(SubscriptionId(id), ServiceId::from_raw(svc), filter)
    }

    #[test]
    fn subscribe_match_unsubscribe() {
        let mut m = NaiveEngine::new();
        m.subscribe(sub(1, 10, Filter::for_type("a"))).unwrap();
        m.subscribe(sub(2, 11, Filter::for_type("b"))).unwrap();
        assert_eq!(m.len(), 2);
        let e = Event::new("a");
        assert_eq!(m.matching_subscriptions(&e), vec![SubscriptionId(1)]);
        assert_eq!(m.matching_subscribers(&e), vec![ServiceId::from_raw(10)]);
        let removed = m.unsubscribe(SubscriptionId(1)).unwrap();
        assert_eq!(removed.subscriber, ServiceId::from_raw(10));
        assert!(m.matching_subscriptions(&e).is_empty());
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut m = NaiveEngine::new();
        m.subscribe(sub(1, 10, Filter::any())).unwrap();
        assert!(matches!(
            m.subscribe(sub(1, 11, Filter::any())),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn unknown_unsubscribe_errors() {
        let mut m = NaiveEngine::new();
        assert!(matches!(
            m.unsubscribe(SubscriptionId(9)),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn subscriber_dedup() {
        let mut m = NaiveEngine::new();
        m.subscribe(sub(1, 10, Filter::any())).unwrap();
        m.subscribe(sub(2, 10, Filter::for_type("a"))).unwrap();
        let e = Event::new("a");
        assert_eq!(m.matching_subscriptions(&e).len(), 2);
        assert_eq!(m.matching_subscribers(&e), vec![ServiceId::from_raw(10)]);
    }

    #[test]
    fn content_filtering() {
        let mut m = NaiveEngine::new();
        m.subscribe(sub(1, 10, Filter::any().with(("bpm", Op::Gt, 120i64))))
            .unwrap();
        let calm = Event::builder("r").attr("bpm", 60i64).build();
        let racing = Event::builder("r").attr("bpm", 150i64).build();
        assert!(m.matching_subscriptions(&calm).is_empty());
        assert_eq!(m.matching_subscriptions(&racing).len(), 1);
    }
}
