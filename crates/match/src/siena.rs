//! The Siena-style general-purpose engine.
//!
//! The paper's first prototype wrapped the Java Siena codebase, translating
//! every event and filter between the SMC's own types and Siena's
//! notification model (and, once the C matcher replaced Siena's core,
//! across a JNI boundary as well). The performance section attributes the
//! Siena bus's higher response time and lower throughput to exactly this
//! copying and translation.
//!
//! This engine reproduces that cost structure honestly: on every match it
//! performs the same representation round-trip the prototype paid — a full
//! wire-codec encode/decode of the event (the marshalling across the
//! engine boundary) followed by construction of an owned, string-keyed
//! *notification* — before evaluating candidate filters. Filters are also
//! deep-translated at subscription time, with the event-type restriction
//! folded into an ordinary constraint the way Siena treats types as plain
//! attributes.

use std::collections::HashMap;
use std::sync::Arc;

use smc_types::codec::{from_bytes, to_bytes};
use smc_types::{
    AttributeValue, Constraint, Error, Event, Op, Result, ServiceId, Subscription, SubscriptionId,
};

use crate::engine::{MatchScratch, Matcher, RouteSnapshot};

/// Reserved attribute name carrying the event type inside a notification.
///
/// Siena has no first-class event type; the prototype encoded it as an
/// attribute. The leading NUL keeps it from colliding with user attributes.
const TYPE_ATTR: &str = "\u{0}type";

/// A Siena-style notification: a flat, owned, string-keyed attribute list.
#[derive(Debug, Clone)]
struct SienaNotification {
    attrs: Vec<(String, AttributeValue)>,
}

impl SienaNotification {
    /// Translates an event into notification form.
    ///
    /// This is the deliberately expensive step: the event is first pushed
    /// through the wire codec (emulating the marshalling the prototype did
    /// between its own types and the engine's), then every attribute is
    /// copied into a fresh owned list, with the event type and payload
    /// becoming ordinary attributes.
    fn from_event(event: &Event) -> Self {
        // Marshal across the "engine boundary": a full serialise/parse
        // round, exactly the work the Java/JNI path performed.
        let wire = to_bytes(event);
        let event: Event = from_bytes(&wire).expect("event round-trips through own codec");

        let mut attrs = Vec::with_capacity(event.attributes().len() + 2);
        attrs.push((
            TYPE_ATTR.to_owned(),
            AttributeValue::Str(event.event_type().to_owned()),
        ));
        for (name, value) in event.attributes().iter() {
            attrs.push((name.to_owned(), value.clone()));
        }
        if !event.payload().is_empty() {
            attrs.push((
                format!("{TYPE_ATTR}payload"),
                AttributeValue::Bytes(event.payload().to_vec()),
            ));
        }
        attrs.sort_by(|a, b| a.0.cmp(&b.0));
        SienaNotification { attrs }
    }

    fn get(&self, name: &str) -> Option<&AttributeValue> {
        self.attrs
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.attrs[i].1)
    }
}

/// A filter translated to Siena form: a plain constraint conjunction with
/// the type restriction folded in as a constraint on [`TYPE_ATTR`].
#[derive(Debug, Clone)]
struct SienaFilter {
    constraints: Vec<Constraint>,
}

impl SienaFilter {
    fn from_filter(filter: &smc_types::Filter) -> Self {
        let mut constraints = Vec::with_capacity(filter.constraints().len() + 1);
        if let Some(t) = filter.event_type() {
            constraints.push(Constraint::new(TYPE_ATTR, Op::Eq, t));
        }
        constraints.extend(filter.constraints().iter().cloned());
        SienaFilter { constraints }
    }

    fn matches(&self, n: &SienaNotification) -> bool {
        self.constraints.iter().all(|c| match n.get(&c.name) {
            Some(v) => c.matches_value(v),
            None => false,
        })
    }
}

#[derive(Debug, Clone)]
struct Entry {
    subscriber: ServiceId,
    filter: SienaFilter,
    /// The type restriction, used only to maintain the candidate index.
    type_key: Option<String>,
}

/// The Siena-based engine.
///
/// # Example
///
/// ```
/// use smc_match::{Matcher, SienaEngine};
/// use smc_types::{Event, Filter, Op, ServiceId, Subscription, SubscriptionId};
///
/// let mut engine = SienaEngine::new();
/// engine.subscribe(Subscription::new(
///     SubscriptionId(1),
///     ServiceId::from_raw(0xA),
///     Filter::for_type("smc.alarm").with(("severity", Op::Ge, 2i64)),
/// ))?;
/// let alarm = Event::builder("smc.alarm").attr("severity", 3i64).build();
/// assert_eq!(engine.matching_subscriptions(&alarm), vec![SubscriptionId(1)]);
/// # Ok::<(), smc_types::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct SienaEngine {
    entries: HashMap<SubscriptionId, Entry>,
    /// Candidate index: subscriptions restricted to one event type.
    by_type: HashMap<String, Vec<SubscriptionId>>,
    /// Subscriptions with no type restriction (candidates for every event).
    untyped: Vec<SubscriptionId>,
}

impl SienaEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        SienaEngine::default()
    }

    fn candidates(&self, event_type: &str) -> impl Iterator<Item = SubscriptionId> + '_ {
        self.by_type
            .get(event_type)
            .into_iter()
            .flatten()
            .chain(self.untyped.iter())
            .copied()
    }
}

impl Matcher for SienaEngine {
    fn name(&self) -> &'static str {
        "siena"
    }

    fn subscribe(&mut self, sub: Subscription) -> Result<()> {
        if self.entries.contains_key(&sub.id) {
            return Err(Error::AlreadyExists(sub.id.to_string()));
        }
        let type_key = sub.filter.event_type().map(str::to_owned);
        let entry = Entry {
            subscriber: sub.subscriber,
            filter: SienaFilter::from_filter(&sub.filter),
            type_key: type_key.clone(),
        };
        match type_key {
            Some(t) => self.by_type.entry(t).or_default().push(sub.id),
            None => self.untyped.push(sub.id),
        }
        self.entries.insert(sub.id, entry);
        Ok(())
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<Subscription> {
        let entry = self
            .entries
            .remove(&id)
            .ok_or_else(|| Error::NotFound(id.to_string()))?;
        match &entry.type_key {
            Some(t) => {
                if let Some(list) = self.by_type.get_mut(t) {
                    list.retain(|&s| s != id);
                    if list.is_empty() {
                        self.by_type.remove(t);
                    }
                }
            }
            None => self.untyped.retain(|&s| s != id),
        }
        // Reconstruct the original filter shape for the caller.
        let mut filter = match &entry.type_key {
            Some(t) => smc_types::Filter::for_type(t.clone()),
            None => smc_types::Filter::any(),
        };
        for c in &entry.filter.constraints {
            if c.name != TYPE_ATTR {
                filter.push(c.clone());
            }
        }
        Ok(Subscription::new(id, entry.subscriber, filter))
    }

    fn matching_subscriptions(&mut self, event: &Event) -> Vec<SubscriptionId> {
        let notification = SienaNotification::from_event(event);
        let mut out: Vec<SubscriptionId> = self
            .candidates(event.event_type())
            .filter(|id| {
                self.entries
                    .get(id)
                    .is_some_and(|e| e.filter.matches(&notification))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn matching_subscribers(&mut self, event: &Event) -> Vec<ServiceId> {
        let subs = self.matching_subscriptions(event);
        let mut out: Vec<ServiceId> = subs
            .iter()
            .filter_map(|id| self.entries.get(id).map(|e| e.subscriber))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn snapshot(&self) -> Arc<dyn RouteSnapshot> {
        Arc::new(SienaSnapshot {
            entries: self.entries.clone(),
            by_type: self.by_type.clone(),
            untyped: self.untyped.clone(),
        })
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A frozen copy of the engine's candidate index and translated filters
/// (see [`Matcher::snapshot`]).
///
/// Matching from a snapshot still pays the full translation round-trip
/// into notification form — the snapshot changes *where* state lives,
/// not the engine's deliberately honest cost model.
#[derive(Debug)]
struct SienaSnapshot {
    entries: HashMap<SubscriptionId, Entry>,
    by_type: HashMap<String, Vec<SubscriptionId>>,
    untyped: Vec<SubscriptionId>,
}

impl RouteSnapshot for SienaSnapshot {
    fn matching_subscribers_into(
        &self,
        event: &Event,
        _scratch: &mut MatchScratch,
        out: &mut Vec<ServiceId>,
    ) {
        let notification = SienaNotification::from_event(event);
        out.clear();
        let candidates = self
            .by_type
            .get(event.event_type())
            .into_iter()
            .flatten()
            .chain(self.untyped.iter());
        out.extend(candidates.filter_map(|id| {
            self.entries
                .get(id)
                .filter(|e| e.filter.matches(&notification))
                .map(|e| e.subscriber)
        }));
        out.sort_unstable();
        out.dedup();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_types::Filter;

    fn sub(id: u64, svc: u64, filter: Filter) -> Subscription {
        Subscription::new(SubscriptionId(id), ServiceId::from_raw(svc), filter)
    }

    #[test]
    fn typed_and_untyped_candidates() {
        let mut m = SienaEngine::new();
        m.subscribe(sub(1, 10, Filter::for_type("a"))).unwrap();
        m.subscribe(sub(2, 11, Filter::any())).unwrap();
        let e = Event::new("a");
        assert_eq!(
            m.matching_subscriptions(&e),
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        let f = Event::new("zzz");
        assert_eq!(m.matching_subscriptions(&f), vec![SubscriptionId(2)]);
    }

    #[test]
    fn content_constraints_apply() {
        let mut m = SienaEngine::new();
        m.subscribe(sub(
            1,
            10,
            Filter::for_type("r").with(("bpm", Op::Gt, 120i64)),
        ))
        .unwrap();
        let calm = Event::builder("r").attr("bpm", 60i64).build();
        let racing = Event::builder("r").attr("bpm", 150i64).build();
        assert!(m.matching_subscriptions(&calm).is_empty());
        assert_eq!(m.matching_subscriptions(&racing).len(), 1);
    }

    #[test]
    fn unsubscribe_restores_filter() {
        let mut m = SienaEngine::new();
        let original = Filter::for_type("r").with(("bpm", Op::Gt, 120i64));
        m.subscribe(sub(1, 10, original.clone())).unwrap();
        let back = m.unsubscribe(SubscriptionId(1)).unwrap();
        assert_eq!(back.filter, original);
        assert!(m.is_empty());
        assert!(m.matching_subscriptions(&Event::new("r")).is_empty());
    }

    #[test]
    fn duplicate_and_missing_ids() {
        let mut m = SienaEngine::new();
        m.subscribe(sub(1, 10, Filter::any())).unwrap();
        assert!(m.subscribe(sub(1, 10, Filter::any())).is_err());
        assert!(m.unsubscribe(SubscriptionId(99)).is_err());
    }

    #[test]
    fn user_attribute_cannot_spoof_type() {
        // An attribute literally named like the reserved type attribute
        // cannot be injected: names come from user code but the reserved
        // name starts with NUL and the notification sorts it in.
        let mut m = SienaEngine::new();
        m.subscribe(sub(1, 10, Filter::for_type("secret"))).unwrap();
        let e = Event::builder("other").attr("type", "secret").build();
        assert!(m.matching_subscriptions(&e).is_empty());
    }

    #[test]
    fn payload_becomes_attribute_but_does_not_break_matching() {
        let mut m = SienaEngine::new();
        m.subscribe(sub(1, 10, Filter::for_type("r"))).unwrap();
        let e = Event::builder("r").payload(vec![1u8; 2048]).build();
        assert_eq!(m.matching_subscriptions(&e).len(), 1);
    }
}
