//! The counting-algorithm forwarding table — the "C-based" bus's engine.
//!
//! This reproduces the structure of Siena's *fast forwarding* algorithm
//! (Carzaniga & Wolf, SIGCOMM'03), which the paper's dedicated C matcher
//! was based on:
//!
//! * identical constraints are stored **once**, shared by all filters that
//!   use them;
//! * constraints are indexed **per attribute name**, with hash lookup for
//!   equality tests and sorted threshold arrays for numeric comparisons;
//! * matching walks the event's attributes, marks satisfied constraints,
//!   and **counts** per filter — a filter fires when its count reaches its
//!   constraint total;
//! * no representation translation happens on the hot path: the engine
//!   reads the event's attributes in place.

use std::collections::HashMap;
use std::sync::Arc;

use smc_types::{
    AttributeValue, Constraint, Error, Event, Op, Result, ServiceId, Subscription, SubscriptionId,
};

use crate::engine::{MatchScratch, Matcher, RouteSnapshot};

/// Hashable canonical form of an equality-comparable value.
///
/// Numeric values are normalised into f64 bit-space so that `Int(5)` and
/// `Double(5.0)` share a key — mirroring the reference semantics, where all
/// numeric comparison happens after conversion to `f64`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Bool(bool),
    /// Bits of the f64 normalisation (`-0.0` folded onto `0.0`).
    Num(u64),
    Str(String),
    Bytes(Vec<u8>),
}

/// Returns the hash key for a value, or `None` when the value can never
/// equal anything (NaN).
fn value_key(v: &AttributeValue) -> Option<ValueKey> {
    match v {
        AttributeValue::Bool(b) => Some(ValueKey::Bool(*b)),
        AttributeValue::Int(i) => Some(ValueKey::Num(norm_bits(*i as f64))),
        AttributeValue::Double(d) if d.is_nan() => None,
        AttributeValue::Double(d) => Some(ValueKey::Num(norm_bits(*d))),
        AttributeValue::Str(s) => Some(ValueKey::Str(s.clone())),
        AttributeValue::Bytes(b) => Some(ValueKey::Bytes(b.clone())),
    }
}

fn norm_bits(d: f64) -> u64 {
    // Fold -0.0 onto 0.0 so the two equal values share a key.
    if d == 0.0 {
        0.0f64.to_bits()
    } else {
        d.to_bits()
    }
}

type ConstraintId = usize;
type FilterId = usize;

#[derive(Debug, Clone)]
struct ConstraintRecord {
    constraint: Constraint,
    refcount: usize,
}

/// Canonical identity of a constraint for sharing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ConstraintKey {
    name: String,
    op: Op,
    value: Option<ValueKey>,
    /// Disambiguates NaN doubles (value = None) from each other.
    nan: bool,
}

fn constraint_key(c: &Constraint) -> ConstraintKey {
    let key = value_key(&c.value);
    ConstraintKey {
        name: c.name.clone(),
        op: c.op,
        nan: key.is_none(),
        value: key,
    }
}

/// Per-attribute-name constraint index.
#[derive(Debug, Default, Clone)]
struct NameIndex {
    /// Equality tests, hash-indexed by canonical value.
    eq: HashMap<ValueKey, Vec<ConstraintId>>,
    /// `x > t` / `x >= t` over numeric thresholds, sorted by `t`.
    num_greater: Vec<(f64, bool, ConstraintId)>,
    /// `x < t` / `x <= t` over numeric thresholds, sorted by `t`.
    num_less: Vec<(f64, bool, ConstraintId)>,
    /// Existence tests: satisfied by any present value.
    exists: Vec<ConstraintId>,
    /// Everything else (string ops, `!=`, non-numeric ordering): evaluated
    /// directly. Small in practice.
    misc: Vec<ConstraintId>,
}

impl NameIndex {
    fn is_empty(&self) -> bool {
        self.eq.is_empty()
            && self.num_greater.is_empty()
            && self.num_less.is_empty()
            && self.exists.is_empty()
            && self.misc.is_empty()
    }

    fn insert(&mut self, cid: ConstraintId, c: &Constraint) {
        match c.op {
            Op::Eq => {
                if let Some(key) = value_key(&c.value) {
                    self.eq.entry(key).or_default().push(cid);
                }
                // An `Eq NaN` constraint can never be satisfied: indexed
                // nowhere, it simply never fires.
            }
            Op::Gt | Op::Ge if c.value.is_numeric() => {
                let t = c.value.as_numeric().expect("numeric");
                let at = self.num_greater.partition_point(|&(x, _, _)| x < t);
                self.num_greater.insert(at, (t, c.op == Op::Ge, cid));
            }
            Op::Lt | Op::Le if c.value.is_numeric() => {
                let t = c.value.as_numeric().expect("numeric");
                let at = self.num_less.partition_point(|&(x, _, _)| x < t);
                self.num_less.insert(at, (t, c.op == Op::Le, cid));
            }
            Op::Exists => self.exists.push(cid),
            _ => self.misc.push(cid),
        }
    }

    fn remove(&mut self, cid: ConstraintId, c: &Constraint) {
        match c.op {
            Op::Eq => {
                if let Some(key) = value_key(&c.value) {
                    if let Some(list) = self.eq.get_mut(&key) {
                        list.retain(|&x| x != cid);
                        if list.is_empty() {
                            self.eq.remove(&key);
                        }
                    }
                }
            }
            Op::Gt | Op::Ge if c.value.is_numeric() => {
                self.num_greater.retain(|&(_, _, x)| x != cid);
            }
            Op::Lt | Op::Le if c.value.is_numeric() => {
                self.num_less.retain(|&(_, _, x)| x != cid);
            }
            Op::Exists => self.exists.retain(|&x| x != cid),
            _ => self.misc.retain(|&x| x != cid),
        }
    }

    /// Invokes `satisfy` for every constraint satisfied by `value`.
    fn visit_satisfied(
        &self,
        value: &AttributeValue,
        records: &[Option<ConstraintRecord>],
        satisfy: &mut impl FnMut(ConstraintId),
    ) {
        if let Some(key) = value_key(value) {
            if let Some(list) = self.eq.get(&key) {
                for &cid in list {
                    satisfy(cid);
                }
            }
        }
        if let Some(v) = value.as_numeric() {
            if !v.is_nan() {
                // x > t (or >=): satisfied for thresholds below v.
                let hi = self.num_greater.partition_point(|&(t, _, _)| t < v);
                for &(_, _, cid) in &self.num_greater[..hi] {
                    satisfy(cid);
                }
                // Thresholds equal to v: only the inclusive (>=) ones.
                for &(t, incl, cid) in &self.num_greater[hi..] {
                    if t > v {
                        break;
                    }
                    if incl && t == v {
                        satisfy(cid);
                    }
                }
                // x < t (or <=): satisfied for thresholds above v.
                let lo = self.num_less.partition_point(|&(t, _, _)| t <= v);
                for &(_, _, cid) in &self.num_less[lo..] {
                    satisfy(cid);
                }
                // Thresholds equal to v: only the inclusive (<=) ones.
                let eq_start = self.num_less.partition_point(|&(t, _, _)| t < v);
                for &(t, incl, cid) in &self.num_less[eq_start..lo] {
                    debug_assert_eq!(t, v);
                    if incl {
                        satisfy(cid);
                    }
                }
            }
        }
        for &cid in &self.exists {
            satisfy(cid);
        }
        for &cid in &self.misc {
            let rec = records[cid].as_ref().expect("indexed constraint is live");
            if rec.constraint.matches_value(value) {
                satisfy(cid);
            }
        }
    }
}

/// Canonical identity of a filter for sharing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FilterKey {
    event_type: Option<String>,
    constraint_ids: Vec<ConstraintId>,
}

#[derive(Debug, Clone)]
struct FilterEntry {
    event_type: Option<String>,
    constraint_ids: Vec<ConstraintId>,
    needed: u32,
    subs: Vec<(SubscriptionId, ServiceId)>,
    key: FilterKey,
}

#[derive(Debug, Clone)]
struct SubRecord {
    subscriber: ServiceId,
    filter: smc_types::Filter,
    filter_id: FilterId,
}

/// The forwarding-table engine.
///
/// # Example
///
/// ```
/// use smc_match::{FastForwardEngine, Matcher};
/// use smc_types::{Event, Filter, Op, ServiceId, Subscription, SubscriptionId};
///
/// let mut engine = FastForwardEngine::new();
/// engine.subscribe(Subscription::new(
///     SubscriptionId(1),
///     ServiceId::from_raw(0xA),
///     Filter::for_type("smc.sensor.reading").with(("spo2", Op::Lt, 90i64)),
/// ))?;
/// let low = Event::builder("smc.sensor.reading").attr("spo2", 85i64).build();
/// assert_eq!(engine.matching_subscriptions(&low), vec![SubscriptionId(1)]);
/// # Ok::<(), smc_types::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct FastForwardEngine {
    /// The matchable forwarding table. Everything matching reads lives
    /// here; it is `Clone` so [`Matcher::snapshot`] can freeze it.
    table: FfTable,
    free_records: Vec<ConstraintId>,
    constraint_lookup: HashMap<ConstraintKey, ConstraintId>,
    free_filters: Vec<FilterId>,
    filter_lookup: HashMap<FilterKey, FilterId>,

    subs: HashMap<SubscriptionId, SubRecord>,

    /// Scratch for the engine's own `&mut self` matching entry points.
    scratch: MatchScratch,
}

/// The immutable-at-match-time part of the forwarding table: constraint
/// records, per-name indexes, filter entries and their subscriber lists.
/// Matching only ever reads it; all mutation happens through the owning
/// [`FastForwardEngine`], which keeps the interning side tables.
#[derive(Debug, Default, Clone)]
struct FfTable {
    records: Vec<Option<ConstraintRecord>>,
    /// constraint -> filters containing it.
    postings: Vec<Vec<FilterId>>,
    name_index: HashMap<String, NameIndex>,

    filters: Vec<Option<FilterEntry>>,
    /// Filters with zero constraints and a type restriction, by type.
    empty_typed: HashMap<String, Vec<FilterId>>,
    /// Filters with zero constraints and no type restriction.
    match_all: Vec<FilterId>,
}

impl FfTable {
    /// Core counting match: fills `scratch.fired` with the ids of all
    /// firing filters. Read-only over the table; all working memory is
    /// the caller's scratch.
    fn matching_filters_into(&self, event: &Event, scratch: &mut MatchScratch) {
        let MatchScratch {
            counters,
            generation,
            fired,
        } = scratch;
        fired.clear();
        if counters.len() < self.filters.len() {
            counters.resize(self.filters.len(), (0, 0));
        }
        *generation += 1;
        let generation = *generation;

        {
            let postings = &self.postings;
            let filters = &self.filters;
            let records = &self.records;
            let event_type = event.event_type();
            let mut satisfy = |cid: ConstraintId| {
                for &fid in &postings[cid] {
                    let slot = &mut counters[fid];
                    if slot.0 != generation {
                        *slot = (generation, 0);
                    }
                    slot.1 += 1;
                    let entry = filters[fid].as_ref().expect("posted filter is live");
                    if slot.1 == entry.needed {
                        let type_ok = match &entry.event_type {
                            Some(t) => t == event_type,
                            None => true,
                        };
                        if type_ok {
                            fired.push(fid);
                        }
                    }
                }
            };
            for (name, value) in event.attributes().iter() {
                if let Some(idx) = self.name_index.get(name) {
                    idx.visit_satisfied(value, records, &mut satisfy);
                }
            }
        }

        fired.extend(self.match_all.iter().copied());
        if let Some(list) = self.empty_typed.get(event.event_type()) {
            fired.extend(list.iter().copied());
        }
    }

    /// Clears `out` and fills it with the distinct subscribers of the
    /// fired filters, sorted and de-duplicated.
    fn subscribers_into(&self, fired: &[FilterId], out: &mut Vec<ServiceId>) {
        out.clear();
        for &fid in fired {
            let entry = self.filters[fid].as_ref().expect("fired filter is live");
            out.extend(entry.subs.iter().map(|&(_, svc)| svc));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// As [`FfTable::subscribers_into`] but for subscription ids.
    fn subscriptions_into(&self, fired: &[FilterId], out: &mut Vec<SubscriptionId>) {
        out.clear();
        for &fid in fired {
            let entry = self.filters[fid].as_ref().expect("fired filter is live");
            out.extend(entry.subs.iter().map(|&(s, _)| s));
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// A frozen fast-forward table (see [`Matcher::snapshot`]).
#[derive(Debug)]
struct FfSnapshot {
    table: FfTable,
    subs: usize,
}

impl RouteSnapshot for FfSnapshot {
    fn matching_subscribers_into(
        &self,
        event: &Event,
        scratch: &mut MatchScratch,
        out: &mut Vec<ServiceId>,
    ) {
        self.table.matching_filters_into(event, scratch);
        self.table.subscribers_into(&scratch.fired, out);
    }

    fn len(&self) -> usize {
        self.subs
    }
}

impl FastForwardEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        FastForwardEngine::default()
    }

    fn intern_constraint(&mut self, c: &Constraint) -> ConstraintId {
        let key = constraint_key(c);
        if let Some(&cid) = self.constraint_lookup.get(&key) {
            self.table.records[cid]
                .as_mut()
                .expect("looked-up constraint is live")
                .refcount += 1;
            return cid;
        }
        let cid = match self.free_records.pop() {
            Some(cid) => cid,
            None => {
                self.table.records.push(None);
                self.table.postings.push(Vec::new());
                self.table.records.len() - 1
            }
        };
        self.table.records[cid] = Some(ConstraintRecord {
            constraint: c.clone(),
            refcount: 1,
        });
        self.table.postings[cid].clear();
        self.constraint_lookup.insert(key, cid);
        self.table
            .name_index
            .entry(c.name.clone())
            .or_default()
            .insert(cid, c);
        cid
    }

    fn release_constraint(&mut self, cid: ConstraintId) {
        let rec = self.table.records[cid]
            .as_mut()
            .expect("releasing live constraint");
        rec.refcount -= 1;
        if rec.refcount > 0 {
            return;
        }
        let c = rec.constraint.clone();
        self.table.records[cid] = None;
        self.free_records.push(cid);
        self.constraint_lookup.remove(&constraint_key(&c));
        if let Some(idx) = self.table.name_index.get_mut(&c.name) {
            idx.remove(cid, &c);
            if idx.is_empty() {
                self.table.name_index.remove(&c.name);
            }
        }
    }

    fn intern_filter(&mut self, filter: &smc_types::Filter) -> FilterId {
        // Canonical constraint-id list: interned, sorted, de-duplicated
        // (duplicate constraints in a conjunction are redundant).
        let mut cids: Vec<ConstraintId> = filter
            .constraints()
            .iter()
            .map(|c| self.intern_constraint(c))
            .collect();
        cids.sort_unstable();
        let before = cids.len();
        cids.dedup();
        if before != cids.len() {
            // Re-do refcounting precisely: count each unique once.
            // (Rare path: a filter containing the identical constraint twice.)
            let mut seen = std::collections::HashSet::new();
            for c in filter.constraints() {
                let key = constraint_key(c);
                let cid = self.constraint_lookup[&key];
                if !seen.insert(cid) {
                    self.release_constraint(cid);
                }
            }
        }
        let key = FilterKey {
            event_type: filter.event_type().map(str::to_owned),
            constraint_ids: cids.clone(),
        };
        if let Some(&fid) = self.filter_lookup.get(&key) {
            // The filter structure already exists; drop the refcounts we
            // just took (the entry holds its own).
            for &cid in &cids {
                self.release_constraint(cid);
            }
            return fid;
        }
        let fid = match self.free_filters.pop() {
            Some(fid) => fid,
            None => {
                self.table.filters.push(None);
                self.table.filters.len() - 1
            }
        };
        for &cid in &cids {
            self.table.postings[cid].push(fid);
        }
        let entry = FilterEntry {
            event_type: key.event_type.clone(),
            needed: cids.len() as u32,
            constraint_ids: cids,
            subs: Vec::new(),
            key: key.clone(),
        };
        if entry.needed == 0 {
            match &entry.event_type {
                Some(t) => self
                    .table
                    .empty_typed
                    .entry(t.clone())
                    .or_default()
                    .push(fid),
                None => self.table.match_all.push(fid),
            }
        }
        self.table.filters[fid] = Some(entry);
        self.filter_lookup.insert(key, fid);
        fid
    }

    fn release_filter(&mut self, fid: FilterId) {
        let entry = self.table.filters[fid]
            .take()
            .expect("releasing live filter");
        self.filter_lookup.remove(&entry.key);
        for &cid in &entry.constraint_ids {
            self.table.postings[cid].retain(|&f| f != fid);
            self.release_constraint(cid);
        }
        if entry.needed == 0 {
            match &entry.event_type {
                Some(t) => {
                    if let Some(list) = self.table.empty_typed.get_mut(t) {
                        list.retain(|&f| f != fid);
                        if list.is_empty() {
                            self.table.empty_typed.remove(t);
                        }
                    }
                }
                None => self.table.match_all.retain(|&f| f != fid),
            }
        }
        self.free_filters.push(fid);
    }
}

impl Matcher for FastForwardEngine {
    fn name(&self) -> &'static str {
        "fastforward"
    }

    fn subscribe(&mut self, sub: Subscription) -> Result<()> {
        if self.subs.contains_key(&sub.id) {
            return Err(Error::AlreadyExists(sub.id.to_string()));
        }
        let fid = self.intern_filter(&sub.filter);
        self.table.filters[fid]
            .as_mut()
            .expect("interned filter is live")
            .subs
            .push((sub.id, sub.subscriber));
        self.subs.insert(
            sub.id,
            SubRecord {
                subscriber: sub.subscriber,
                filter: sub.filter,
                filter_id: fid,
            },
        );
        Ok(())
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<Subscription> {
        let rec = self
            .subs
            .remove(&id)
            .ok_or_else(|| Error::NotFound(id.to_string()))?;
        let fid = rec.filter_id;
        let empty = {
            let entry = self.table.filters[fid]
                .as_mut()
                .expect("subscribed filter is live");
            entry.subs.retain(|&(s, _)| s != id);
            entry.subs.is_empty()
        };
        if empty {
            self.release_filter(fid);
        }
        Ok(Subscription::new(id, rec.subscriber, rec.filter))
    }

    fn matching_subscriptions(&mut self, event: &Event) -> Vec<SubscriptionId> {
        self.table.matching_filters_into(event, &mut self.scratch);
        let mut out = Vec::new();
        self.table.subscriptions_into(&self.scratch.fired, &mut out);
        out
    }

    fn matching_subscribers(&mut self, event: &Event) -> Vec<ServiceId> {
        self.table.matching_filters_into(event, &mut self.scratch);
        let mut out = Vec::new();
        self.table.subscribers_into(&self.scratch.fired, &mut out);
        out
    }

    fn snapshot(&self) -> Arc<dyn RouteSnapshot> {
        Arc::new(FfSnapshot {
            table: self.table.clone(),
            subs: self.subs.len(),
        })
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_types::Filter;

    fn sub(id: u64, svc: u64, filter: Filter) -> Subscription {
        Subscription::new(SubscriptionId(id), ServiceId::from_raw(svc), filter)
    }

    #[test]
    fn counting_fires_only_full_conjunctions() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(
            1,
            10,
            Filter::any()
                .with(("a", Op::Gt, 5i64))
                .with(("b", Op::Lt, 3i64)),
        ))
        .unwrap();
        let half = Event::builder("t").attr("a", 10i64).build();
        assert!(m.matching_subscriptions(&half).is_empty());
        let both = Event::builder("t").attr("a", 10i64).attr("b", 1i64).build();
        assert_eq!(m.matching_subscriptions(&both), vec![SubscriptionId(1)]);
        let wrong = Event::builder("t").attr("a", 10i64).attr("b", 9i64).build();
        assert!(m.matching_subscriptions(&wrong).is_empty());
    }

    #[test]
    fn range_boundaries() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Gt, 5i64))))
            .unwrap();
        m.subscribe(sub(2, 2, Filter::any().with(("x", Op::Ge, 5i64))))
            .unwrap();
        m.subscribe(sub(3, 3, Filter::any().with(("x", Op::Lt, 5i64))))
            .unwrap();
        m.subscribe(sub(4, 4, Filter::any().with(("x", Op::Le, 5i64))))
            .unwrap();
        let at = |v: i64| Event::builder("t").attr("x", v).build();
        assert_eq!(
            m.matching_subscriptions(&at(5)),
            vec![SubscriptionId(2), SubscriptionId(4)]
        );
        assert_eq!(
            m.matching_subscriptions(&at(6)),
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        assert_eq!(
            m.matching_subscriptions(&at(4)),
            vec![SubscriptionId(3), SubscriptionId(4)]
        );
    }

    #[test]
    fn eq_cross_numeric() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Eq, 5i64))))
            .unwrap();
        let d = Event::builder("t").attr("x", 5.0f64).build();
        assert_eq!(m.matching_subscriptions(&d).len(), 1);
        let near = Event::builder("t").attr("x", 5.1f64).build();
        assert!(m.matching_subscriptions(&near).is_empty());
    }

    #[test]
    fn negative_zero_equals_zero() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Eq, 0i64))))
            .unwrap();
        let nz = Event::builder("t").attr("x", -0.0f64).build();
        assert_eq!(m.matching_subscriptions(&nz).len(), 1);
    }

    #[test]
    fn typed_empty_and_match_all() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::for_type("a"))).unwrap();
        m.subscribe(sub(2, 2, Filter::any())).unwrap();
        assert_eq!(
            m.matching_subscriptions(&Event::new("a")),
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        assert_eq!(
            m.matching_subscriptions(&Event::new("b")),
            vec![SubscriptionId(2)]
        );
    }

    #[test]
    fn typed_counted_filter_checks_type() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::for_type("a").with(("x", Op::Gt, 0i64))))
            .unwrap();
        let wrong_type = Event::builder("b").attr("x", 5i64).build();
        assert!(m.matching_subscriptions(&wrong_type).is_empty());
        let right = Event::builder("a").attr("x", 5i64).build();
        assert_eq!(m.matching_subscriptions(&right).len(), 1);
    }

    #[test]
    fn identical_filters_share_an_entry() {
        let mut m = FastForwardEngine::new();
        let f = Filter::for_type("a").with(("x", Op::Gt, 0i64));
        m.subscribe(sub(1, 1, f.clone())).unwrap();
        m.subscribe(sub(2, 2, f.clone())).unwrap();
        // One filter entry, one live constraint record.
        assert_eq!(m.filter_lookup.len(), 1);
        assert_eq!(m.constraint_lookup.len(), 1);
        let e = Event::builder("a").attr("x", 1i64).build();
        assert_eq!(m.matching_subscriptions(&e).len(), 2);
        m.unsubscribe(SubscriptionId(1)).unwrap();
        assert_eq!(m.filter_lookup.len(), 1);
        assert_eq!(m.matching_subscriptions(&e), vec![SubscriptionId(2)]);
        m.unsubscribe(SubscriptionId(2)).unwrap();
        assert_eq!(m.filter_lookup.len(), 0);
        assert_eq!(m.constraint_lookup.len(), 0);
        assert!(m.matching_subscriptions(&e).is_empty());
    }

    #[test]
    fn duplicate_constraint_in_filter_fires() {
        let mut m = FastForwardEngine::new();
        let f = Filter::any()
            .with(("x", Op::Gt, 0i64))
            .with(("x", Op::Gt, 0i64));
        m.subscribe(sub(1, 1, f)).unwrap();
        let e = Event::builder("t").attr("x", 1i64).build();
        assert_eq!(m.matching_subscriptions(&e), vec![SubscriptionId(1)]);
        m.unsubscribe(SubscriptionId(1)).unwrap();
        assert_eq!(m.constraint_lookup.len(), 0);
    }

    #[test]
    fn shared_constraints_across_filters() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Gt, 5i64))))
            .unwrap();
        m.subscribe(sub(
            2,
            2,
            Filter::any()
                .with(("x", Op::Gt, 5i64))
                .with(("y", Op::Eq, "q")),
        ))
        .unwrap();
        assert_eq!(m.constraint_lookup.len(), 2);
        let e1 = Event::builder("t").attr("x", 9i64).build();
        assert_eq!(m.matching_subscriptions(&e1), vec![SubscriptionId(1)]);
        let e2 = Event::builder("t").attr("x", 9i64).attr("y", "q").build();
        assert_eq!(
            m.matching_subscriptions(&e2),
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        m.unsubscribe(SubscriptionId(2)).unwrap();
        assert_eq!(m.constraint_lookup.len(), 1);
        assert_eq!(m.matching_subscriptions(&e2), vec![SubscriptionId(1)]);
    }

    #[test]
    fn string_and_misc_ops() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("s", Op::Prefix, "heart"))))
            .unwrap();
        m.subscribe(sub(2, 2, Filter::any().with(("x", Op::Ne, 5i64))))
            .unwrap();
        let e = Event::builder("t")
            .attr("s", "heart-rate")
            .attr("x", 6i64)
            .build();
        assert_eq!(
            m.matching_subscriptions(&e),
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        let e2 = Event::builder("t")
            .attr("s", "rate")
            .attr("x", 5i64)
            .build();
        assert!(m.matching_subscriptions(&e2).is_empty());
    }

    #[test]
    fn eq_nan_never_fires() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Eq, f64::NAN))))
            .unwrap();
        let e = Event::builder("t").attr("x", f64::NAN).build();
        assert!(m.matching_subscriptions(&e).is_empty());
        m.unsubscribe(SubscriptionId(1)).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn nan_event_value_matches_nothing_numeric() {
        let mut m = FastForwardEngine::new();
        m.subscribe(sub(1, 1, Filter::any().with(("x", Op::Gt, 0i64))))
            .unwrap();
        m.subscribe(sub(2, 2, Filter::any().with(("x", Op::Exists, 0i64))))
            .unwrap();
        let e = Event::builder("t").attr("x", f64::NAN).build();
        // Exists still fires; the range does not.
        assert_eq!(m.matching_subscriptions(&e), vec![SubscriptionId(2)]);
    }

    #[test]
    fn unsubscribe_reuses_slots() {
        let mut m = FastForwardEngine::new();
        for i in 0..10u64 {
            m.subscribe(sub(i, i, Filter::any().with(("x", Op::Gt, i as i64))))
                .unwrap();
        }
        for i in 0..10u64 {
            m.unsubscribe(SubscriptionId(i)).unwrap();
        }
        assert!(m.is_empty());
        assert_eq!(m.constraint_lookup.len(), 0);
        // Slots get reused rather than leaking.
        let before = m.table.records.len();
        m.subscribe(sub(99, 1, Filter::any().with(("x", Op::Gt, 1i64))))
            .unwrap();
        assert_eq!(m.table.records.len(), before);
    }
}
