//! Content-based matching engines for the SMC event bus.
//!
//! The paper builds its event bus twice: first around **Siena** (with heavy
//! representation translation at the engine boundary), then around a
//! dedicated matcher in C based on Siena's **fast forwarding** algorithm.
//! Both live here behind the [`Matcher`] trait, together with a naive
//! linear-scan oracle used by tests and benchmarks:
//!
//! * [`NaiveEngine`] — evaluate every filter against every event;
//! * [`SienaEngine`] — candidate index by event type, plus the translation
//!   round-trip the Java/JNI prototype paid on every match;
//! * [`FastForwardEngine`] — constraint-sharing counting algorithm working
//!   on borrowed event data (the "C-based" bus).
//!
//! All three agree exactly on match semantics; the property tests in
//! `tests/engine_equivalence.rs` enforce it.
//!
//! ```
//! use smc_match::{EngineKind, Matcher};
//! use smc_types::{Event, Filter, Op, ServiceId, Subscription, SubscriptionId};
//!
//! let mut engine = EngineKind::FastForward.build();
//! engine.subscribe(Subscription::new(
//!     SubscriptionId(1),
//!     ServiceId::from_raw(0xA),
//!     Filter::for_type("smc.sensor.reading").with(("bpm", Op::Gt, 120i64)),
//! ))?;
//! let event = Event::builder("smc.sensor.reading").attr("bpm", 140i64).build();
//! assert_eq!(engine.matching_subscribers(&event), vec![ServiceId::from_raw(0xA)]);
//! # Ok::<(), smc_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod covering;
pub mod engine;
pub mod fastforward;
pub mod naive;
pub mod siena;

pub use covering::{any_interest, minimal_cover, overlaps};
pub use engine::{EngineKind, MatchScratch, Matcher, RouteSnapshot};
pub use fastforward::FastForwardEngine;
pub use naive::NaiveEngine;
pub use siena::SienaEngine;
