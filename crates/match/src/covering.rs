//! Filter-set algebra: overlap tests and minimal covers.
//!
//! Used by the bus's quenching support (a publisher may sleep when no
//! subscription can possibly match what it advertises) and by engines to
//! reason about redundant subscriptions.

use smc_types::{Constraint, Filter, Op};

/// Returns `true` unless the two filters are **provably disjoint** — i.e.
/// no event can match both.
///
/// The test is sound for quenching: answering `true` when unsure only
/// costs a wasted publication; answering `false` must be certain, because
/// a wrong `false` would silence a publisher someone is listening to.
pub fn overlaps(a: &Filter, b: &Filter) -> bool {
    if let (Some(ta), Some(tb)) = (a.event_type(), b.event_type()) {
        if ta != tb {
            return false;
        }
    }
    // Look for a contradictory constraint pair on the same attribute.
    for ca in a.constraints() {
        for cb in b.constraints() {
            if ca.name == cb.name && contradicts(ca, cb) {
                return false;
            }
        }
    }
    // A filter may also self-contradict (x > 5 && x < 3): check pairs
    // within each side so an unsatisfiable filter overlaps nothing.
    for f in [a, b] {
        let cs = f.constraints();
        for (i, ca) in cs.iter().enumerate() {
            for cb in &cs[i + 1..] {
                if ca.name == cb.name && contradicts(ca, cb) {
                    return false;
                }
            }
        }
    }
    true
}

/// Returns `true` if no single value can satisfy both constraints.
/// Sound but incomplete, like [`Constraint::implies`].
fn contradicts(a: &Constraint, b: &Constraint) -> bool {
    debug_assert_eq!(a.name, b.name);
    let (na, nb) = match (a.value.as_numeric(), b.value.as_numeric()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            // Non-numeric: only equality conflicts are detected.
            return match (a.op, b.op) {
                (Op::Eq, Op::Eq) => !a.value.eq_filter(&b.value),
                (Op::Eq, Op::Ne) | (Op::Ne, Op::Eq) => a.value.eq_filter(&b.value),
                _ => false,
            };
        }
    };
    if na.is_nan() || nb.is_nan() {
        // `Eq NaN` is unsatisfiable on its own, hence contradicts anything.
        return a.op == Op::Eq || b.op == Op::Eq;
    }
    let lo = |c: &Constraint, v: f64| match c.op {
        // The smallest value allowed by the constraint (inclusive flag).
        Op::Eq => Some((v, true)),
        Op::Gt => Some((v, false)),
        Op::Ge => Some((v, true)),
        _ => None,
    };
    let hi = |c: &Constraint, v: f64| match c.op {
        Op::Eq => Some((v, true)),
        Op::Lt => Some((v, false)),
        Op::Le => Some((v, true)),
        _ => None,
    };
    // Interval emptiness: lower bound from one side vs upper from other.
    let empty = |l: Option<(f64, bool)>, h: Option<(f64, bool)>| match (l, h) {
        (Some((lv, li)), Some((hv, hi_incl))) => lv > hv || (lv == hv && !(li && hi_incl)),
        _ => false,
    };
    if empty(lo(a, na), hi(b, nb)) || empty(lo(b, nb), hi(a, na)) {
        return true;
    }
    // Eq vs Ne on the same value.
    match (a.op, b.op) {
        (Op::Eq, Op::Ne) | (Op::Ne, Op::Eq) => na == nb,
        _ => false,
    }
}

/// Returns the indices of a **minimal cover** of `filters`: a subset such
/// that every input filter is covered by some member, with covered
/// duplicates removed.
///
/// Engines and the quench logic use this to reason about the *effective*
/// subscription set. When two filters mutually cover (they are equivalent),
/// the earlier index is kept.
pub fn minimal_cover(filters: &[Filter]) -> Vec<usize> {
    let mut keep: Vec<usize> = Vec::new();
    'next: for i in 0..filters.len() {
        for j in 0..filters.len() {
            if i == j {
                continue;
            }
            if filters[j].covers(&filters[i]) {
                let mutual = filters[i].covers(&filters[j]);
                // Drop i if j strictly covers it, or if they are
                // equivalent and j comes first.
                if !mutual || j < i {
                    continue 'next;
                }
            }
        }
        keep.push(i);
    }
    keep
}

/// Returns `true` if any filter in `subscriptions` overlaps `advert` — the
/// quench test: may a publisher advertising `advert` produce something
/// somebody wants?
pub fn any_interest(advert: &Filter, subscriptions: &[Filter]) -> bool {
    subscriptions.iter().any(|s| overlaps(advert, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Filter {
        Filter::any()
    }

    #[test]
    fn different_types_are_disjoint() {
        assert!(!overlaps(&Filter::for_type("a"), &Filter::for_type("b")));
        assert!(overlaps(&Filter::for_type("a"), &Filter::for_type("a")));
        assert!(overlaps(&Filter::for_type("a"), &f()));
    }

    #[test]
    fn contradictory_ranges_are_disjoint() {
        let gt = f().with(("x", Op::Gt, 10i64));
        let lt = f().with(("x", Op::Lt, 5i64));
        assert!(!overlaps(&gt, &lt));
        let le = f().with(("x", Op::Le, 10i64));
        assert!(overlaps(&gt, &f().with(("x", Op::Lt, 11i64))));
        assert!(!overlaps(&gt, &le));
        let ge = f().with(("x", Op::Ge, 10i64));
        assert!(overlaps(&ge, &le));
    }

    #[test]
    fn eq_conflicts() {
        let a = f().with(("x", Op::Eq, 1i64));
        let b = f().with(("x", Op::Eq, 2i64));
        assert!(!overlaps(&a, &b));
        assert!(overlaps(&a, &a.clone()));
        let ne = f().with(("x", Op::Ne, 1i64));
        assert!(!overlaps(&a, &ne));
        assert!(overlaps(&b, &ne));
        let s1 = f().with(("s", Op::Eq, "a"));
        let s2 = f().with(("s", Op::Eq, "b"));
        assert!(!overlaps(&s1, &s2));
    }

    #[test]
    fn self_contradictory_filter_overlaps_nothing() {
        let broken = f().with(("x", Op::Gt, 10i64)).with(("x", Op::Lt, 5i64));
        assert!(!overlaps(&broken, &f()));
        assert!(!overlaps(&f(), &broken));
    }

    #[test]
    fn different_attributes_always_overlap() {
        let a = f().with(("x", Op::Eq, 1i64));
        let b = f().with(("y", Op::Eq, 2i64));
        assert!(overlaps(&a, &b));
    }

    #[test]
    fn minimal_cover_drops_covered() {
        let wide = f().with(("x", Op::Gt, 0i64));
        let narrow = f().with(("x", Op::Gt, 10i64));
        let other = f().with(("y", Op::Eq, 1i64));
        let keep = minimal_cover(&[narrow.clone(), wide.clone(), other.clone()]);
        assert_eq!(keep, vec![1, 2]);
    }

    #[test]
    fn minimal_cover_keeps_first_of_equivalents() {
        let a = f().with(("x", Op::Gt, 1i64));
        let keep = minimal_cover(&[a.clone(), a.clone(), a.clone()]);
        assert_eq!(keep, vec![0]);
    }

    #[test]
    fn minimal_cover_empty_and_singleton() {
        assert!(minimal_cover(&[]).is_empty());
        assert_eq!(minimal_cover(&[f()]), vec![0]);
    }

    #[test]
    fn any_interest_for_quenching() {
        let advert = Filter::for_type("smc.sensor.reading").with(("sensor", Op::Eq, "hr"));
        let subs = vec![Filter::for_type("smc.alarm")];
        assert!(!any_interest(&advert, &subs));
        let subs2 = vec![Filter::for_type("smc.alarm"), Filter::any()];
        assert!(any_interest(&advert, &subs2));
        assert!(!any_interest(&advert, &[]));
    }
}
